#!/usr/bin/env python
"""Generate docs/API.md from the package's public surface.

Walks every public module, collects the names exported via ``__all__``,
and emits signatures plus the first paragraph of each docstring.  Run
from the repository root:

    python scripts/gen_api_docs.py [--check]

``--check`` exits non-zero if docs/API.md is out of date (CI guard).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

MODULES = [
    "repro.em.machine",
    "repro.em.disk",
    "repro.em.file",
    "repro.em.streams",
    "repro.em.records",
    "repro.em.comparisons",
    "repro.em.errors",
    "repro.em.wire",
    "repro.alg.sort",
    "repro.alg.sampling",
    "repro.alg.distribute",
    "repro.alg.selection",
    "repro.alg.inmemory",
    "repro.alg.multipartition",
    "repro.alg.randomized",
    "repro.alg.partitioned",
    "repro.core.spec",
    "repro.core.memory_splitters",
    "repro.core.intermixed",
    "repro.core.multiselect",
    "repro.core.splitters",
    "repro.core.partitioning",
    "repro.core.reduction",
    "repro.baselines.sort_based",
    "repro.baselines.multipartition_based",
    "repro.baselines.repeated_selection",
    "repro.bounds.formulas",
    "repro.bounds.counting",
    "repro.bounds.table",
    "repro.bounds.probabilistic",
    "repro.bounds.adversary",
    "repro.workloads.generators",
    "repro.workloads.queries",
    "repro.analysis.verify",
    "repro.analysis.fit",
    "repro.analysis.access",
    "repro.analysis.trace",
    "repro.analysis.report",
    "repro.obs.tracer",
    "repro.obs.export",
    "repro.obs.solvers",
    "repro.obs.budget",
    "repro.obs.metrics",
    "repro.obs.recorder",
    "repro.lint.findings",
    "repro.lint.engine",
    "repro.lint.project",
    "repro.lint.callgraph",
    "repro.lint.dataflow",
    "repro.lint.cache",
    "repro.lint.rules_access",
    "repro.lint.rules_cpu",
    "repro.lint.rules_rng",
    "repro.lint.rules_lease",
    "repro.lint.rules_kernel",
    "repro.lint.rules_shard",
    "repro.lint.rules_protocol",
    "repro.lint.rules_registry",
    "repro.lint.runner",
    "repro.apps.histogram",
    "repro.apps.load_balance",
    "repro.apps.order_stats",
    "repro.service.index",
    "repro.service.online",
    "repro.service.updates",
    "repro.service.frontend",
    "repro.service.durability",
    "repro.shard.transport",
    "repro.shard.worker",
    "repro.shard.router",
    "repro.experiments.base",
    "repro.experiments.runner",
    "repro.experiments.report_all",
]

HEADER = """# API reference

Public surface of the ``repro`` package, generated from docstrings by
``python scripts/gen_api_docs.py`` — regenerate after changing any
public signature or docstring.  Everything listed here is importable
from the module shown (most names are also re-exported by the package
``__init__`` one level up).

## Command line

``repro`` (or ``python -m repro``) exposes the package on the shell;
see ``repro <command> --help`` for every flag.

- `repro list` / `repro run` / `repro demo` / `repro bounds` /
  `repro solve` — run experiments and individual algorithms (see
  `repro.cli`).
- `repro report [--quick] [--jobs N] [--check-budgets]` — regenerate
  EXPERIMENTS.md and `benchmarks/out/results.json`; with
  `--check-budgets` it additionally runs the I/O-budget regression gate
  (`repro.obs.budget`) and exits non-zero if any algorithm exceeds its
  committed envelope.
- `repro trace ALGORITHM [--out DIR] [--n N] [--k K] ...` — run one
  registered solver (`repro.obs.solvers`) under the span tracer
  (`repro.obs.tracer`) and write three artifacts: a Chrome trace-event
  JSON loadable at <https://ui.perfetto.dev>, a rendered text tree with
  per-span I/O shares, and the plain-dict span JSON.
- `repro budgets [--check | --write] [--path FILE] [--headroom H]` —
  check every registered solver against `benchmarks/budgets.json`, or
  recalibrate and rewrite the envelopes after an intentional cost
  change.
- `repro lint [PATH ...] [--json] [--rule RULE ...] [--diff REF]
  [--baseline FILE] [--no-cache]` — run the emlint EM-conformance
  rules (`repro.lint`, rules R1–R9) with whole-program call-graph and
  dataflow analysis over the package plus `scripts/` and
  `benchmarks/`; exits non-zero on any active error-severity finding.
  `--diff` reports only files changed versus a git ref (analysis stays
  whole-tree), `--baseline` reports only findings absent from a prior
  `--json` report, and per-module results are cached in
  `.emlint-cache/` (see `docs/LINTING.md` for the rule catalog and
  suppression policy).
- `repro sanitize-check [--solver NAME ...]` — arm the runtime
  sanitizer: deliberately fire every trap (use-after-free, double-free,
  uninitialized read, double release, lease leak), then run the
  registered solvers under `Machine(sanitize=True)` with the tracer's
  counter-conservation check.
- `repro serve` / `repro query` / `repro bench-queries` — the online
  partition service (`repro.service`): an interactive query loop over
  stdin, a one-shot coalesced query batch, and the online-vs-offline
  trace benchmark that records its acceptance check (now with
  per-query I/O p50/p95/p99 and a `--json` document) under
  `benchmarks/out/SERVICE_QUERIES.txt`.
- `repro metrics ALGORITHM [--json] [--out DIR] ...` — run one
  registered solver inside a metrics scope (`repro.obs.metrics`) and a
  flight-recorder scope (`repro.obs.recorder`), then export the
  telemetry three ways: Prometheus text, a JSON payload, and the
  flight-recorder event dump.  `repro serve --durable` dumps the
  flight recorder on any unclean exit (`--flight-dump FILE`), and
  `repro recover --flight-dump FILE` renders such a dump.
"""


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(undocumented)*"
    paragraph: list[str] = []
    for line in inspect.cleandoc(doc).splitlines():
        if not line.strip():
            break
        paragraph.append(line.strip())
    return " ".join(paragraph)


def signature_of(obj) -> str:
    import re

    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""
    # Strip memory addresses from any default-value reprs.
    return re.sub(r" at 0x[0-9a-f]+", "", sig)


def describe_module(name: str) -> list[str]:
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if not exported:
        return []
    out = [f"## `{name}`", "", first_paragraph(module.__doc__), ""]
    for attr in exported:
        obj = getattr(module, attr)
        if inspect.isclass(obj):
            out.append(f"### class `{attr}{signature_of(obj)}`")
            out.append("")
            out.append(first_paragraph(obj.__doc__))
            methods = [
                (m, fn)
                for m, fn in inspect.getmembers(obj, inspect.isfunction)
                if not m.startswith("_") and fn.__qualname__.startswith(obj.__name__)
            ]
            if methods:
                out.append("")
                for m, fn in methods:
                    out.append(
                        f"- `.{m}{signature_of(fn)}` — {first_paragraph(fn.__doc__)}"
                    )
            out.append("")
        elif inspect.isfunction(obj):
            out.append(f"### `{attr}{signature_of(obj)}`")
            out.append("")
            out.append(first_paragraph(obj.__doc__))
            out.append("")
        else:
            # Constants: repr only stable scalar values (a dict of
            # functions would embed memory addresses).
            if isinstance(obj, (int, float, str, bool)):
                out.append(f"### constant `{attr}` = `{obj!r}`")
            else:
                out.append(f"### constant `{attr}` ({type(obj).__name__})")
            out.append("")
    return out


def generate() -> str:
    chunks = [HEADER]
    for name in MODULES:
        chunks.extend(describe_module(name))
    return "\n".join(chunks).rstrip() + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--out", default="docs/API.md")
    args = parser.parse_args()
    out = Path(args.out)
    text = generate()
    if args.check:
        if not out.exists() or out.read_text() != text:
            print(f"{out} is out of date; regenerate with scripts/gen_api_docs.py")
            return 1
        print(f"{out} is up to date")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Reproduce the paper's results table from the experiment harness.

Runs the registered experiments (quick sweeps by default; pass ``--full``
for the sweeps recorded in EXPERIMENTS.md, a few minutes) and prints each
claim's measured-vs-bound table plus the shape-check verdicts — the same
harness the benchmark suite times.

Run:  python examples/io_complexity_study.py [--full] [EXP_ID ...]
"""

import argparse
import sys
import time

from repro.experiments import all_experiments, get_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("exp_ids", nargs="*", help="experiments to run (default: all)")
    parser.add_argument("--full", action="store_true", help="full sweeps")
    args = parser.parse_args(argv)

    experiments = (
        [get_experiment(e) for e in args.exp_ids]
        if args.exp_ids
        else all_experiments()
    )
    verdicts = []
    for exp in experiments:
        t0 = time.time()
        result = exp(quick=not args.full)
        dt = time.time() - t0
        print(result.render())
        print(f"({dt:.1f}s)\n")
        verdicts.append((exp.exp_id, result.passed))

    print("summary:")
    for exp_id, ok in verdicts:
        print(f"  {exp_id:8s} {'PASS' if ok else 'FAIL'}")
    return 0 if all(ok for _, ok in verdicts) else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Bulk quantile extraction with a disk-resident rank list.

Computing thousands of quantiles at once (fine-grained CDF sketches,
per-shard boundary tables, percentile dashboards) is multi-selection with
a ``K`` that may not fit in memory.  ``multi_select_streamed`` keeps the
rank list itself on disk and still runs in Theorem 4's complexity —
here K = 4·M ranks are answered on a machine whose entire memory holds
only M records.

Run:  python examples/bulk_quantiles.py
"""

import numpy as np

from repro import Machine, load_input
from repro.core import multi_select_streamed
from repro.em import EMFile, composite
from repro.em.records import make_records
from repro.workloads import uniform_random

N = 120_000
M, B = 512, 16          # deliberately tiny memory
K = 4 * M               # 2048 quantiles — 4x the machine's memory

machine = Machine(memory=M, block=B)
data = uniform_random(N, seed=33)
file = load_input(machine, data)

# The K target ranks are staged on disk like any other input.
ranks = np.unique((np.arange(1, K + 1) * N) // (K + 1))
ranks_file = EMFile.from_records(machine, make_records(ranks), counted=False)

print(f"N = {N} records; machine M = {M}, B = {B} (memory holds {M} records)")
print(f"extracting K = {len(ranks)} quantiles — the rank list alone is "
      f"{len(ranks) / M:.1f}x the machine's memory\n")

with machine.measure() as cost:
    answers_file = multi_select_streamed(machine, file, ranks_file)

# Verify against ground truth (verification is outside the model).
answers = answers_file.to_numpy()
truth = np.sort(composite(data))[ranks - 1]
assert np.array_equal(composite(answers), truth), "quantiles wrong!"

from repro.bounds import multiselect_io, sort_io  # noqa: E402

scan = N // B
bound = multiselect_io(N, len(ranks), M, B)
print(f"simulated I/O: {cost.total:,}  ({cost.total / scan:.1f} scans; "
      f"Theorem 4 bound value {bound:,.0f}, ratio {cost.total / bound:.1f})")
print(f"for reference, the sorting bound is {sort_io(N, M, B):,.0f} "
      "(this implementation's constants favor sorting at laptop scale; "
      "the point here is K >> M within the memory budget)")
print(f"memory high-water mark: {machine.memory.peak} / {M} records")
print(f"all {len(ranks)} quantiles verified ✓")

# A few of the extracted quantiles:
print("\nsample of the CDF sketch:")
for q in (0.01, 0.25, 0.50, 0.75, 0.99):
    i = int(q * (len(ranks) - 1))
    print(f"  p{100 * q:04.1f}  rank {ranks[i]:>7,}  key {answers['key'][i]:>8,}")

#!/usr/bin/env python
"""Quickstart: approximate splitters and partitioning on a simulated EM machine.

Walks through the library's core loop:

1. build an external-memory machine (memory ``M`` records, blocks of
   ``B`` records, every block transfer counted);
2. stage a dataset on its disk;
3. find approximate K-splitters (Theorem 5) and materialize an
   approximate K-partitioning (Theorem 6);
4. verify the outputs against the problem definitions and compare the
   measured I/O with the paper's bounds and with plain sorting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Machine, load_input, random_permutation
from repro.analysis import check_partitioned, check_splitters
from repro.baselines import sort_based_splitters
from repro.bounds import sort_io, splitters_two_sided_bound
from repro.core import approximate_partition, approximate_splitters

# ----------------------------------------------------------------------
# 1. The machine: M = 4096 records of memory, B = 64 records per block.
# ----------------------------------------------------------------------
machine = Machine(memory=4096, block=64)
print(f"machine: M={machine.M} B={machine.B} (fanout M/B = {machine.fanout})")

# ----------------------------------------------------------------------
# 2. The dataset: 100k records staged on disk (loading is not charged —
#    the model assumes the input starts on disk).
# ----------------------------------------------------------------------
N = 100_000
data = random_permutation(N, seed=42)
file = load_input(machine, data)
print(f"input: N={N} records in {file.num_blocks} blocks (N/B = {N // machine.B})")

# ----------------------------------------------------------------------
# 3a. Approximate K-splitters: K=64 partitions, sizes within [a, b].
# ----------------------------------------------------------------------
K, a, b = 64, 400, 12_000
with machine.measure() as cost:
    result = approximate_splitters(machine, file, K, a, b)
sizes = check_splitters(data, result.splitters, a, b, K)
bound = splitters_two_sided_bound(N, K, a, b, machine.M, machine.B)
print(f"\nsplitters ({result.variant}): {len(result.splitters)} splitters")
print(f"  induced partition sizes: min={sizes.min()} max={sizes.max()} (window [{a}, {b}])")
print(f"  measured I/O: {cost.total}  |  Table 1 bound value: {bound:.0f}"
      f"  |  ratio {cost.total / bound:.1f}")

# ----------------------------------------------------------------------
# 3b. Approximate K-partitioning: actually materialize the partitions.
# ----------------------------------------------------------------------
with machine.measure() as cost:
    partitioned = approximate_partition(machine, file, K, a, b)
psizes = check_partitioned(data, partitioned, a, b, K)
print(f"\npartitioning: {partitioned.num_partitions} partitions materialized")
print(f"  sizes: min={min(psizes)} max={max(psizes)}")
print(f"  measured I/O: {cost.total}")
partitioned.free()

# ----------------------------------------------------------------------
# 4. Comparison: the trivial sort-based route.
# ----------------------------------------------------------------------
with machine.measure() as cost:
    sort_based_splitters(machine, file, K, a, b)
print(f"\nsort baseline I/O: {cost.total}"
      f"  (sorting bound: {sort_io(N, machine.M, machine.B):.0f})")

print(f"\nmemory high-water mark: {machine.memory.peak} / {machine.M} records — "
      "the accountant enforces the model's memory budget")
print("all outputs verified against the problem definitions ✓")

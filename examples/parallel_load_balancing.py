#!/usr/bin/env python
"""Range-sharding a dataset onto K workers (§1 motivation).

Perfectly balanced sharding is precise K-partitioning; allowing shards
anywhere in ``[(1-s)·N/K, (1+s)·N/K]`` is approximate K-partitioning,
which Table 1 shows is cheaper when the slack is generous.  This example
plans shards at several slack levels on a multi-pass machine and reports
the I/O paid against the parallel-makespan penalty accepted.

Run:  python examples/parallel_load_balancing.py
"""

from repro import Machine
from repro.apps import plan_shards
from repro.bounds import multipartition_io, partition_left_bound
from repro.workloads import load_input, uniform_random

N, WORKERS = 131_072, 512
M, B = 512, 16  # narrow machine: the lg_{M/B} factors actually move

data = uniform_random(N, seed=21)
print(f"sharding N={N} records onto {WORKERS} workers; machine M={M} B={B}")
print(f"one scan = {N // B} I/Os; exact-partition bound "
      f"{multipartition_io(N, WORKERS, M, B):,.0f}\n")

print(f"{'slack':>6} | {'I/O':>8} | {'imbalance':>9} | {'utilization':>11} | "
      f"{'largest shard':>13}")
print("-" * 62)

plans = {}
for slack in (0.0, 1.0, 3.0, 7.0):
    machine = Machine(memory=M, block=B)
    file = load_input(machine, data)
    plan = plan_shards(machine, file, WORKERS, slack=slack)
    plans[slack] = (plan.io_cost, plan.imbalance, plan.utilization)
    print(f"{slack:>6.1f} | {plan.io_cost:>8,} | {plan.imbalance:>9.2f} | "
          f"{plan.utilization:>10.1%} | {max(plan.shard_sizes):>13,}")
    plan.free()

base_io = plans[0.0][0]
best_io = plans[7.0][0]
print(f"\ncoarse slack saves {100 * (1 - best_io / base_io):.0f}% of the "
      "partitioning I/O —")
print("the Table 1 row 5 effect: lg_{M/B} min(N/b, N/B) passes instead of")
print("lg_{M/B} K.  The price is a proportionally larger makespan; pick the")
print("slack whose utilization loss costs less than the I/O saved.")

#!/usr/bin/env python
"""Nearly equi-depth histograms in sublinear I/O (§1 motivation).

The bucket boundaries of an equi-depth histogram are exactly the output
of approximate K-splitters with ``a = b = N/K``.  Relaxing the bucket
sizes lets the boundaries be found cheaper — and with the right-grounded
relaxation (Theorem 1's regime), *sublinearly*: the histogram is built
from the quantiles of a small prefix, without reading most of the data.

This example builds histograms at several cost levels, reports the I/O
paid and the rank-estimation error obtained, and demonstrates range
selectivity estimation.

Run:  python examples/equi_depth_histogram.py
"""

import numpy as np

from repro import Machine, load_input
from repro.apps import build_histogram
from repro.workloads import uniform_random

N, K = 200_000, 64
machine_shape = dict(memory=4096, block=64)

data = uniform_random(N, seed=7)
sorted_keys = np.sort(data["key"])
rng = np.random.default_rng(11)
probes = rng.choice(sorted_keys, size=300)


def error_stats(hist):
    errs = []
    for p in probes:
        true_rank = int(np.searchsorted(sorted_keys, p, side="right"))
        errs.append(abs(hist.rank_estimate(int(p)) - true_rank))
    errs = np.array(errs)
    return errs.mean(), np.percentile(errs, 99)


print(f"dataset: {N} records; histogram with K = {K} buckets "
      f"(ideal bucket = {N // K} elements)")
print(f"machine: M={machine_shape['memory']} B={machine_shape['block']}; "
      f"one full scan = {N // machine_shape['block']} I/Os\n")

print(f"{'mode':>22} | {'I/O':>7} | {'% of scan':>9} | "
      f"{'mean rank err':>13} | {'p99 rank err':>12}")
print("-" * 78)

configs = [
    ("exact (slack=0)", dict(slack=0.0)),
    ("two-sided slack=1", dict(slack=1.0)),
    ("sample 10% of data", dict(sample_fraction=0.10)),
    ("sample 1% of data", dict(sample_fraction=0.01)),
]
for label, kwargs in configs:
    machine = Machine(**machine_shape)
    file = load_input(machine, data)
    with machine.measure() as cost:
        hist = build_histogram(machine, file, K, **kwargs)
    mean_err, p99_err = error_stats(hist)
    pct = 100 * cost.total / (N // machine.B)
    print(f"{label:>22} | {cost.total:>7,} | {pct:>8.1f}% | "
          f"{mean_err:>13.0f} | {p99_err:>12.0f}")

# ----------------------------------------------------------------------
# Selectivity estimation with the 1%-sample histogram.
# ----------------------------------------------------------------------
machine = Machine(**machine_shape)
file = load_input(machine, data)
hist = build_histogram(machine, file, K, sample_fraction=0.01)

print("\nrange-selectivity estimates (1%-sample histogram):")
for lo_q, hi_q in [(0.10, 0.30), (0.45, 0.55), (0.05, 0.90)]:
    lo_key = int(sorted_keys[int(lo_q * (N - 1))])
    hi_key = int(sorted_keys[int(hi_q * (N - 1))])
    true_sel = (
        np.searchsorted(sorted_keys, hi_key, side="right")
        - np.searchsorted(sorted_keys, lo_key, side="right")
    ) / N
    est = hist.selectivity_estimate(lo_key, hi_key)
    print(f"  true {true_sel:5.1%}  estimated {est:5.1%}")

print("\ntakeaway: the sampled histogram touches ~1-10% of the blocks")
print("(Theorem 1's sublinear regime) yet estimates ranks to within a few")
print("bucket widths on randomly ordered data; the two-sided modes add")
print("worst-case guarantees at linear-plus cost.")

#!/usr/bin/env python
"""Robust statistics over disk-resident data.

A contaminated measurement log (heavy-tailed outliers) lives on the
simulated disk; computing trustworthy summary statistics without sorting
it is selection-algorithm territory:

* median and percentiles — linear-I/O selection;
* trimmed mean — two selections + one aggregation scan;
* top-k outliers — selection + filter;
* and the cheap-but-probabilistic alternative: Las Vegas randomized
  splitters building a bucket summary with a verification scan.

Run:  python examples/robust_statistics.py
"""

import numpy as np

from repro import Machine, load_input
from repro.alg.randomized import randomized_splitters
from repro.apps import median, percentiles, top_k, trimmed_mean
from repro.em.records import make_records

# ----------------------------------------------------------------------
# A contaminated sensor log: Gaussian-ish readings + 2% wild outliers.
# ----------------------------------------------------------------------
N = 150_000
rng = np.random.default_rng(99)
readings = rng.normal(10_000, 500, size=N).astype(np.int64)
outliers = rng.integers(0, N, size=N // 50)
readings[outliers] = rng.integers(10**6, 10**8, size=len(outliers))
data = make_records(np.clip(readings, 0, 2**31 - 1))

machine = Machine(memory=4096, block=64)
file = load_input(machine, data)
scan = N // machine.B
print(f"contaminated log: N={N} readings, ~2% wild outliers; "
      f"one scan = {scan} I/Os\n")

# ----------------------------------------------------------------------
# Naive mean vs robust statistics.
# ----------------------------------------------------------------------
naive_mean = float(data["key"].mean())

with machine.measure() as cost:
    med = median(machine, file)
print(f"naive mean    : {naive_mean:>12,.0f}   (wrecked by the outliers)")
print(f"median        : {med:>12,} ({cost.total} I/Os, "
      f"{cost.total / scan:.1f} scans)")

with machine.measure() as cost:
    tmean = trimmed_mean(machine, file, trim=0.05)
print(f"5% trimmed mean: {tmean:>11,.0f} ({cost.total} I/Os, "
      f"{cost.total / scan:.1f} scans)")

with machine.measure() as cost:
    p50, p95, p99 = percentiles(machine, file, [0.5, 0.95, 0.99])
print(f"p50/p95/p99   : {p50:,} / {p95:,} / {p99:,} "
      f"({cost.total} I/Os for all three — Theorem 4 shares the scans)")

# ----------------------------------------------------------------------
# The worst offenders, materialized.
# ----------------------------------------------------------------------
with machine.measure() as cost:
    worst = top_k(machine, file, 10, largest=True)
keys = np.sort(worst.to_numpy()["key"])[::-1]
print(f"\ntop-10 outliers ({cost.total} I/Os): {', '.join(f'{k:,}' for k in keys[:5])}, ...")
worst.free()

# ----------------------------------------------------------------------
# A bucket summary via Las Vegas sampling (cheap, verified).
# ----------------------------------------------------------------------
with machine.measure() as cost:
    splitters, attempts = randomized_splitters(
        machine, file, k=8, a=N // 16, b=N // 4, delta=0.05, seed=1
    )
print(f"\n8-bucket summary via randomized splitters: {cost.total} I/Os "
      f"({attempts} attempt(s), output verified by construction)")
print("bucket boundaries:", ", ".join(f"{int(k):,}" for k in splitters["key"]))

print("\ntakeaway: every robust statistic above cost a small constant number")
print("of scans — no sort, no index — and each result was verified against")
print("the problem definition inside the run.")

"""Access-pattern analysis: sequential vs random I/O.

The EM model prices every block transfer equally, but on spinning (and
even flash) storage sequential transfers are far cheaper than random
ones — real adopters of these algorithms care which fraction of the
model's I/Os would be seeks.  Given a disk trace recorded with
:meth:`repro.em.disk.Disk.start_trace`, this module computes:

* per-direction **sequentiality** — the fraction of reads (writes) whose
  block id is exactly the successor of the previous read (write);
* **run-length statistics** — how long the sequential bursts are.

Block ids are allocation-ordered, so a file written by one writer is
physically contiguous while interleaved writers fragment each other —
the trace therefore also reveals fragmentation effects (e.g. a
distribution pass's round-robin writes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessStats", "access_stats"]


@dataclass(frozen=True)
class AccessStats:
    """Sequentiality summary of one access trace.

    ``read_sequentiality`` is the fraction of reads at position > 0 of
    the read subsequence whose block id equals the previous read's id
    plus one (similarly for writes); ``mean_run`` is the average length
    of maximal sequential bursts across the whole per-direction
    subsequence.

    Degenerate traces follow a fixed convention: with fewer than two
    accesses in a direction there are no successor pairs, so its
    sequentiality is **0.0** (an empty trace is not evidence of
    sequential behaviour); ``mean_run`` is 0.0 for zero accesses and 1.0
    for a single access (one burst of length one).
    """

    reads: int
    writes: int
    read_sequentiality: float
    write_sequentiality: float
    read_mean_run: float
    write_mean_run: float


def _direction_stats(ids: list[int]) -> tuple[float, float]:
    if len(ids) <= 1:
        # No successor pairs -> zero sequentiality (see AccessStats);
        # mean_run is the number of (length-1) bursts: 0.0 or 1.0.
        return 0.0, float(len(ids))
    sequential = 0
    runs = 1
    run_lengths = []
    current = 1
    for prev, cur in zip(ids, ids[1:]):
        if cur == prev + 1:
            sequential += 1
            current += 1
        else:
            runs += 1
            run_lengths.append(current)
            current = 1
    run_lengths.append(current)
    return sequential / (len(ids) - 1), sum(run_lengths) / len(run_lengths)


def access_stats(trace: list[tuple[str, int]]) -> AccessStats:
    """Compute :class:`AccessStats` from a ``(op, block_id)`` trace."""
    reads = [bid for op, bid in trace if op == "r"]
    writes = [bid for op, bid in trace if op == "w"]
    r_seq, r_run = _direction_stats(reads)
    w_seq, w_run = _direction_stats(writes)
    return AccessStats(
        reads=len(reads),
        writes=len(writes),
        read_sequentiality=r_seq,
        write_sequentiality=w_seq,
        read_mean_run=r_run,
        write_mean_run=w_run,
    )

"""Plain-text tables for the experiment harness.

The paper's evaluation is a results table (Table 1); the harness
regenerates it as text so ``python -m repro run <exp>`` and the
benchmark suite print the same rows the paper reports, with measured
I/O next to the bound formulas.
"""

from __future__ import annotations

import numbers
from typing import Sequence

import numpy as np

__all__ = ["render_table", "render_kv", "format_value"]


def format_value(v) -> str:
    """Human-friendly cell formatting (floats to 3 significant-ish digits).

    Numpy scalars format exactly like the equivalent Python scalar, so a
    value renders the same whether it comes straight out of a sweep or
    back from the runner's JSON cache.
    """
    if isinstance(v, (bool, np.bool_)):
        return "yes" if v else "no"
    if isinstance(v, numbers.Integral):
        return f"{int(v):,}"
    if isinstance(v, numbers.Real):
        v = float(v)
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], indent: str = "  ") -> str:
    """Render aligned key: value lines (for experiment check summaries)."""
    if not pairs:
        return ""
    width = max(len(k) for k, _ in pairs)
    return "\n".join(
        f"{indent}{k.ljust(width)} : {format_value(v)}" for k, v in pairs
    )

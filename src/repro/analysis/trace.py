"""Phase-level I/O breakdowns.

The disk tags every I/O with the *joined stack path* of the active
phases (``"partition/distribute/flush"``; see
:meth:`repro.em.disk.Disk.phase`); this module turns the per-path
counters into readable cost breakdowns — where did a composed algorithm
actually spend its block transfers?

:func:`phase_breakdown` aggregates hierarchically: every path prefix
gets a row with **inclusive** totals (its own I/Os plus everything
nested beneath it), emitted in depth-first order with siblings sorted by
total.  A trace whose labels are all single-level therefore renders
exactly as it did when labels were flat.  :func:`phase_total` is the
programmatic form — the inclusive total of one subtree — and is what
experiment code should use instead of exact-match lookups into
``by_phase`` (which silently miss I/Os the moment a callee introduces a
nested phase).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..em.disk import IOCounters
from .report import render_table

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["phase_breakdown", "phase_total", "render_phase_breakdown"]


def _inclusive(counters: IOCounters) -> dict[str, tuple[int, int]]:
    """Inclusive ``(reads, writes)`` per path prefix appearing in
    ``by_phase`` (the untagged label ``""`` is its own root)."""
    incl: dict[str, tuple[int, int]] = {}
    for label, (r, w) in counters.by_phase.items():
        parts = label.split("/") if label else [""]
        for i in range(1, len(parts) + 1):
            prefix = "/".join(parts[:i])
            pr, pw = incl.get(prefix, (0, 0))
            incl[prefix] = (pr + r, pw + w)
    return incl


def phase_total(source: "IOCounters | Machine", prefix: str) -> int:
    """Inclusive I/O total of one phase subtree.

    Sums reads + writes over every ``by_phase`` path equal to ``prefix``
    or nested beneath it (``prefix + "/..."``).  ``prefix`` itself may be
    a joined path.  Use this — not ``by_phase[label]`` — to cost a phase:
    exact-match lookups break as soon as the phase's callees open phases
    of their own.
    """
    counters = source if isinstance(source, IOCounters) else source.snapshot()
    nested = prefix + "/"
    return sum(
        r + w
        for label, (r, w) in counters.by_phase.items()
        if label == prefix or label.startswith(nested)
    )


def phase_breakdown(counters: IOCounters) -> list[tuple[str, int, int, int, float]]:
    """Rows of ``(path, reads, writes, total, share)``, depth-first.

    Totals are inclusive of nested phases, siblings sort by total
    descending, and ``share`` is relative to all I/Os — nested rows
    overlap their ancestors by design (read it like a flame graph).  The
    empty label (I/Os outside any phase) is rendered as ``"(untagged)"``.
    """
    grand = counters.total or 1
    incl = _inclusive(counters)
    children: dict[str, list[str]] = {}
    roots: list[str] = []
    for path in incl:
        if path and "/" in path:
            children.setdefault(path.rsplit("/", 1)[0], []).append(path)
        else:
            roots.append(path)
    rows: list[tuple[str, int, int, int, float]] = []

    def emit(paths: list[str]) -> None:
        for path in sorted(paths, key=lambda p: (-sum(incl[p]), p)):
            r, w = incl[path]
            rows.append((path or "(untagged)", r, w, r + w, (r + w) / grand))
            emit(children.get(path, []))

    emit(roots)
    return rows


def render_phase_breakdown(source: "IOCounters | Machine", title: str = "I/O by phase") -> str:
    """Render the breakdown as a table (accepts a Machine or counters).

    Nested phases indent under their parent and show only their final
    path segment.
    """
    counters = source if isinstance(source, IOCounters) else source.snapshot()
    labels = [
        "  " * path.count("/") + path.rsplit("/", 1)[-1]
        for path, *_ in phase_breakdown(counters)
    ]
    if not labels:
        return f"{title}: no I/O recorded"
    # Left-justify the (indented) phase column ourselves; render_table
    # right-justifies cells, which would hide the nesting.
    width = max(len(label) for label in labels)
    rows = [
        (label.ljust(width), r, w, t, f"{share:.1%}")
        for label, (_, r, w, t, share) in zip(labels, phase_breakdown(counters))
    ]
    return render_table(["phase", "reads", "writes", "total", "share"], rows, title=title)

"""Phase-level I/O breakdowns.

The disk tags every I/O with the innermost active phase label (see
:meth:`repro.em.disk.Disk.phase`); this module turns the per-phase
counters into readable cost breakdowns — where did a composed algorithm
actually spend its block transfers?
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..em.disk import IOCounters
from .report import render_table

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["phase_breakdown", "render_phase_breakdown"]


def phase_breakdown(counters: IOCounters) -> list[tuple[str, int, int, int, float]]:
    """Rows of ``(phase, reads, writes, total, share)`` sorted by total.

    The empty label (I/Os outside any phase) is rendered as
    ``"(untagged)"``; ``share`` is the fraction of all I/Os.
    """
    grand = counters.total or 1
    rows = []
    for label, (r, w) in counters.by_phase.items():
        rows.append((label or "(untagged)", r, w, r + w, (r + w) / grand))
    rows.sort(key=lambda row: -row[3])
    return rows


def render_phase_breakdown(source: "IOCounters | Machine", title: str = "I/O by phase") -> str:
    """Render the breakdown as a table (accepts a Machine or counters)."""
    counters = source if isinstance(source, IOCounters) else source.snapshot()
    rows = [
        (label, r, w, t, f"{share:.1%}")
        for label, r, w, t, share in phase_breakdown(counters)
    ]
    if not rows:
        return f"{title}: no I/O recorded"
    return render_table(["phase", "reads", "writes", "total", "share"], rows, title=title)

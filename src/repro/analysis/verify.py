"""Output validators for every problem the library solves.

Each checker recomputes ground truth directly from the raw input records
with numpy (outside the EM model — verification is free) and raises
:class:`VerificationError` with a precise message on any violation.  The
experiments and the property-based tests both run through these.
"""

from __future__ import annotations

import numpy as np

from ..em.records import composite
from ..alg.partitioned import PartitionedFile

__all__ = [
    "VerificationError",
    "induced_partition_sizes",
    "check_splitters",
    "check_partitioned",
    "check_multiselect",
    "check_sorted",
]


class VerificationError(AssertionError):
    """An algorithm's output violates its problem definition."""


def induced_partition_sizes(data: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Sizes of the partitions ``S ∩ (s_{i-1}, s_i]`` induced on ``data``.

    Uses the composite (key, uid) total order, the library's consistent
    duplicate-resolution convention.
    """
    data_sorted = np.sort(composite(data))
    sp = np.sort(composite(splitters))
    idx = np.searchsorted(data_sorted, sp, side="right")
    bounds = np.concatenate(([0], idx, [len(data_sorted)]))
    return np.diff(bounds)


def check_splitters(
    data: np.ndarray, splitters: np.ndarray, a: int, b: int, k: int
) -> np.ndarray:
    """Validate an approximate K-splitters output; returns induced sizes."""
    if len(splitters) != k - 1:
        raise VerificationError(
            f"expected K-1 = {k - 1} splitters, got {len(splitters)}"
        )
    sp = composite(splitters)
    if len(sp) > 1 and not np.all(np.diff(np.sort(sp)) > 0):
        raise VerificationError("splitters are not distinct")
    # Splitters must be elements of S.
    data_comps = np.sort(composite(data))
    pos = np.searchsorted(data_comps, np.sort(sp))
    if np.any(pos >= len(data_comps)) or np.any(
        data_comps[np.minimum(pos, len(data_comps) - 1)] != np.sort(sp)
    ):
        raise VerificationError("some splitter is not an element of S")
    sizes = induced_partition_sizes(data, splitters)
    if sizes.min(initial=len(data)) < a:
        raise VerificationError(
            f"induced partition of size {sizes.min()} below a = {a}"
        )
    if sizes.max(initial=0) > b:
        raise VerificationError(
            f"induced partition of size {sizes.max()} above b = {b}"
        )
    return sizes


def check_partitioned(
    data: np.ndarray,
    partitioned: PartitionedFile,
    a: int,
    b: int,
    k: int | None = None,
) -> list[int]:
    """Validate an approximate K-partitioning output; returns sizes.

    Checks: partition count (if ``k`` given), sizes within ``[a, b]``,
    ordering between consecutive non-empty partitions, and that the
    partitions form a permutation of the input multiset.
    """
    parts = partitioned.to_numpy_partitions()
    if k is not None and len(parts) != k:
        raise VerificationError(f"expected {k} partitions, got {len(parts)}")
    sizes = [len(p) for p in parts]
    for i, s in enumerate(sizes):
        if not a <= s <= b:
            raise VerificationError(
                f"partition {i} has size {s} outside [{a}, {b}]"
            )
    prev_max = None
    for i, p in enumerate(parts):
        if len(p) == 0:
            continue
        comps = composite(p)
        if prev_max is not None and comps.min() <= prev_max:
            raise VerificationError(
                f"partition {i} overlaps its predecessor in the total order"
            )
        prev_max = int(comps.max())
    got = np.sort(np.concatenate([composite(p) for p in parts if len(p)]))
    want = np.sort(composite(data))
    if len(got) != len(want) or not np.array_equal(got, want):
        raise VerificationError("partitions are not a permutation of the input")
    return sizes


def check_multiselect(
    data: np.ndarray, ranks: np.ndarray, answers: np.ndarray
) -> None:
    """Validate multi-selection answers against a full sort of the input."""
    ranks = np.asarray(ranks, dtype=np.int64)
    if len(answers) != len(ranks):
        raise VerificationError("answer count does not match rank count")
    truth = np.sort(composite(data))
    got = composite(answers)
    want = truth[ranks - 1]
    bad = np.flatnonzero(got != want)
    if len(bad):
        i = int(bad[0])
        raise VerificationError(
            f"rank {int(ranks[i])}: got composite {int(got[i])}, "
            f"want {int(want[i])} ({len(bad)} wrong in total)"
        )


def check_sorted(data: np.ndarray, output: np.ndarray) -> None:
    """Validate that ``output`` is the composite-order sort of ``data``."""
    want = np.sort(composite(data))
    got = composite(output)
    if len(got) != len(want) or not np.array_equal(got, want):
        raise VerificationError("output is not the sorted permutation of input")

"""Verification, curve fitting, and report rendering."""

from .access import AccessStats, access_stats
from .fit import RatioStats, fit_constant, ratio_stats, theta_match
from .report import format_value, render_kv, render_table
from .trace import phase_breakdown, phase_total, render_phase_breakdown
from .verify import (
    VerificationError,
    check_multiselect,
    check_partitioned,
    check_sorted,
    check_splitters,
    induced_partition_sizes,
)

__all__ = [
    "AccessStats",
    "access_stats",
    "RatioStats",
    "ratio_stats",
    "fit_constant",
    "theta_match",
    "render_table",
    "render_kv",
    "format_value",
    "phase_breakdown",
    "phase_total",
    "render_phase_breakdown",
    "VerificationError",
    "check_splitters",
    "check_partitioned",
    "check_multiselect",
    "check_sorted",
    "induced_partition_sizes",
]

"""Constant-factor fits of measured I/O against bound formulas.

A reproduction of an asymptotic result succeeds when the measured cost is
a *flat multiple* of the predicted Θ-formula across the sweep: the hidden
constant is allowed, curvature is not.  :func:`ratio_stats` quantifies
flatness; :func:`fit_constant` extracts the constant by least squares
through the origin; :func:`theta_match` is the boolean verdict used by
experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RatioStats", "ratio_stats", "fit_constant", "theta_match"]


@dataclass(frozen=True)
class RatioStats:
    """Summary of measured/predicted ratios over a sweep.

    ``spread = max_ratio / min_ratio`` — 1.0 means a perfect Θ-match;
    experiments typically accept spreads up to ~3 (constants move a bit
    as the regime shifts within the same Θ-class).
    """

    min_ratio: float
    max_ratio: float
    mean_ratio: float
    spread: float

    def __str__(self) -> str:
        return (
            f"ratio in [{self.min_ratio:.2f}, {self.max_ratio:.2f}] "
            f"(mean {self.mean_ratio:.2f}, spread {self.spread:.2f}x)"
        )


def ratio_stats(measured, predicted) -> RatioStats:
    """Per-point ``measured[i] / predicted[i]`` statistics."""
    m = np.asarray(measured, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if m.shape != p.shape or m.ndim != 1 or len(m) == 0:
        raise ValueError("measured and predicted must be equal-length 1-D")
    if np.any(p <= 0):
        raise ValueError("predicted values must be positive")
    r = m / p
    return RatioStats(
        min_ratio=float(r.min()),
        max_ratio=float(r.max()),
        mean_ratio=float(r.mean()),
        spread=float(r.max() / r.min()) if r.min() > 0 else float("inf"),
    )


def fit_constant(measured, predicted) -> float:
    """Least-squares constant ``c`` minimizing ``||measured - c·predicted||``."""
    m = np.asarray(measured, dtype=float)
    p = np.asarray(predicted, dtype=float)
    denom = float(np.dot(p, p))
    if denom == 0:
        raise ValueError("predicted values are all zero")
    return float(np.dot(m, p) / denom)


def theta_match(measured, predicted, max_spread: float = 3.0) -> bool:
    """True when the measured series is a flat multiple of the prediction."""
    return ratio_stats(measured, predicted).spread <= max_spread

"""R5 — lease-lifecycle rule.

``MemoryAccountant.lease`` reserves part of the model's memory ``M``;
a lease that is never released keeps shrinking the budget every caller
sees (``Machine.load_limit``), so composed algorithms mysteriously run
out of memory.  The static rule enforces the two exception-safe
idioms::

    with machine.memory.lease(size, "label"):
        ...

    lease = machine.memory.lease(size, "label")
    try:
        ...
    finally:
        lease.release()

Leases stored on object attributes (``self._lease = ...``) are the
third, object-lifecycle idiom; they are exempt here because the dynamic
sanitizer's teardown check (:meth:`Machine.close
<repro.em.machine.Machine.close>`) catches the leak at runtime instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding

__all__ = ["LeaseLifecycleRule"]


def _released_in_finally(scope: ast.AST, var: str) -> bool:
    """Does any ``finally`` block in ``scope`` call ``var.release()``?"""
    for node in ast.walk(scope):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == var
                ):
                    return True
    return False


def _entered_as_context(scope: ast.AST, var: str) -> bool:
    """Is ``var`` later used as a context manager (``with var:``)?"""
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == var
                ):
                    return True
    return False


@register
class LeaseLifecycleRule(LintRule):
    """R5: every lease is a context manager, released in a ``finally``,
    or owned by an object (attribute assignment)."""

    rule_id = "R5"
    title = "leases need an exception-safe release"
    rationale = (
        "A leaked `MemoryLease` permanently shrinks the free memory the "
        "accountant reports, so later phases and composed callers see a "
        "smaller machine than `M` — the classic source of spurious "
        "`MemoryBudgetError`s and, worse, of algorithms silently "
        "switching to more I/O-expensive small-memory code paths.  An "
        "exception between `lease()` and `release()` must not leak: use "
        "`with`, or release in a `finally`.  Attribute-stored leases "
        "(`self._lease = ...`) follow the owning object's lifecycle and "
        "are checked at runtime by the sanitizer's teardown scan."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "lease"
            ):
                continue
            parent = ctx.parent(node)
            # `with ....lease(...) as x:` / `with ....lease(...):`
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Attribute):
                    continue  # object-lifecycle idiom (runtime-checked)
                if isinstance(target, ast.Name):
                    scope = ctx.enclosing_function(node)
                    if _released_in_finally(scope, target.id):
                        continue
                    if _entered_as_context(scope, target.id):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"lease assigned to `{target.id}` is neither used "
                        f"as a context manager nor released in a "
                        f"`finally`; an exception here leaks the memory",
                    )
                    continue
            yield self.finding(
                ctx,
                node,
                "lease result must be held in a `with`, released in a "
                "`finally`, or stored on an owning object",
            )

"""R5 — lease-lifecycle rule (v2: cross-function escape analysis).

``MemoryAccountant.lease`` reserves part of the model's memory ``M``;
a lease that is never released keeps shrinking the budget every caller
sees (``Machine.load_limit``), so composed algorithms mysteriously run
out of memory.  The exception-safe idioms::

    with machine.memory.lease(size, "label"):
        ...

    lease = machine.memory.lease(size, "label")
    try:
        ...
    finally:
        lease.release()

v1 stopped at the acquiring function's boundary: a lease stored on
``self`` was exempt wholesale (deferred to the runtime sanitizer), and a
lease *returned* to the caller — or acquired via a wrapper function —
was invisible.  v2 follows the lease across functions using the module
summaries and dataflow facts:

* **attribute storage** — ``self._lease = ...`` is clean only if some
  method of the class (or a project-resolvable ancestor/descendant)
  releases or context-exits that attribute; a write-only attribute is a
  structural leak and is flagged.
* **returned leases** — the acquiring function becomes a
  *lease-returner* (:attr:`DataflowFacts.lease_returners`, closed under
  wrapper propagation), and every call site on a returner is held to the
  same discipline as a direct ``.lease(...)`` call.
* **passed-on leases** — a lease handed to another function is clean
  only when some candidate callee provably releases a parameter.
"""

from __future__ import annotations

from typing import Iterable

from .engine import LintRule, register
from .findings import LintFinding

__all__ = ["LeaseLifecycleRule"]

#: Dispositions that need no further argument.
_CLEAN = frozenset({"with", "finally", "context", "returned"})


@register
class LeaseLifecycleRule(LintRule):
    """R5: every lease is provably released on all paths — via ``with``,
    a ``finally``, a released attribute, or a releasing callee."""

    rule_id = "R5"
    title = "leases need an exception-safe release"
    rationale = (
        "A leaked `MemoryLease` permanently shrinks the free memory the "
        "accountant reports, so later phases and composed callers see a "
        "smaller machine than `M` — the classic source of spurious "
        "`MemoryBudgetError`s and, worse, of algorithms silently "
        "switching to more I/O-expensive small-memory code paths.  An "
        "exception between `lease()` and `release()` must not leak: use "
        "`with`, release in a `finally`, store on an object whose class "
        "demonstrably releases the attribute, or hand it to a callee "
        "that releases it.  Functions *returning* a lease transfer the "
        "obligation to their call sites, which this rule checks under "
        "the same discipline."
    )
    scope = "project"

    def check_project(self, facts) -> Iterable[LintFinding]:
        project = facts.project
        for summary in project.modules.values():
            if summary.is_test:
                continue
            for site in summary.lease_sites:
                yield from self._judge(
                    project, summary,
                    line=site["line"], col=site["col"],
                    disposition=site["disposition"],
                    cls=site.get("class"), var=site.get("var"),
                    attr=site.get("attr"), passed_to=site.get("passed_to"),
                    origin="lease",
                )
            # call sites on lease-returning functions get the same
            # treatment: the callee transferred the release obligation.
            for call in summary.calls:
                if call["name"] == "lease":
                    continue  # direct acquisition — already a lease site
                if call.get("resolution") != "internal":
                    continue
                if not any(
                    t in facts.lease_returners
                    for t in call.get("targets", ())
                ):
                    continue
                caller = call["caller"]
                cls = caller.split(".")[0] if "." in caller else None
                disposition = {
                    "with": "with",
                    "returned": "returned",
                    "attr": "attr",
                    "assigned": call.get("disp") or "local",
                    "discarded": "bare",
                }.get(call["use"], "other")
                yield from self._judge(
                    project, summary,
                    line=call["line"], col=call["col"],
                    disposition=disposition,
                    cls=cls, var=call.get("var"), attr=call.get("attr"),
                    passed_to=None,
                    origin=f"lease-returning `{call['name']}()`",
                )

    # ------------------------------------------------------------------
    def _judge(
        self, project, summary, *, line, col, disposition, cls, var,
        attr, passed_to, origin,
    ) -> Iterable[LintFinding]:
        if disposition in _CLEAN:
            return
        if disposition == "attr":
            if attr and project.attr_released(
                summary.module_name, cls, attr
            ):
                return
            holder = f"self.{attr}" if attr else "an attribute"
            yield self.finding_at(
                summary.relpath, line, col,
                f"{origin} stored on {holder} but no method of "
                f"`{cls or '?'}` (or a related class) ever releases or "
                f"context-exits it — a write-only lease attribute is a "
                f"structural leak",
            )
            return
        if disposition == "passed":
            if passed_to and self._callee_releases(project, passed_to):
                return
            yield self.finding_at(
                summary.relpath, line, col,
                f"{origin} assigned to `{var}` is passed to "
                f"`{passed_to}()` which does not provably release it; "
                f"release in a `finally` here or make the callee own it",
            )
            return
        if disposition == "local":
            yield self.finding_at(
                summary.relpath, line, col,
                f"{origin} assigned to `{var}` is neither used as a "
                f"context manager nor released in a `finally`; an "
                f"exception here leaks the memory",
            )
            return
        if disposition == "bare":
            yield self.finding_at(
                summary.relpath, line, col,
                f"{origin} result is discarded on the spot — the "
                f"reservation can never be released",
            )
            return
        yield self.finding_at(
            summary.relpath, line, col,
            f"{origin} result must be held in a `with`, released in a "
            f"`finally`, returned, or stored on an owning object",
        )

    @staticmethod
    def _callee_releases(project, callee: str) -> bool:
        """Does some project function named ``callee`` release one of
        its parameters on all paths?  (Name-level over-approximation —
        sound in the clean direction only if naming is unambiguous,
        which the golden corpus pins.)"""
        for s in project.modules.values():
            for qual, params in s.releases_params.items():
                if qual.split(".")[-1] == callee and params:
                    return True
        return False

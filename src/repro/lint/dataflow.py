"""Interprocedural dataflow facts over the project call graph.

Two forward analyses, both simple monotone fixpoints over
:class:`~repro.lint.callgraph.CallGraph` edges:

**Charge reachability** (R3v2).  The ground truth set is the em layer's
real charging surface — ``Machine.charge_comparisons`` and the ``cmp_*``
helpers defined in ``repro.em.comparisons`` — *not* anything that merely
shares their name: a local ``def cmp_sort`` shadow that never reaches
the machine does not count (the v1 heuristic's known false negative).
From the ground set two facts propagate:

* ``reaches_charge(f)`` — f charges directly or some call path out of f
  reaches the ground set (least fixpoint up the caller direction);
* ``covered_by_callers(f)`` — every resolved caller of f charges (or is
  itself covered), so f is a *pure helper whose callers pay* — the
  pattern the v1 rule could only express as a suppression.

A comparison sink inside f is clean iff ``reaches_charge(f)`` or
``covered_by_callers(f)``.

**Lease escape** (R5v2).  Per-site dispositions come from the module
summaries; this pass adds the interprocedural parts: the set of
*lease-returning* functions (a call to one is a lease acquisition at the
call site, and gets the same discipline as a direct ``.lease()``), and
the project-wide attribute-release lookup for leases stored on ``self``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import CallGraph
from .project import CHARGE_NAMES, ProjectIndex

__all__ = ["DataflowFacts", "compute_facts"]

#: Fully qualified ground-truth charge sinks: reaching any of these
#: means the comparison counter advances.
_GROUND_CHARGE = (
    "repro.em.machine.Machine.charge_comparisons",
)
_GROUND_CHARGE_MODULE = "repro.em.comparisons"


@dataclass
class DataflowFacts:
    """The interprocedural verdicts the v2 rules consume."""

    project: ProjectIndex
    graph: CallGraph
    #: fq function names that reach a real charge
    reaches_charge: set = field(default_factory=set)
    #: fq function names all of whose resolved callers charge
    covered_by_callers: set = field(default_factory=set)
    #: fq function names whose return value is (or may be) a live lease
    lease_returners: set = field(default_factory=set)

    def charge_verdict(self, fq_function: str) -> str | None:
        """The dataflow fact that clears a sink in ``fq_function``
        (``"reaches-charge"`` / ``"callers-charge"``) or None."""
        if fq_function in self.reaches_charge:
            return "reaches-charge"
        if fq_function in self.covered_by_callers:
            return "callers-charge"
        return None


def _charge_ground(project: ProjectIndex) -> set[str]:
    ground = set()
    for fq in _GROUND_CHARGE:
        if fq in project.functions:
            ground.add(fq)
    em = project.modules.get(_GROUND_CHARGE_MODULE)
    if em is not None:
        for qual in em.functions:
            name = qual.split(".")[-1]
            if name in CHARGE_NAMES:
                ground.add(f"{_GROUND_CHARGE_MODULE}.{qual}")
    return ground


def compute_facts(project: ProjectIndex, graph: CallGraph) -> DataflowFacts:
    facts = DataflowFacts(project=project, graph=graph)

    # ------------------------------------------------------------------
    # Charge reachability
    # ------------------------------------------------------------------
    ground = _charge_ground(project)
    charges = set(ground)

    # Direct charges: a call site resolving into the ground set, or an
    # *unresolved* call spelled like a charge helper.  The fallback is
    # what keeps single-module fixtures (and modules calling helpers the
    # index cannot see) analyzable; a call that resolves to a local
    # non-charging shadow is NOT excused by its name.
    for summary in project.modules.values():
        for call in summary.calls:
            caller = graph.caller_node(summary, call["caller"])
            if call.get("resolution") == "internal":
                if any(t in ground for t in call.get("targets", ())):
                    charges.add(caller)
            elif call.get("resolution") == "unresolved":
                if call["name"] in CHARGE_NAMES:
                    charges.add(caller)

    # least fixpoint: f charges if any callee charges
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.edges.items():
            if caller not in charges and callees & charges:
                charges.add(caller)
                changed = True
    facts.reaches_charge = charges

    # covered-by-callers: all resolved callers charge (or are covered);
    # least fixpoint, so call cycles stay conservatively uncovered.
    covered: set[str] = set()
    changed = True
    while changed:
        changed = False
        for fq, callers in graph.redges.items():
            if fq in covered or fq in charges or not callers:
                continue
            if all(c in charges or c in covered for c in callers):
                covered.add(fq)
                changed = True
    facts.covered_by_callers = covered

    # ------------------------------------------------------------------
    # Lease-returning functions
    # ------------------------------------------------------------------
    returners: set[str] = set()
    for summary in project.modules.values():
        for site in summary.lease_sites:
            if site["disposition"] == "returned":
                returners.add(graph.caller_node(summary, site["caller"]))
    # propagate through wrappers: f returning g()'s value where g
    # returns a lease is itself a lease returner.
    changed = True
    while changed:
        changed = False
        for summary in project.modules.values():
            for call in summary.calls:
                if call["use"] != "returned":
                    continue
                if call.get("resolution") != "internal":
                    continue
                caller = graph.caller_node(summary, call["caller"])
                if caller in returners:
                    continue
                if any(t in returners for t in call.get("targets", ())):
                    returners.add(caller)
                    changed = True
    # `MemoryAccountant.lease` itself constructs-and-returns the lease:
    # it is the primordial returner, but call sites on it are already
    # classified as lease sites, so it is excluded from the call-site
    # scan the rule performs (see rules_lease).
    facts.lease_returners = returners
    return facts

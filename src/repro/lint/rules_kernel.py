"""R6 — kernel-dispatch rule.

Hot-path record movement and batch comparisons dispatch through the
pluggable kernel backend (:mod:`repro.em.kernels`): algorithm code calls
``machine.kernel.sort_by_composite`` / ``.concat`` / ``.bucket_of`` /
``.partition_at`` / ``.rank_order`` instead of inlining the numpy
equivalent.  A direct ``sort_records``/``concat_records`` call — or a
record-bearing ``np.argpartition``/``np.partition`` — in algorithm code
bypasses the selected backend, so an ``EM_KERNEL`` override silently
stops covering that call site and the backend differential tests lose
their guarantee.

The em layer itself (and the kernels package in particular) is exempt:
that is where the primitives live.  Tests are exempt for the usual
reason — they build fixtures and cross-check backends against the raw
numpy forms on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding
from .rules_cpu import _is_np_attr, _mentions_records

__all__ = ["KernelBypassRule"]

#: Record helpers whose algorithm-layer use bypasses the kernel backend
#: (each has a kernel method with identical, byte-for-byte semantics).
_BYPASS_HELPERS = {
    "sort_records": "machine.kernel.sort_by_composite",
    "concat_records": "machine.kernel.concat",
}

#: numpy calls that select/partition records — kernel territory when the
#: operand is record data (plain index arithmetic stays fine).
_BYPASS_NP_ATTRS = {
    "argpartition": "machine.kernel.rank_order",
    "partition": "machine.kernel.partition_at",
}


@register
class KernelBypassRule(LintRule):
    """R6: hot-path record ops must dispatch through ``machine.kernel``."""

    rule_id = "R6"
    title = "record movement/comparison must dispatch through the kernel"
    rationale = (
        "Block movement, concatenation, batch sort/partition and bucket "
        "distribution are backend-swappable (`EM_KERNEL`, "
        "`Machine(kernel=...)`), and the backends are proven "
        "byte-identical by the differential suite.  A direct "
        "`sort_records`/`concat_records` call — or a record-bearing "
        "`np.argpartition`/`np.partition` — in algorithm code pins that "
        "site to one implementation, outside the backend contract and "
        "outside what the differential tests exercise."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if not ctx.in_algorithm_layer or ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _BYPASS_HELPERS:
                yield self.finding(
                    ctx,
                    node,
                    f"`{func.id}` bypasses the kernel backend (use "
                    f"`{_BYPASS_HELPERS[func.id]}`)",
                )
            elif _is_np_attr(func) and func.attr in _BYPASS_NP_ATTRS:
                if any(_mentions_records(a) for a in node.args) or any(
                    _mentions_records(kw.value) for kw in node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"record-bearing `np.{func.attr}` bypasses the "
                        f"kernel backend (use "
                        f"`{_BYPASS_NP_ATTRS[func.attr]}`)",
                    )

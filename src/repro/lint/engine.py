"""The ``emlint`` rule engine.

Rules are :class:`ast.NodeVisitor`-style checkers registered in a global
registry (:func:`register`).  The engine parses each module once into a
:class:`ModuleContext` — source, AST, parent links, subsystem
classification, and per-line suppressions — and every enabled rule walks
that shared context emitting
:class:`~repro.lint.findings.LintFinding` objects.

Suppressions are per line: a trailing comment ``# emlint: disable=R2``
(comma-separate for several rules, omit the ``=...`` to silence every
rule) on the *reported* line silences the finding.  Suppressed findings
are retained separately so the CLI can report how many were waved
through.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .findings import LintFinding

__all__ = [
    "ModuleContext",
    "LintRule",
    "register",
    "all_rules",
    "get_rules",
    "lint_source",
    "lint_file",
    "ALGORITHM_SUBSYSTEMS",
    "EM_LAYER_SUBSYSTEMS",
]

#: Subsystems that hold *algorithm* code: every block transfer and key
#: comparison there must flow through the counted ``em`` APIs.
ALGORITHM_SUBSYSTEMS = frozenset(
    {"alg", "baselines", "service", "apps", "core", "shard"}
)

#: Subsystems that *implement* the model and its observability — they own
#: the private internals and the uncounted escape hatches.
EM_LAYER_SUBSYSTEMS = frozenset({"em", "obs"})

_DISABLE_RE = re.compile(
    r"#\s*emlint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+))?"
)


def _parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = every rule).

    Comments are located with :mod:`tokenize` so directives inside string
    literals are ignored.  Falls back to a line-regex scan if the module
    does not tokenize cleanly (the AST parse will report the real error).
    """
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (i, line) for i, line in enumerate(source.splitlines(), 1)
            if "#" in line
        ]
    out: dict[int, frozenset[str] | None] = {}
    for line, text in comments:
        m = _DISABLE_RE.search(text)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[line] = None
        else:
            ids = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
            prev = out.get(line, frozenset())
            out[line] = None if prev is None else (prev | ids)
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module under lint."""

    relpath: str
    source: str
    tree: ast.Module
    #: Package directly under ``repro`` that holds this module
    #: (``"alg"``, ``"em"``, ... — ``""`` for top-level modules like
    #: ``cli.py`` and for files outside the package, e.g. tests).
    subsystem: str
    #: True for files under a ``tests``/``benchmarks`` directory.
    is_test: bool
    suppressions: dict[int, frozenset[str] | None] = field(
        default_factory=dict
    )
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "ModuleContext":
        tree = ast.parse(source, filename=relpath)
        parts = Path(relpath).parts
        subsystem = ""
        if "repro" in parts:
            after = parts[parts.index("repro") + 1 :]
            if len(after) > 1:  # repro/<pkg>/module.py
                subsystem = after[0]
        is_test = any(p in ("tests", "benchmarks") for p in parts) or Path(
            relpath
        ).name.startswith("test_")
        ctx = cls(
            relpath=relpath,
            source=source,
            tree=tree,
            subsystem=subsystem,
            is_test=is_test,
            suppressions=_parse_suppressions(source),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[child] = parent
        return ctx

    # -- navigation ----------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function scope (the module if none)."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return self.tree

    # -- classification ------------------------------------------------
    @property
    def in_em_layer(self) -> bool:
        """True inside ``em/`` or ``obs/`` — the model's own plumbing."""
        return self.subsystem in EM_LAYER_SUBSYSTEMS

    @property
    def in_algorithm_layer(self) -> bool:
        """True inside a subsystem holding algorithm code."""
        return self.subsystem in ALGORITHM_SUBSYSTEMS

    def is_suppressed(self, finding: LintFinding) -> bool:
        """True when a same-line directive silences this finding.

        ``SYNTAX`` findings are never silenceable: a module that does
        not parse cannot be analyzed by any rule, so waving the parse
        error through would disable the whole gate for that file.
        """
        if finding.rule == "SYNTAX":
            return False
        if finding.line not in self.suppressions:
            return False
        rules = self.suppressions[finding.line]
        return rules is None or finding.rule in rules


class LintRule:
    """Base class for emlint rules.

    Module rules (``scope == "module"``) implement :meth:`check`,
    yielding findings for one parsed module.  Whole-program rules
    (``scope == "project"``) implement :meth:`check_project`, consuming
    the interprocedural :class:`~repro.lint.dataflow.DataflowFacts` built
    over every module in the run.  Registration happens via the
    :func:`register` decorator, which keys the rule by ``rule_id``.
    """

    rule_id: str = ""
    title: str = ""
    #: One-paragraph explanation of why the rule exists (the LINTING.md
    #: catalog is generated from these).
    rationale: str = ""
    severity: str = "error"
    #: "module" = per-AST rule (cacheable per content hash);
    #: "project" = needs the call graph / dataflow facts.
    scope: str = "module"

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if self.scope == "module":
            raise NotImplementedError
        return ()

    def check_project(self, facts) -> Iterable[LintFinding]:
        """Whole-program pass (``facts``:
        :class:`~repro.lint.dataflow.DataflowFacts`)."""
        if self.scope == "project":
            raise NotImplementedError
        return ()

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> LintFinding:
        """Build a finding anchored at ``node``."""
        return LintFinding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )

    def finding_at(
        self, relpath: str, line: int, col: int, message: str
    ) -> LintFinding:
        """Build a finding from explicit coordinates (project rules
        anchor on summary records, not live AST nodes)."""
        return LintFinding(
            path=relpath,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule (by ``rule_id``) to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> list[LintRule]:
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rules(rule_ids: Iterable[str] | None = None) -> list[LintRule]:
    """Resolve ``rule_ids`` (``None`` = all) to rule instances."""
    _ensure_loaded()
    if rule_ids is None:
        return all_rules()
    rules = []
    for rid in rule_ids:
        rid = rid.upper()
        if rid not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rid!r}; known rules: {known}")
        rules.append(_REGISTRY[rid])
    return rules


def _ensure_loaded() -> None:
    """Import the rule modules (idempotent) so the registry is filled."""
    from . import (  # noqa: F401
        rules_access,
        rules_cpu,
        rules_kernel,
        rules_lease,
        rules_protocol,
        rules_registry,
        rules_rng,
        rules_shard,
    )


def lint_source(
    source: str,
    relpath: str,
    rules: Iterable[LintRule] | None = None,
) -> tuple[list[LintFinding], list[LintFinding]]:
    """Lint one module given as source text.

    Returns ``(active, suppressed)``: findings that count against the
    gate, and findings silenced by a same-line ``# emlint: disable``
    directive.  Both lists are sorted by location.  A module that does
    not parse yields one unsuppressable ``SYNTAX`` finding instead of
    aborting the run.
    """
    try:
        ctx = ModuleContext.from_source(source, relpath)
    except SyntaxError as exc:
        return [
            LintFinding(
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="SYNTAX",
                message=f"module does not parse: {exc.msg}",
            )
        ], []
    rules = all_rules() if rules is None else list(rules)
    active: list[LintFinding] = []
    suppressed: list[LintFinding] = []
    for rule in rules:
        if rule.scope != "module":
            continue
        for finding in rule.check(ctx):
            (suppressed if ctx.is_suppressed(finding) else active).append(
                finding
            )
    project_rules = [r for r in rules if r.scope == "project"]
    if project_rules:
        # Whole-program rules over a one-module "project": unresolved
        # calls fall back to name heuristics, which is what keeps
        # single-module fixtures meaningful.
        from .callgraph import CallGraph
        from .dataflow import compute_facts
        from .project import ProjectIndex, summarize_module

        project = ProjectIndex([summarize_module(ctx)])
        facts = compute_facts(project, CallGraph(project))
        for rule in project_rules:
            for finding in rule.check_project(facts):
                (
                    suppressed if ctx.is_suppressed(finding) else active
                ).append(finding)
    return sorted(active), sorted(suppressed)


def lint_file(
    path: Path | str,
    rules: Iterable[LintRule] | None = None,
    root: Path | None = None,
) -> tuple[list[LintFinding], list[LintFinding]]:
    """Lint one ``.py`` file; paths in findings are relative to ``root``
    when given (else reported as passed in)."""
    path = Path(path)
    rel = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(), rel, rules)

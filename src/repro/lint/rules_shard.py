"""R7 — shard-isolation rule.

Shards are separate machines: the only sanctioned channel for
cross-shard data movement is ``Transport.send``/``recv``
(:mod:`repro.shard.transport`), whose every message is charged as block
I/O on both endpoints.  Code in ``shard/`` that reaches into another
object's ``machine``/``disk``/``file``/``engine`` (or their
underscore-private spellings) moves records between shards for free —
uncharged, invisible to traces and metrics, and outside what the
differential and conservation tests cover.

An object's *own* state is fine: accesses through ``self``/``cls``
(e.g. a worker's ``self._machine``) are exempt, as is
``transport.py`` itself — the one module allowed to touch both
endpoints' machines, since it is the thing doing the charging.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding

__all__ = ["ShardIsolationRule"]

#: Attribute names that reach a shard's private substrate.
_SHARD_STATE_ATTRS = frozenset(
    {
        "machine",
        "disk",
        "file",
        "engine",
        "_machine",
        "_disk",
        "_file",
        "_engine",
    }
)

#: The sanctioned channel module (relative to the shard package).
_CHANNEL_MODULE = "transport.py"


@register
class ShardIsolationRule(LintRule):
    """R7: cross-shard data movement must go through ``Transport``."""

    rule_id = "R7"
    title = "shard code must not reach into another shard's substrate"
    rationale = (
        "Every message between the coordinator and a shard worker is "
        "charged as block I/O on both endpoints by the Transport layer. "
        "Touching another object's `machine`/`disk`/`file`/`engine` "
        "inside `shard/` moves data between machines without paying for "
        "it — the communication disappears from counters, traces, "
        "metrics, and the budget gate, and the sharded/single-machine "
        "conservation identity silently breaks."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if ctx.subsystem != "shard" or ctx.is_test:
            return
        if Path(ctx.relpath).name == _CHANNEL_MODULE:
            return  # the sanctioned channel charges both endpoints itself
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _SHARD_STATE_ATTRS:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                continue
            yield self.finding(
                ctx,
                node,
                f"access to `.{node.attr}` of a non-self object inside "
                "`shard/` — cross-shard state must move through "
                "`Transport.send`/`recv` so it is charged on both "
                "endpoints",
            )

"""R4 — seeded-randomness rule.

Every experiment in this reproduction is bit-for-bit reproducible: the
randomized algorithms (§5), the workload generators, and the query
traces all thread explicit seeds into local
``np.random.Generator`` instances.  Global-state RNG (``random.*``
module functions, legacy ``np.random.*`` functions, or an *unseeded*
``default_rng()``) silently breaks that guarantee — two runs of the same
experiment would measure different instances.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding

__all__ = ["UnseededRngRule"]

#: ``np.random.<name>`` calls that *construct* a generator from an
#: explicit seed/bit-generator argument — the sanctioned API.
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
     "MT19937", "SFC64"}
)


def _np_random_call(node: ast.Call) -> str | None:
    """Return ``name`` for calls of the form ``np.random.name(...)`` /
    ``numpy.random.name(...)``, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    mod = func.value
    if (
        isinstance(mod, ast.Attribute)
        and mod.attr == "random"
        and isinstance(mod.value, ast.Name)
        and mod.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


@register
class UnseededRngRule(LintRule):
    """R4: no unseeded / global-state randomness under ``src/repro``."""

    rule_id = "R4"
    title = "randomness must come from an explicitly seeded Generator"
    rationale = (
        "Experiment reproducibility is part of the contract: results, "
        "budget envelopes, and cached runner records are compared "
        "across commits.  Module-level `random.*` and legacy "
        "`np.random.*` functions draw from hidden global state, and "
        "`np.random.default_rng()` without a seed randomizes from the "
        "OS; any of them makes a measurement unrepeatable.  Construct "
        "`np.random.default_rng(seed)` locally and pass it around."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stdlib `random.<fn>(...)` — module-level global RNG.  The
            # seeded class form `random.Random(seed)` is allowed.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "Random" and node.args:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"`random.{func.attr}()` uses the global RNG; use a "
                    f"seeded `np.random.default_rng(seed)` instead",
                )
                continue
            name = _np_random_call(node)
            if name is None:
                continue
            if name in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"`np.random.{name}()` without a seed is "
                        f"entropy-seeded; pass an explicit seed",
                    )
                continue
            yield self.finding(
                ctx,
                node,
                f"legacy `np.random.{name}()` draws from global state; "
                f"use a seeded `np.random.default_rng(seed)`",
            )

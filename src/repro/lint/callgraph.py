"""Project call graph: resolving every call site to its definition.

Resolution is purely syntactic, layered from most to least precise:

1. **Local names** — a call ``f(...)`` resolves through the module's own
   top-level defs, then its import aliases (``from ..em.comparisons
   import cmp_sort`` makes ``cmp_sort`` fully qualified).
2. **Dotted chains** — ``sampling.approx_quantile_pivots(...)`` walks
   the alias of the chain root to a project module; ``np.sort`` walks it
   to an external package.
3. **self methods** — ``self.m(...)`` inside ``class C`` resolves to
   ``C.m`` or up the project-resolvable base-class chain.
4. **Annotated receivers** — ``machine.phase(...)`` where the enclosing
   function declares ``machine: "Machine"`` resolves through the class's
   method table (quoted forward references included).
5. **Unique method names** — a method name defined by exactly one
   project class resolves to it; a name defined by several resolves to
   *all* of them (an over-approximation that is sound for the
   existential "does any path charge" question the dataflow pass asks).
6. **Builtins and known externals** — ``len``, ``np.*``, stdlib modules:
   resolved-external (they can never charge or lease).

Everything else is *unresolved*; :meth:`CallGraph.stats` reports the
rate, which the golden test pins at >= 95 % for the package source.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass

from .project import ModuleSummary, ProjectIndex

__all__ = ["CallGraph", "CallStats", "EXTERNAL_ROOTS"]

#: Import roots that are definitely outside the project.
EXTERNAL_ROOTS = frozenset(
    {
        "numpy", "np", "scipy", "math", "os", "sys", "io", "re", "ast",
        "json", "time", "itertools", "functools", "collections",
        "dataclasses", "typing", "pathlib", "contextlib", "argparse",
        "multiprocessing", "pickle", "struct", "hashlib", "tokenize",
        "textwrap", "tempfile", "shutil", "subprocess", "heapq",
        "bisect", "random", "warnings", "abc", "enum", "copy",
        "traceback", "inspect", "importlib", "signal", "socket",
        "threading", "queue", "logging", "csv", "gzip", "zlib", "uuid",
        "datetime", "string", "operator", "types", "builtins", "errno",
        "pytest", "hypothesis", "numbers",
    }
)

#: Method names that are overwhelmingly stdlib/numpy container methods —
#: resolving them to a same-named project method would be noise.
_EXTERNAL_METHODS = frozenset(
    {
        "append", "extend", "pop", "insert", "remove", "clear", "index",
        "count", "add", "discard", "union", "update", "get", "items",
        "keys", "values", "setdefault", "join", "split", "rsplit",
        "strip", "lstrip", "rstrip", "startswith", "endswith", "format",
        "replace", "lower", "upper", "encode", "decode", "splitlines",
        "astype", "reshape", "tolist", "tobytes", "view", "fill",
        "flatten", "ravel", "squeeze", "nonzero", "item", "dumps",
        "loads", "dump", "load", "mkdir", "exists", "unlink", "glob",
        "rglob", "read_text", "write_text", "read_bytes", "write_bytes",
        "resolve", "relative_to", "is_dir", "is_file", "iterdir",
        "hexdigest", "title", "zfill", "most_common", "popleft",
        "appendleft", "putmask", "searchsorted_",
    }
)

_BUILTINS = frozenset(dir(builtins))


@dataclass
class CallStats:
    """Resolution accounting over the intra-package call sites."""

    total: int = 0
    resolved_internal: int = 0
    resolved_external: int = 0
    unresolved: int = 0

    @property
    def rate(self) -> float:
        if not self.total:
            return 1.0
        return (self.resolved_internal + self.resolved_external) / self.total

    def to_dict(self) -> dict:
        return {
            "call_sites": self.total,
            "resolved_internal": self.resolved_internal,
            "resolved_external": self.resolved_external,
            "unresolved": self.unresolved,
            "resolution_rate": round(self.rate, 4),
        }


class CallGraph:
    """Caller/callee edges over fully qualified function names.

    Node names are ``<module>.<qualname>`` (``repro.alg.selection._select``,
    ``repro.em.machine.Machine.charge_comparisons``); a module's top-level
    body is ``<module>.<module body>`` so module-scope calls still have a
    caller node.
    """

    MODULE_BODY = "<module body>"

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        #: caller fq -> set of callee fq (internal edges only)
        self.edges: dict[str, set[str]] = {}
        #: callee fq -> set of caller fq
        self.redges: dict[str, set[str]] = {}
        #: per call site: (summary, call-record) -> resolution
        self.site_resolutions: list[tuple] = []
        self.stats = CallStats()
        self._package_roots = {
            m.split(".")[0] for m in project.modules if not m.startswith("<ext>")
        }
        for summary in project.modules.values():
            for call in summary.calls:
                self._resolve_site(summary, call)

    # ------------------------------------------------------------------
    def caller_node(self, summary: ModuleSummary, caller: str) -> str:
        qual = caller if caller else self.MODULE_BODY
        return f"{summary.module_name}.{qual}"

    def _add_edge(self, caller: str, callees: list[str]) -> None:
        self.edges.setdefault(caller, set()).update(callees)
        for c in callees:
            self.redges.setdefault(c, set()).add(caller)

    def callees(self, fq: str) -> set[str]:
        return self.edges.get(fq, set())

    def callers(self, fq: str) -> set[str]:
        return self.redges.get(fq, set())

    # ------------------------------------------------------------------
    def _resolve_site(self, summary: ModuleSummary, call: dict) -> None:
        counted = summary.module_name.split(".")[0] in self._package_roots
        resolution, targets = self._resolve(summary, call)
        call["resolution"] = resolution
        call["targets"] = targets
        if counted:
            self.stats.total += 1
            if resolution == "internal":
                self.stats.resolved_internal += 1
            elif resolution == "external":
                self.stats.resolved_external += 1
            else:
                self.stats.unresolved += 1
        if resolution == "internal" and targets:
            self._add_edge(self.caller_node(summary, call["caller"]), targets)
        self.site_resolutions.append((summary.module_name, call))

    def _class_method(self, fq_class: str, method: str) -> str | None:
        """Resolve ``method`` on ``fq_class`` or its project bases."""
        seen = set()
        stack = [fq_class]
        while stack:
            fq = stack.pop()
            if fq in seen:
                continue
            seen.add(fq)
            info = self.project.classes.get(fq)
            if info is None:
                continue
            if method in info["methods"]:
                return f"{fq}.{method}"
            mod = fq.rsplit(".", 1)[0]
            s = self.project.modules.get(mod)
            for b in info["bases"]:
                bname = b.split(".")[-1]
                if s and bname in s.classes:
                    stack.append(f"{mod}.{bname}")
                elif s and bname in s.imports and s.imports[bname] in self.project.classes:
                    stack.append(s.imports[bname])
                elif len(self.project.class_index.get(bname, [])) == 1:
                    stack.append(self.project.class_index[bname][0])
        return None

    def _resolve_import_target(self, target: str) -> tuple[str, list[str]]:
        """Classify a fully qualified import target."""
        root = target.split(".")[0]
        if root in EXTERNAL_ROOTS or root not in self._package_roots:
            return "external", []
        # repro.em.comparisons.cmp_sort — function, class, or module?
        if target in self.project.functions:
            return "internal", [target]
        if target in self.project.classes:
            init = self._class_method(target, "__init__")
            return "internal", [init] if init else []
        if target in self.project.modules:
            return "internal", [f"{target}.{CallGraph.MODULE_BODY}"]
        # `from .x import name` where x/__init__ re-exports `name`:
        # fall back to the top-level functions of that name anywhere in
        # the project (over-approximating when the name is ambiguous).
        name = target.split(".")[-1]
        tops = [
            f"{m}.{name}"
            for m, s in self.project.modules.items()
            if name in s.functions
        ]
        if tops:
            return "internal", tops
        if len(self.project.class_index.get(name, [])) == 1:
            init = self._class_method(self.project.class_index[name][0], "__init__")
            return "internal", [init] if init else []
        return "unresolved", []

    def _resolve(self, summary: ModuleSummary, call: dict) -> tuple[str, list[str]]:
        name = call["name"]
        mod = summary.module_name

        if call["kind"] == "name":
            if name in summary.functions and "." not in name:
                return "internal", [f"{mod}.{name}"]
            if name in summary.classes:
                init = self._class_method(f"{mod}.{name}", "__init__")
                return "internal", [init] if init else []
            if name in summary.imports:
                return self._resolve_import_target(summary.imports[name])
            if name in _BUILTINS:
                return "external", []
            # decorator-style / nested names: unique project function?
            return "unresolved", []

        # attribute call: walk the chain root
        chain = call["chain"]
        root = chain.split(".")[0] if chain else None

        if root in ("self", "cls"):
            cls = None
            caller = call["caller"]
            if caller and "." in caller:
                cls = caller.split(".")[0]
            if chain in ("self", "cls") and cls:
                target = self._class_method(f"{mod}.{cls}", name)
                if target:
                    return "internal", [target]
                if name in _EXTERNAL_METHODS:
                    return "external", []
                return self._method_by_name(name)
            # self.attr.method(...) — receiver type unknown; fall through
            return self._method_by_name(name, allow_external=True)

        if root and root in summary.imports:
            target = summary.imports[root]
            troot = target.split(".")[0]
            if troot in EXTERNAL_ROOTS or troot not in self._package_roots:
                return "external", []
            rest = chain.split(".")[1:]
            fq = ".".join([target, *rest])
            if fq in self.project.modules:
                # module.func(...)
                s = self.project.modules[fq]
                if name in s.functions:
                    return "internal", [f"{fq}.{name}"]
                if name in s.classes:
                    init = self._class_method(f"{fq}.{name}", "__init__")
                    return "internal", [init] if init else []
                return "unresolved", []
            if fq in self.project.classes:
                target_m = self._class_method(fq, name)
                if target_m:
                    return "internal", [target_m]
            # imported object of known class? e.g. alias to a class
            if target in self.project.classes and len(chain.split(".")) == 1:
                target_m = self._class_method(target, name)
                if target_m:
                    return "internal", [target_m]
            return self._method_by_name(name, allow_external=True)

        if root in EXTERNAL_ROOTS:
            return "external", []

        # annotated receiver: machine: "Machine" -> Machine.method
        ann = call.get("ann")
        if ann and len(chain.split(".")) == 1:
            for fq_class in self.project.class_index.get(ann, []):
                target = self._class_method(fq_class, name)
                if target:
                    return "internal", [target]
        return self._method_by_name(name, allow_external=True)

    def _method_by_name(
        self, name: str, allow_external: bool = False
    ) -> tuple[str, list[str]]:
        if allow_external and name in _EXTERNAL_METHODS:
            return "external", []
        owners = self.project.method_index.get(name, [])
        if len(owners) == 1:
            return "internal", [owners[0]]
        if len(owners) > 1:
            return "internal", list(owners)  # over-approximate: all of them
        # top-level function with a unique name anywhere in the project?
        cands = []
        for m, s in self.project.modules.items():
            if name in s.functions:
                cands.append(f"{m}.{name}")
        if len(cands) == 1:
            return "internal", cands
        if allow_external and name in _BUILTINS:
            return "external", []
        return "unresolved", []

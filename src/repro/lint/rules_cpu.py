"""R3 — comparison-counting rule (v2: interprocedural).

The paper's model is comparison-based: alongside block transfers, the
simulator charges key comparisons through the
:mod:`repro.em.comparisons` helpers (``cmp_sort``, ``cmp_search``,
``cmp_linear``, ``cmp_median5``) or ``Machine.charge_comparisons``.  A
raw ``np.sort``/``sorted()``/record ``<`` in algorithm code performs
comparisons the counter never sees.

v1 worked at *function granularity*: a sink was clean iff the same
function body mentioned a charge-looking name.  That had two systematic
errors, both fixed by running over the project call graph
(:mod:`repro.lint.dataflow`):

* **false positives** — a pure helper whose *callers* charge (the
  ``_group_medians`` pattern) needed a suppression; v2 clears it via
  ``covered_by_callers``, and clears helpers that charge *transitively*
  (the charge lives two calls down) via ``reaches_charge``.
* **false negatives** — any local ``def cmp_sort(...)`` shadow excused a
  sink by name alone; v2 resolves the call, and a resolved target that
  never reaches ``Machine.charge_comparisons`` does not count.  Only
  genuinely *unresolved* calls keep the name heuristic (which is what
  keeps single-module fixtures analyzable).

The sink extraction itself (which calls/compares count as record
comparisons) lives in :func:`repro.lint.project.summarize_module`; this
module keeps the shared marker sets for reference and for the tests.
"""

from __future__ import annotations

from typing import Iterable

from .engine import LintRule, register
from .findings import LintFinding

# Sink/record detection now lives with the summary extractor; re-export
# the helpers other rule modules (R6) build on.
from .project import _is_np_attr, _mentions_records  # noqa: F401

__all__ = ["RawComparisonRule"]

#: Functions that perform key comparisons without charging them.
_SINK_FUNCS = frozenset(
    {"sorted", "min", "max"}  # builtins over record arrays
)
_SINK_NP_ATTRS = frozenset(
    {
        "sort", "argsort", "lexsort", "partition", "argpartition",
        "searchsorted",
    }
)
#: em helpers that sort/compare records but (by design) leave the
#: charging to their caller.
_SINK_HELPERS = frozenset({"sort_records"})

#: Calls that register the comparisons with the machine.
_CHARGE_FUNCS = frozenset(
    {"cmp_sort", "cmp_search", "cmp_linear", "cmp_median5",
     "charge_comparisons"}
)

#: Names whose presence in a comparison operand marks it as a *record*
#: comparison (the total order the model counts).
_RECORD_MARKERS = frozenset({"composite", "composite_of"})


@register
class RawComparisonRule(LintRule):
    """R3: record comparisons must be charged to the comparison counter."""

    rule_id = "R3"
    title = "record comparisons must route through em.comparisons"
    rationale = (
        "CPU cost in the model is key comparisons; the lemma-level "
        "claims (decision-tree lower bounds, Θ(N·lg K) internal work) "
        "are checked against the machine's comparison counter.  A "
        "`np.sort`/`sorted()`/`sort_records` call — or a raw `<`/`<=` "
        "over record composites — is clean only when the enclosing "
        "function provably reaches `Machine.charge_comparisons` (a "
        "`cmp_*` helper, directly or through callees), or when every "
        "resolved caller does (the pure-helper-whose-callers-pay "
        "pattern).  Anything else performs comparisons the counter "
        "misses."
    )
    scope = "project"

    def check_project(self, facts) -> Iterable[LintFinding]:
        for summary in facts.project.modules.values():
            for sink in summary.cmp_sinks:
                fq = facts.graph.caller_node(summary, sink["caller"])
                if facts.charge_verdict(fq) is not None:
                    continue
                where = (
                    f"`{sink['caller']}`" if sink["caller"]
                    else "module scope"
                )
                if sink["sink"] == "<compare>":
                    what = "raw order comparison over record keys/composites"
                else:
                    what = f"`{sink['sink']}` compares records"
                yield self.finding_at(
                    summary.relpath,
                    sink["line"],
                    sink["col"],
                    f"{what} but {where} neither reaches "
                    f"`charge_comparisons` on any call path nor is "
                    f"covered by charging callers (pair it with a "
                    f"`cmp_*` helper)",
                )

"""R3 — comparison-counting rule.

The paper's model is comparison-based: alongside block transfers, the
simulator charges key comparisons through the
:mod:`repro.em.comparisons` helpers (``cmp_sort``, ``cmp_search``,
``cmp_linear``, ``cmp_median5``) or ``Machine.charge_comparisons``.  A
raw ``np.sort``/``sorted()``/record ``<`` in algorithm code performs
comparisons the counter never sees.

The rule works at *function granularity*: a comparison sink inside a
function that also charges comparisons somewhere is assumed to be the
operation the charge pays for (matching the codebase convention of one
``cmp_*`` call per vectorized numpy step).  Only functions that compare
without charging anything are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding

__all__ = ["RawComparisonRule"]

#: Functions that perform key comparisons without charging them.
_SINK_FUNCS = frozenset(
    {"sorted", "min", "max"}  # builtins over record arrays — see _is_record
)
_SINK_NP_ATTRS = frozenset(
    {
        "sort", "argsort", "lexsort", "partition", "argpartition",
        "searchsorted",
    }
)
#: em helpers that sort/compare records but (by design) leave the
#: charging to their caller.
_SINK_HELPERS = frozenset({"sort_records"})

#: Calls that register the comparisons with the machine.
_CHARGE_FUNCS = frozenset(
    {"cmp_sort", "cmp_search", "cmp_linear", "cmp_median5",
     "charge_comparisons"}
)

#: Names whose presence in a comparison operand marks it as a *record*
#: comparison (the total order the model counts).
_RECORD_MARKERS = frozenset({"composite", "composite_of"})


def _is_np_attr(func: ast.AST) -> bool:
    """True for ``np.<attr>`` / ``numpy.<attr>`` attribute functions."""
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _mentions_records(node: ast.AST) -> bool:
    """True when the expression involves record composites or keys."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            f = sub.func
            name = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
            if name in _RECORD_MARKERS:
                return True
        elif isinstance(sub, ast.Subscript):
            sl = sub.slice
            if isinstance(sl, ast.Constant) and sl.value in ("key", "uid"):
                return True
    return False


def _charges(scope: ast.AST) -> bool:
    """Does this function (or module) scope charge comparisons?"""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            f = node.func
            name = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
            if name in _CHARGE_FUNCS:
                return True
    return False


@register
class RawComparisonRule(LintRule):
    """R3: record comparisons must be charged to the comparison counter."""

    rule_id = "R3"
    title = "record comparisons must route through em.comparisons"
    rationale = (
        "CPU cost in the model is key comparisons; the lemma-level "
        "claims (decision-tree lower bounds, Θ(N·lg K) internal work) "
        "are checked against the machine's comparison counter.  A "
        "`np.sort`/`sorted()`/`sort_records` call — or a raw `<`/`<=` "
        "over record composites — in a function that never calls a "
        "`cmp_*` helper or `charge_comparisons` performs comparisons "
        "the counter misses."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if not ctx.in_algorithm_layer or ctx.is_test:
            return
        charged: dict[ast.AST, bool] = {}

        def scope_charges(node: ast.AST) -> bool:
            scope = ctx.enclosing_function(node)
            if scope not in charged:
                charged[scope] = _charges(scope)
            return charged[scope]

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                sink = self._call_sink(node)
                if sink is not None and not scope_charges(node):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{sink}` compares records but the enclosing "
                        f"function never charges comparisons (pair it "
                        f"with a `cmp_*` helper or `charge_comparisons`)",
                    )
            elif isinstance(node, ast.Compare):
                if not any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                if not any(_mentions_records(o) for o in operands):
                    continue
                if not scope_charges(node):
                    yield self.finding(
                        ctx,
                        node,
                        "raw order comparison over record keys/composites "
                        "in a function that never charges comparisons",
                    )

    @staticmethod
    def _call_sink(node: ast.Call) -> str | None:
        """The sink name if this call performs uncharged comparisons
        over record data, else None."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _SINK_HELPERS:
                return func.id
            if func.id in _SINK_FUNCS and any(
                _mentions_records(a) for a in node.args
            ):
                return func.id
            return None
        if _is_np_attr(func) and func.attr in _SINK_NP_ATTRS:
            # np.searchsorted & friends over plain index arithmetic are
            # bookkeeping; only record-bearing operands are model cost.
            if any(_mentions_records(a) for a in node.args) or any(
                _mentions_records(kw.value) for kw in node.keywords
            ):
                return f"np.{func.attr}"
            return None
        if isinstance(func, ast.Attribute) and func.attr == "sort":
            # list/ndarray .sort() — flag only record-bearing receivers.
            if _mentions_records(func.value):
                return ".sort()"
        return None

"""Repository-level lint driver: file discovery, reports, JSON output.

:func:`lint_paths` walks the given files/directories (default: the
``repro`` package source), lints every ``.py`` file, and returns a
:class:`LintReport` carrying active and suppressed findings plus file
counts — the object the CLI renders as text or ``--json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .engine import LintRule, get_rules, lint_file
from .findings import LintFinding

__all__ = ["LintReport", "lint_paths", "iter_python_files", "default_root"]


def default_root() -> Path:
    """The repository's package source root (``.../src``)."""
    return Path(__file__).resolve().parents[2]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories,
    sorted for deterministic reports; ``__pycache__`` is skipped."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for file in candidates:
            if "__pycache__" in file.parts or file in seen:
                continue
            seen.add(file)
            yield file


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    findings: list[LintFinding] = field(default_factory=list)
    suppressed: list[LintFinding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is active."""
        return not self.errors

    def render(self) -> str:
        """Human-readable report."""
        lines = [f.render() for f in self.findings]
        n_err = len(self.errors)
        n_warn = len(self.findings) - n_err
        summary = (
            f"checked {self.files} files against "
            f"{', '.join(self.rules)}: "
            f"{n_err} error(s), {n_warn} warning(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join([*lines, summary] if lines else [summary])

    def to_dict(self) -> dict:
        """Machine-readable form (the ``--json`` payload)."""
        return {
            "files": self.files,
            "rules": self.rules,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1) + "\n"


def lint_paths(
    paths: Iterable[Path | str] | None = None,
    rule_ids: Iterable[str] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint files/directories against the selected rules.

    ``paths`` defaults to the installed ``repro`` package source tree;
    findings report paths relative to ``root`` (default: the directory
    that contains the package, so paths read ``repro/...``).
    """
    if root is None:
        root = default_root()
    if paths is None:
        paths = [root / "repro"]
    rules: list[LintRule] = get_rules(rule_ids)
    report = LintReport(rules=[r.rule_id for r in rules])
    for file in iter_python_files(Path(p) for p in paths):
        try:
            rel_root = root if file.resolve().is_relative_to(root) else None
        except AttributeError:  # pragma: no cover - py<3.9 fallback
            rel_root = None
        active, suppressed = lint_file(
            file.resolve() if rel_root else file, rules, root=rel_root
        )
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files += 1
    report.findings.sort()
    report.suppressed.sort()
    return report

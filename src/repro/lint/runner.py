"""Repository-level lint driver: discovery, caching, reports, JSON.

:func:`lint_paths` is the whole pipeline:

1. **discover** the file set (default: the ``repro`` package source plus
   the repo's ``scripts/`` and ``benchmarks/`` trees, so rules like R4
   also cover experiment drivers);
2. **per-module stage** — parse each file, run the module-scoped rules,
   and build its :class:`~repro.lint.project.ModuleSummary`; both
   products are served from the content-addressed
   :class:`~repro.lint.cache.AnalysisCache` on a warm run, so an
   unchanged file costs one hash;
3. **whole-program stage** — assemble the
   :class:`~repro.lint.project.ProjectIndex`, resolve the
   :class:`~repro.lint.callgraph.CallGraph`, compute the
   :class:`~repro.lint.dataflow.DataflowFacts`, and run the
   project-scoped rules (R3/R5/R8/R9).  This stage is recomputed every
   run — it is global by construction and cheap next to parsing.

Even when ``paths`` selects a subset of files, the whole-program stage
runs over the *full* default tree (plus the selection) so the
interprocedural verdicts cannot be weakened by narrowing the command
line; only findings for the requested files are reported.

``--diff`` support lives in :func:`git_changed_files` (restrict the
*reported* set to files changed against a git ref) and ``--baseline``
in :func:`baseline_delta` (suppress findings already present in a
stored report).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .cache import AnalysisCache, default_cache_path
from .callgraph import CallGraph
from .dataflow import compute_facts
from .engine import LintRule, ModuleContext, get_rules
from .findings import LintFinding
from .project import ModuleSummary, ProjectIndex, _module_name, summarize_module

__all__ = [
    "LintReport",
    "lint_paths",
    "iter_python_files",
    "default_root",
    "default_lint_paths",
    "git_changed_files",
    "baseline_delta",
]


def default_root() -> Path:
    """The repository's package source root (``.../src``)."""
    return Path(__file__).resolve().parents[2]


def default_lint_paths(root: Path) -> list[Path]:
    """The default lint set: the package source plus the repository's
    ``scripts/`` and ``benchmarks/`` trees (when present)."""
    paths = [root / "repro"]
    for extra in ("scripts", "benchmarks"):
        p = root.parent / extra
        if p.is_dir():
            paths.append(p)
    return paths


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories,
    sorted for deterministic reports; ``__pycache__`` is skipped."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for file in candidates:
            if "__pycache__" in file.parts or file in seen:
                continue
            seen.add(file)
            yield file


def _relpath(file: Path, root: Path) -> str:
    """Report path for ``file``: relative to ``root`` (``repro/...``),
    else to the repo root (``scripts/...``), else as given."""
    file = file.resolve()
    for base in (root, root.parent):
        try:
            return str(file.relative_to(base))
        except ValueError:
            continue
    return str(file)


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    findings: list[LintFinding] = field(default_factory=list)
    suppressed: list[LintFinding] = field(default_factory=list)
    files: int = 0
    rules: list[str] = field(default_factory=list)
    #: call-graph resolution accounting (whole-program stage)
    callgraph: dict = field(default_factory=dict)
    #: analysis-cache accounting: {"hits": n, "misses": n}
    cache_stats: dict = field(default_factory=dict)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is active."""
        return not self.errors

    def render(self) -> str:
        """Human-readable report."""
        lines = [f.render() for f in self.findings]
        n_err = len(self.errors)
        n_warn = len(self.findings) - n_err
        summary = (
            f"checked {self.files} files against "
            f"{', '.join(self.rules)}: "
            f"{n_err} error(s), {n_warn} warning(s), "
            f"{len(self.suppressed)} suppressed"
        )
        if self.callgraph:
            summary += (
                f" [call graph: {self.callgraph['call_sites']} sites, "
                f"{self.callgraph['resolution_rate']:.1%} resolved; "
                f"cache: {self.cache_stats.get('hits', 0)} hit(s)]"
            )
        return "\n".join([*lines, summary] if lines else [summary])

    def to_dict(self) -> dict:
        """Machine-readable form (the ``--json`` payload)."""
        return {
            "files": self.files,
            "rules": self.rules,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "callgraph": self.callgraph,
            "cache": self.cache_stats,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1) + "\n"


def _module_stage(
    file: Path,
    rel: str,
    module_rules: list[LintRule],
    cache: AnalysisCache,
) -> tuple[ModuleSummary, list[LintFinding], list[LintFinding], str]:
    """Per-module analysis for one file, cache-backed.

    Returns ``(summary, active, suppressed, source)``; the cached
    payload always covers *every* module rule, so rule selection
    filters the result instead of fragmenting the cache.
    """
    source = file.read_text()
    entry = cache.get(source)
    if entry is not None:
        summary = ModuleSummary.from_dict(entry["summary"])
        active = [LintFinding(**d) for d in entry["active"]]
        suppressed = [LintFinding(**d) for d in entry["suppressed"]]
        return summary, active, suppressed, source

    active, suppressed = [], []
    try:
        ctx = ModuleContext.from_source(source, rel)
    except SyntaxError as exc:
        active = [
            LintFinding(
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="SYNTAX",
                message=f"module does not parse: {exc.msg}",
            )
        ]
        summary = ModuleSummary(
            relpath=rel, module_name=_module_name(rel),
            subsystem="", is_test=False,
        )
    else:
        for rule in module_rules:
            for finding in rule.check(ctx):
                (
                    suppressed if ctx.is_suppressed(finding) else active
                ).append(finding)
        summary = summarize_module(ctx)
    cache.put(
        source,
        {
            "summary": summary.to_dict(),
            "active": [f.to_dict() for f in sorted(active)],
            "suppressed": [f.to_dict() for f in sorted(suppressed)],
        },
    )
    return summary, sorted(active), sorted(suppressed), source


def lint_paths(
    paths: Iterable[Path | str] | None = None,
    rule_ids: Iterable[str] | None = None,
    root: Path | None = None,
    *,
    use_cache: bool = True,
    cache_path: Path | None = None,
    only_paths: Iterable[str] | None = None,
) -> LintReport:
    """Lint files/directories against the selected rules.

    ``paths`` defaults to :func:`default_lint_paths`; findings report
    paths relative to ``root`` (default: the directory containing the
    package, so paths read ``repro/...``; files outside it are relative
    to the repo root, e.g. ``scripts/...``).  ``only_paths`` further
    restricts which files' findings are *reported* (``--diff`` mode) —
    analysis still covers everything.
    """
    if root is None:
        root = default_root()
    requested = paths is not None
    if paths is None:
        paths = default_lint_paths(root)
    all_rule_objs = get_rules(None)
    selected = get_rules(rule_ids)
    selected_ids = {r.rule_id for r in selected} | {"SYNTAX"}
    module_rules = [r for r in all_rule_objs if r.scope == "module"]
    project_rules = [r for r in selected if r.scope == "project"]

    cache = AnalysisCache(
        (cache_path or default_cache_path(root)) if use_cache else None
    )

    # -- per-module stage over the union of the default tree and the
    #    requested files (whole-program verdicts need full context) ----
    requested_files = list(iter_python_files(Path(p) for p in paths))
    analysis_files = list(requested_files)
    if requested:
        in_set = {f.resolve() for f in analysis_files}
        for f in iter_python_files(default_lint_paths(root)):
            if f.resolve() not in in_set:
                analysis_files.append(f)

    report = LintReport(rules=[r.rule_id for r in selected])
    report.files = len(requested_files)
    requested_rel = {_relpath(f, root) for f in requested_files}
    if only_paths is not None:
        # git names files relative to the repo root ("src/repro/..."),
        # findings relative to the lint root ("repro/..."); accept both.
        wanted = set(only_paths)
        keep = set()
        for f in requested_files:
            rel = _relpath(f, root)
            try:
                repo_rel = str(
                    f.resolve().relative_to(root.parent.resolve())
                )
            except ValueError:
                repo_rel = rel
            if rel in wanted or repo_rel in wanted:
                keep.add(rel)
        requested_rel &= keep

    summaries: list[ModuleSummary] = []
    sources: list[str] = []
    for file in analysis_files:
        rel = _relpath(file, root)
        summary, active, suppressed, source = _module_stage(
            file, rel, module_rules, cache
        )
        summaries.append(summary)
        sources.append(source)
        if rel in requested_rel:
            report.findings.extend(
                f for f in active if f.rule in selected_ids
            )
            report.suppressed.extend(
                f for f in suppressed if f.rule in selected_ids
            )

    # -- whole-program stage (never cached) ----------------------------
    project = ProjectIndex(summaries, root=root)
    graph = CallGraph(project)
    report.callgraph = graph.stats.to_dict()
    if project_rules:
        facts = compute_facts(project, graph)
        for rule in project_rules:
            for finding in rule.check_project(facts):
                if finding.path not in requested_rel:
                    continue
                s = project.by_relpath.get(finding.path)
                if s is not None and s.is_suppressed(
                    finding.line, finding.rule
                ):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)

    cache.save(live_sources=sources)
    report.cache_stats = {"hits": cache.hits, "misses": cache.misses}
    report.findings.sort()
    report.suppressed.sort()
    return report


# ----------------------------------------------------------------------
# --diff / --baseline support
# ----------------------------------------------------------------------
def git_changed_files(ref: str, repo: Path | None = None) -> list[str] | None:
    """Repo-relative paths changed against ``ref`` (committed or not);
    None when git fails (not a repo, unknown ref)."""
    repo = repo or default_root().parent
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=str(repo), capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return [line.strip() for line in out.stdout.splitlines() if line.strip()]


def _finding_key(d: dict) -> tuple:
    """Line-insensitive identity for baseline comparison — edits above a
    pre-existing finding must not make it 'new'."""
    return (d["path"], d["rule"], d["message"])


def baseline_delta(report: LintReport, baseline: dict) -> LintReport:
    """A copy of ``report`` keeping only findings *not* present in
    ``baseline`` (a previous ``--json`` payload).  Gate mode for PRs:
    pre-existing debt doesn't fail, new findings do."""
    known = {_finding_key(d) for d in baseline.get("findings", [])}
    out = LintReport(
        findings=[
            f for f in report.findings
            if _finding_key(f.to_dict()) not in known
        ],
        suppressed=list(report.suppressed),
        files=report.files,
        rules=list(report.rules),
        callgraph=dict(report.callgraph),
        cache_stats=dict(report.cache_stats),
    )
    return out

"""R1/R2 — accounting-boundary rules.

R1 keeps the em layer's private internals private: algorithm code that
pokes ``disk._blocks`` or ``accountant._in_use`` bypasses the I/O and
memory accounting every experimental claim rests on.  R2 confines the
*sanctioned* escape hatches (``Disk.peek``, ``uncounted()``, and
``EMFile.to_numpy`` without ``counted=True``) to the layers that own
them: em, obs, and test code.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import LintRule, ModuleContext, register
from .findings import LintFinding

__all__ = ["PrivateInternalsRule", "UncountedEscapeRule", "EM_PRIVATE_ATTRS"]

#: Private attributes of the em substrate (Disk, IOCounters,
#: MemoryAccountant, MemoryLease, Machine).  Touching any of these from
#: outside ``em``/``obs`` reads or mutates accounting state directly.
EM_PRIVATE_ATTRS = frozenset(
    {
        # Disk
        "_blocks", "_origin", "_arena", "_freelist", "_next_id",
        "_counters", "_lifetime", "_phase_stack", "_phase_path",
        "_counting", "_read_ids", "_peak_blocks", "_charge",
        "_freed_ids", "_written_ids", "_check_block",
        # MemoryAccountant / MemoryLease
        "_in_use", "_peak", "_capacity", "_live_leases", "_notify",
        "_resize", "_release", "_accountant",
        # Machine
        "_comparisons", "_lifetime_comparisons", "_machine_observers",
        "_sanitize",
    }
)


@register
class PrivateInternalsRule(LintRule):
    """R1: no access to private ``Disk``/``MemoryAccountant`` internals
    outside the em and obs layers."""

    rule_id = "R1"
    title = "no private em internals outside em/ and obs/"
    rationale = (
        "Every Θ-shape the reproduction reports assumes all block I/Os "
        "and memory reservations flow through the counted public API. "
        "Code that reaches into `disk._blocks`, `accountant._in_use`, "
        "or any other private em attribute can read or mutate state "
        "without the counters noticing, silently invalidating the "
        "measurements.  Only `em/` (the owner) and `obs/` (the "
        "observability layer built on sanctioned hooks) are exempt."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if ctx.in_em_layer:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in EM_PRIVATE_ATTRS:
                continue
            # `self._peak` etc. on an unrelated class is that class's
            # own business — only cross-object pokes are em internals.
            if isinstance(node.value, ast.Name) and node.value.id in (
                "self",
                "cls",
            ):
                continue
            yield self.finding(
                ctx,
                node,
                f"access to private em-layer internal `.{node.attr}` "
                f"bypasses the accounting; use the public counted API",
            )


#: Call names that read or run outside the I/O accounting.
_ESCAPE_CALLS = ("peek", "uncounted")


@register
class UncountedEscapeRule(LintRule):
    """R2: no ``peek``/``uncounted()``/uncounted ``to_numpy`` in
    algorithm code."""

    rule_id = "R2"
    title = "no uncounted escape hatches in algorithm code"
    rationale = (
        "`Disk.peek`, `Machine.uncounted()`, and "
        "`EMFile.to_numpy(counted=False)` exist so that tests, input "
        "staging, and verification can look at data without charging "
        "model I/Os.  Inside algorithm subsystems (alg/, baselines/, "
        "core/, service/, apps/) the same calls are unaccounted disk "
        "traffic: the algorithm observes data it never paid to read, "
        "and the measured I/O undercounts the paper's cost model."
    )

    def check(self, ctx: ModuleContext) -> Iterable[LintFinding]:
        if not ctx.in_algorithm_layer or ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _ESCAPE_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"`.{func.attr}()` is an observability-only escape "
                    f"hatch; algorithm code must pay for every access "
                    f"(use counted reads, or justify with a suppression)",
                )
            elif func.attr == "to_numpy" and not any(
                kw.arg == "counted"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "`.to_numpy()` defaults to an uncounted verification "
                    "read; algorithm code must pass `counted=True` (or "
                    "build empty arrays with `empty_records`)",
                )

"""Structured lint findings.

A :class:`LintFinding` is one rule violation at one source location.
Findings are plain data — hashable, sortable, JSON-serializable — so the
engine, the CLI renderer, the ``--json`` machine output, and the test
fixtures all share one representation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["LintFinding", "SEVERITIES"]

#: Recognised severities, most severe first.  ``error`` findings fail the
#: lint gate; ``warning`` findings are reported but do not affect the
#: exit status.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class LintFinding:
    """One rule violation.

    Attributes
    ----------
    path:
        Path of the offending file, relative to the repository root.
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule id (``"R1"`` ... ``"R5"``).
    message:
        Human-readable description of the violation.
    severity:
        ``"error"`` or ``"warning"`` (see :data:`SEVERITIES`).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict:
        """Plain JSON-serializable form."""
        return asdict(self)

    def render(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

"""R9 — registry consistency: solvers ⇔ budgets ⇔ formulas ⇔ phases.

The observability stack cross-references three artifacts by name:

* ``repro.obs.solvers.SOLVERS`` — each ``Solver(...)`` entry names the
  experiment and the bound formula(s) that predict it;
* ``benchmarks/budgets.json`` — the per-solver I/O envelopes the budget
  gate enforces in CI;
* ``repro.bounds.formulas`` — the closed-form functions the envelopes
  and plots are computed from.

A registry entry whose budget envelope or formula is missing fails only
when that particular experiment is *run* — typically in CI, hours after
the rename that broke it.  This rule checks the whole triangle
statically from the module summaries (plus one ``json.load``), and
additionally validates every constant phase label against the phase
grammar (:meth:`Disk.phase <repro.em.disk.Disk>` rejects ``"/"`` in a
label at runtime, because ``"/"`` is the hierarchy separator in
``phase_path``).

On fixture corpora without a solvers module only the phase-label check
is live.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from .engine import LintRule, register
from .findings import LintFinding

__all__ = ["RegistryConsistencyRule"]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@register
class RegistryConsistencyRule(LintRule):
    """R9: every solver has a budget envelope and a real formula; every
    constant phase label parses as a valid phase-path component."""

    rule_id = "R9"
    title = "solver registry, budgets, formulas, and phase labels agree"
    rationale = (
        "The experiment registry is stringly-typed three ways: "
        "`SOLVERS` names must key into `benchmarks/budgets.json`, "
        "`formula_name` expressions must reference functions in "
        "`repro.bounds.formulas`, and phase labels must satisfy the "
        "phase grammar (no `/`, non-empty) or `Disk.phase` raises at "
        "runtime.  Each of these breaks only when the specific "
        "experiment runs — usually in CI after a rename.  Checking the "
        "triangle statically turns an hours-later CI failure into a "
        "lint finding on the line that drifted."
    )
    scope = "project"

    def check_project(self, facts) -> Iterable[LintFinding]:
        project = facts.project

        # -- phase-label grammar (all modules) -------------------------
        for s in project.modules.values():
            if s.is_test:
                continue
            for ph in s.phase_labels:
                if ph.get("dynamic"):
                    continue  # computed label — runtime check owns it
                label = ph.get("label")
                if label is None:
                    yield self.finding_at(
                        s.relpath, ph["line"], ph["col"],
                        "phase label is a non-string constant",
                    )
                elif "/" in label:
                    yield self.finding_at(
                        s.relpath, ph["line"], ph["col"],
                        f"phase label {label!r} contains '/' — the "
                        f"phase-path separator; `Disk.phase` rejects it "
                        f"at runtime",
                    )
                elif not label.strip():
                    yield self.finding_at(
                        s.relpath, ph["line"], ph["col"],
                        "phase label is empty/whitespace",
                    )

        # -- solver registry triangle ----------------------------------
        solvers = project.modules.get("repro.obs.solvers")
        if solvers is None or not solvers.solver_entries:
            return
        formulas = project.modules.get("repro.bounds.formulas")
        formula_names = (
            {q for q in formulas.functions if "." not in q}
            if formulas is not None
            else None
        )
        budgets = self._budget_names(project)

        names: set[str] = set()
        for entry in solvers.solver_entries:
            name = entry.get("name")
            if name is None:
                continue  # dynamically built entry — out of scope
            names.add(name)
            if budgets is not None and name not in budgets:
                yield self.finding_at(
                    solvers.relpath, entry["line"], 0,
                    f'solver "{name}" has no envelope in '
                    f"benchmarks/budgets.json — the budget gate "
                    f"silently skips it",
                )
            formula = entry.get("formula_name")
            if formula and formula_names is not None:
                for ident in _IDENT_RE.findall(formula):
                    if ident not in formula_names:
                        yield self.finding_at(
                            solvers.relpath, entry["line"], 0,
                            f'solver "{name}" references formula '
                            f"`{ident}` which repro.bounds.formulas "
                            f"does not define",
                        )
        if budgets:
            anchor = solvers.solver_entries[0]["line"]
            for extra in sorted(budgets - names):
                yield self.finding_at(
                    solvers.relpath, anchor, 0,
                    f'budgets.json has an envelope for "{extra}" but no '
                    f"solver registers that name (stale entry?)",
                )

    @staticmethod
    def _budget_names(project) -> set[str] | None:
        """Solver names keyed in benchmarks/budgets.json, or None when
        the file is not locatable (fixture corpora)."""
        root = project.root
        if root is None:
            return None
        path = Path(root).parent / "benchmarks" / "budgets.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        budgets = data.get("budgets")
        return set(budgets) if isinstance(budgets, dict) else None

"""Project-wide symbol index: the whole-program layer under emlint v2.

The per-module heuristics of emlint v1 stop at function boundaries — a
charge in the caller could not clear a sink in a pure helper, and a
lease handed across methods was invisible.  This module builds the facts
the interprocedural rules need:

* :func:`summarize_module` — one pass over a module's AST producing a
  :class:`ModuleSummary`: defined functions/classes, import aliases,
  every call site (with a coarse result-use classification), comparison
  sinks, lease sites, phase labels, and — for the shard protocol and
  solver registry — the message kinds and ``Solver(...)`` entries.  A
  summary is a plain JSON-serializable dict payload, which is what makes
  the content-addressed analysis cache (:mod:`repro.lint.cache`)
  possible: the expensive parse+walk runs once per content hash.
* :class:`ProjectIndex` — the collection of summaries for every module
  under analysis, with symbol lookup tables (top-level functions,
  classes, methods, a method-name index, and the class hierarchy) that
  the call graph resolver (:mod:`repro.lint.callgraph`) builds on.

Summaries are *syntactic* — no imports are executed, so linting a
broken or hostile module is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .engine import ModuleContext

__all__ = [
    "SUMMARY_SCHEMA",
    "ModuleSummary",
    "ProjectIndex",
    "summarize_module",
]

#: Bump when the summary layout changes — invalidates every cache entry.
SUMMARY_SCHEMA = 3

#: Call names that register comparisons with the machine.  Shared with
#: the dataflow pass; an *unresolved* call to one of these names is
#: assumed to charge (the em helpers are the only sanctioned spellings).
CHARGE_NAMES = frozenset(
    {"cmp_sort", "cmp_search", "cmp_linear", "cmp_median5",
     "charge_comparisons"}
)

#: Comparison sinks (see rules_cpu for the rationale).
_SINK_FUNCS = frozenset({"sorted", "min", "max"})
_SINK_NP_ATTRS = frozenset(
    {"sort", "argsort", "lexsort", "partition", "argpartition",
     "searchsorted"}
)
_SINK_HELPERS = frozenset({"sort_records"})
_RECORD_MARKERS = frozenset({"composite", "composite_of"})


def _is_np_attr(func: ast.AST) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _mentions_records(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            f = sub.func
            name = f.id if isinstance(f, ast.Name) else getattr(f, "attr", "")
            if name in _RECORD_MARKERS:
                return True
        elif isinstance(sub, ast.Subscript):
            sl = sub.slice
            if isinstance(sl, ast.Constant) and sl.value in ("key", "uid"):
                return True
    return False


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name(relpath: str) -> str:
    """Dotted import path for files under the package source root.

    ``repro/alg/selection.py`` -> ``repro.alg.selection``; files outside
    the package (``scripts/x.py``, tests) get a path-derived name that
    never collides with a real import path.
    """
    parts = list(relpath.replace("\\", "/").split("/"))
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        return ".".join(parts)
    return "<ext>." + ".".join(parts)


@dataclass
class ModuleSummary:
    """JSON-serializable whole-program facts for one module."""

    relpath: str
    module_name: str
    subsystem: str
    is_test: bool
    #: line -> None (all rules) | list of rule ids — mirrors
    #: ``ModuleContext.suppressions`` in serializable form.
    suppressions: dict = field(default_factory=dict)
    #: local qualname ("f", "C.m", "" = module body) -> def line
    functions: dict = field(default_factory=dict)
    #: class name -> {"bases": [...], "methods": [...], "line": n}
    classes: dict = field(default_factory=dict)
    #: local name -> fully qualified import target
    imports: dict = field(default_factory=dict)
    #: call sites: see :func:`summarize_module` for the record layout
    calls: list = field(default_factory=list)
    #: uncharged-comparison candidate sites (algorithm layer only)
    cmp_sinks: list = field(default_factory=list)
    #: ``.lease(...)`` sites with their disposition classification
    lease_sites: list = field(default_factory=list)
    #: class name -> attrs released/context-managed somewhere in it
    attr_releases: dict = field(default_factory=dict)
    #: local qualname -> param names released on all paths
    releases_params: dict = field(default_factory=dict)
    #: ``.phase("label")`` sites: {"line","col","label" (None if dynamic)}
    phase_labels: list = field(default_factory=list)
    #: protocol facts (shard router/worker modules only)
    proto: dict = field(default_factory=dict)
    #: ``Solver(name=..., formula_name=...)`` entries (obs/solvers.py)
    solver_entries: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": SUMMARY_SCHEMA,
            "relpath": self.relpath,
            "module_name": self.module_name,
            "subsystem": self.subsystem,
            "is_test": self.is_test,
            "suppressions": self.suppressions,
            "functions": self.functions,
            "classes": self.classes,
            "imports": self.imports,
            "calls": self.calls,
            "cmp_sinks": self.cmp_sinks,
            "lease_sites": self.lease_sites,
            "attr_releases": self.attr_releases,
            "releases_params": self.releases_params,
            "phase_labels": self.phase_labels,
            "proto": self.proto,
            "solver_entries": self.solver_entries,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        d = dict(d)
        d.pop("schema", None)
        return cls(**d)

    # -- suppression lookup (same semantics as ModuleContext) ----------
    def is_suppressed(self, line: int, rule: str) -> bool:
        key = str(line)
        if key not in self.suppressions:
            return False
        rules = self.suppressions[key]
        return rules is None or rule in rules


class _ScopeInfo:
    """Per-function one-pass facts used to classify call-site result use."""

    def __init__(self, fn: ast.AST) -> None:
        self.released_in_finally: set[str] = set()
        self.with_entered: set[str] = set()
        self.returned: set[str] = set()
        self.released_names: set[str] = set()
        self.attr_stores: dict[str, str] = {}  # local name -> self attr
        self.passed_on: dict[str, list] = {}  # local name -> [(line, callee)]
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                continue  # nested defs keep their own scope facts
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ce = item.context_expr
                    if isinstance(ce, ast.Name):
                        self.with_entered.add(ce.id)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                self.returned.add(node.value.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.Name)
                ):
                    self.attr_stores[value.id] = target.attr
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr == "release"
                    and isinstance(f.value, ast.Name)
                ):
                    self.released_names.add(f.value.id)
                else:
                    callee = (
                        f.id if isinstance(f, ast.Name)
                        else getattr(f, "attr", None)
                    )
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            self.passed_on.setdefault(arg.id, []).append(
                                (node.lineno, callee)
                            )
        # finally-released: a release inside any Try.finalbody
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        self.released_in_finally.add(sub.func.value.id)


def _param_names(fn: ast.AST) -> list[str]:
    a = fn.args
    names = [p.arg for p in [*a.posonlyargs, *a.args]]
    return names


def _annotation_name(ann: ast.AST | None) -> str | None:
    """Best-effort class name out of a parameter annotation."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        # `machine: "Machine"` — forward reference string
        return ann.value.strip().strip('"').split(".")[-1] or None
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Subscript):
        return None
    if isinstance(ann, ast.BinOp):  # `X | None`
        left = _annotation_name(ann.left)
        return left
    return None


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Extract the whole-program summary of one parsed module.

    Call-site records look like::

        {"caller": "C.m", "line": 12, "col": 4,
         "name": "lease",              # terminal callee name
         "chain": "machine.memory",    # dotted base chain, or None
         "kind": "attr" | "name",
         "use": "with"|"assigned"|"attr"|"returned"|"discarded"|"other",
         "var": "x" | None,            # when use == "assigned"
         "attr": "_lease" | None,      # when use == "attr"
         "ann": "Machine" | None}      # receiver's annotated class
    """
    summary = ModuleSummary(
        relpath=ctx.relpath,
        module_name=_module_name(ctx.relpath),
        subsystem=ctx.subsystem,
        is_test=ctx.is_test,
        suppressions={
            str(line): (None if rules is None else sorted(rules))
            for line, rules in ctx.suppressions.items()
        },
    )
    tree = ctx.tree

    # -- module docstring (shard protocol tables live there) ----------
    docstring = ast.get_docstring(tree) or ""

    # -- imports -------------------------------------------------------
    pkg_parts = summary.module_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                mod = ".".join(base + (node.module.split(".") if node.module else []))
            else:
                mod = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                summary.imports[alias.asname or alias.name] = (
                    f"{mod}.{alias.name}" if mod else alias.name
                )

    # -- classes / functions ------------------------------------------
    class_of_fn: dict[ast.AST, str | None] = {}

    def _enclosing_class(node: ast.AST) -> str | None:
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc.name
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
        return None

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _enclosing_class(node) is None and isinstance(
                ctx.parent(node), ast.Module
            ):
                summary.classes[node.name] = {
                    "bases": [
                        b for b in (_dotted(base) for base in node.bases) if b
                    ],
                    "methods": [
                        n.name for n in node.body
                        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ],
                    "line": node.lineno,
                }
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls = _enclosing_class(node)
            class_of_fn[node] = cls
            qual = f"{cls}.{node.name}" if cls else node.name
            # nested defs fold into their outermost function's scope for
            # call attribution; only record top-level funcs and methods.
            parent = ctx.parent(node)
            if isinstance(parent, ast.Module) or (
                cls and isinstance(parent, ast.ClassDef)
            ):
                summary.functions[qual] = node.lineno

    def _qualname_of_scope(node: ast.AST) -> str:
        """Local qualname of the outermost enclosing def ("" = module)."""
        scope = None
        for anc in [node, *ctx.ancestors(node)]:
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = anc
        if scope is None:
            return ""
        cls = class_of_fn.get(scope) or _enclosing_class(scope)
        return f"{cls}.{scope.name}" if cls else scope.name

    # -- per-function scope facts & annotation types -------------------
    scope_infos: dict[str, _ScopeInfo] = {}
    ann_types: dict[str, dict[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cls = class_of_fn.get(node)
        qual = f"{cls}.{node.name}" if cls else node.name
        if qual not in summary.functions:
            continue
        info = _ScopeInfo(node)
        scope_infos[qual] = info
        # annotated parameter types (incl. quoted forward references)
        types: dict[str, str] = {}
        a = node.args
        for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            t = _annotation_name(p.annotation)
            if t:
                types[p.arg] = t
        # locals assigned from a known class constructor: x = Machine(...)
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Name)
            ):
                types.setdefault(sub.targets[0].id, sub.value.func.id)
        ann_types[qual] = types
        # parameters released on all paths (finally or unconditional)
        released = info.released_in_finally | info.with_entered
        params = set(_param_names(node))
        summary.releases_params[qual] = sorted(
            params & (released | info.released_names)
        )

    # -- class attr releases ------------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "release"
                and isinstance(f.value, ast.Attribute)
                and isinstance(f.value.value, ast.Name)
                and f.value.value.id == "self"
            ):
                cls = _enclosing_class_of_stmt(ctx, node)
                if cls:
                    summary.attr_releases.setdefault(cls, [])
                    if f.value.attr not in summary.attr_releases[cls]:
                        summary.attr_releases[cls].append(f.value.attr)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                ce = item.context_expr
                if (
                    isinstance(ce, ast.Attribute)
                    and isinstance(ce.value, ast.Name)
                    and ce.value.id == "self"
                ):
                    cls = _enclosing_class_of_stmt(ctx, node)
                    if cls:
                        summary.attr_releases.setdefault(cls, [])
                        if ce.attr not in summary.attr_releases[cls]:
                            summary.attr_releases[cls].append(ce.attr)

    # -- call sites ----------------------------------------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        caller = _qualname_of_scope(node)
        if isinstance(func, ast.Name):
            name, chain, kind = func.id, None, "name"
        elif isinstance(func, ast.Attribute):
            name, kind = func.attr, "attr"
            chain = _dotted(func.value)
        else:
            continue  # call of a call / subscript — dynamic dispatch
        use, var, attr = _result_use(ctx, node)
        # For assigned results, refine into the same disposition lattice
        # lease sites use, so the whole-program pass can judge calls to
        # lease-*returning* functions without re-walking this module.
        disp = None
        if use == "assigned" and var is not None:
            info = scope_infos.get(caller)
            if info is None:
                disp = "local"
            elif var in info.released_in_finally:
                disp = "finally"
            elif var in info.with_entered:
                disp = "context"
            elif var in info.returned:
                disp = "returned"
            elif var in info.attr_stores:
                disp = "attr"
                attr = info.attr_stores[var]
            elif var in info.passed_on:
                disp = "passed"
            else:
                disp = "local"
        ann = None
        if chain:
            root = chain.split(".")[0]
            ann = ann_types.get(caller, {}).get(root)
        summary.calls.append(
            {
                "caller": caller,
                "line": node.lineno,
                "col": node.col_offset,
                "name": name,
                "chain": chain,
                "kind": kind,
                "use": use,
                "var": var,
                "attr": attr,
                "disp": disp,
                "ann": ann,
                "nargs": len(node.args),
                "str1": (
                    node.args[1].value
                    if len(node.args) > 1
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                    else None
                ),
            }
        )

    # -- comparison sinks (algorithm layer only) -----------------------
    if ctx.in_algorithm_layer and not ctx.is_test:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                sink = _call_sink(node)
                if sink is not None:
                    summary.cmp_sinks.append(
                        {
                            "caller": _qualname_of_scope(node),
                            "line": node.lineno,
                            "col": node.col_offset,
                            "sink": sink,
                        }
                    )
            elif isinstance(node, ast.Compare):
                if not any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                if any(_mentions_records(o) for o in operands):
                    summary.cmp_sinks.append(
                        {
                            "caller": _qualname_of_scope(node),
                            "line": node.lineno,
                            "col": node.col_offset,
                            "sink": "<compare>",
                        }
                    )

    # -- lease sites ---------------------------------------------------
    if not ctx.is_test:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "lease"
            ):
                continue
            summary.lease_sites.append(
                _classify_lease_site(ctx, node, _qualname_of_scope(node),
                                     class_of_fn, scope_infos)
            )

    # -- phase labels --------------------------------------------------
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Attribute) and node.func.attr == "phase")
                or (isinstance(node.func, ast.Name) and node.func.id == "phase")
            )
            and node.args
        ):
            continue
        arg = node.args[0]
        label = (
            arg.value
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            else None
        )
        summary.phase_labels.append(
            {"line": node.lineno, "col": node.col_offset, "label": label,
             "dynamic": not isinstance(arg, ast.Constant)}
        )

    # -- shard protocol facts -----------------------------------------
    relnorm = ctx.relpath.replace("\\", "/")
    if relnorm.endswith("shard/worker.py") or relnorm.endswith("shard/router.py"):
        summary.proto = _extract_protocol(tree, docstring, summary.calls)

    # -- solver registry entries --------------------------------------
    if relnorm.endswith("obs/solvers.py"):
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Solver"
            ):
                continue
            entry = {"line": node.lineno, "name": None, "formula_name": None}
            for kw in node.keywords:
                if kw.arg in ("name", "formula_name") and isinstance(
                    kw.value, ast.Constant
                ):
                    entry[kw.arg] = kw.value.value
            summary.solver_entries.append(entry)

    return summary


def _enclosing_class_of_stmt(ctx: ModuleContext, node: ast.AST) -> str | None:
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc.name
    return None


def _call_sink(node: ast.Call) -> str | None:
    """Sink name if this call performs uncharged record comparisons."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _SINK_HELPERS:
            return func.id
        if func.id in _SINK_FUNCS and any(
            _mentions_records(a) for a in node.args
        ):
            return func.id
        return None
    if _is_np_attr(func) and func.attr in _SINK_NP_ATTRS:
        if any(_mentions_records(a) for a in node.args) or any(
            _mentions_records(kw.value) for kw in node.keywords
        ):
            return f"np.{func.attr}"
        return None
    if isinstance(func, ast.Attribute) and func.attr == "sort":
        if _mentions_records(func.value):
            return ".sort()"
    return None


def _result_use(
    ctx: ModuleContext, node: ast.Call
) -> tuple[str, str | None, str | None]:
    """Coarse classification of what happens to a call's result."""
    parent = ctx.parent(node)
    if isinstance(parent, ast.withitem):
        return "with", None, None
    if isinstance(parent, ast.Return):
        return "returned", None, None
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return "assigned", target.id, None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            return "attr", None, target.attr
        return "other", None, None
    if isinstance(parent, ast.Expr):
        return "discarded", None, None
    return "other", None, None


def _classify_lease_site(
    ctx: ModuleContext,
    node: ast.Call,
    caller: str,
    class_of_fn: dict,
    scope_infos: dict,
) -> dict:
    """Disposition of one ``.lease(...)`` call site.

    dispositions::

        with        — used directly as a context manager
        finally     — local var released in a finally block
        context     — local var entered as a context manager later
        returned    — result (or its local var) escapes via return
        attr        — stored on self/cls (directly or via a local)
        passed      — local var passed onward to another call
        local       — assigned to a local with no protection (FLAG)
        bare        — result discarded on the spot (FLAG)
        other       — any other expression position (FLAG)
    """
    use, var, attr = _result_use(ctx, node)
    cls = None
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.ClassDef):
            cls = anc.name
            break
    site = {
        "caller": caller,
        "line": node.lineno,
        "col": node.col_offset,
        "class": cls,
        "var": var,
        "attr": attr,
        "passed_to": None,
    }
    if use == "with":
        site["disposition"] = "with"
        return site
    if use == "returned":
        site["disposition"] = "returned"
        return site
    if use == "attr":
        site["disposition"] = "attr"
        return site
    if use == "assigned" and var is not None:
        info = scope_infos.get(caller)
        if info is not None:
            if var in info.released_in_finally:
                site["disposition"] = "finally"
                return site
            if var in info.with_entered:
                site["disposition"] = "context"
                return site
            if var in info.returned:
                site["disposition"] = "returned"
                return site
            if var in info.attr_stores:
                site["disposition"] = "attr"
                site["attr"] = info.attr_stores[var]
                return site
            if var in info.passed_on:
                site["disposition"] = "passed"
                site["passed_to"] = info.passed_on[var][0][1]
                return site
        site["disposition"] = "local"
        return site
    site["disposition"] = "bare" if use == "discarded" else "other"
    return site


def _extract_protocol(tree: ast.Module, docstring: str, calls: list) -> dict:
    """Shard message-protocol facts out of a router/worker module.

    * ``sends`` — ``{kind: [lines]}`` for every ``*request(_, "kind")``
      call with a constant kind;
    * ``handles`` — ``{kind: line}`` for every ``kind == "..."`` test
      inside a function named ``_handle``;
    * ``replies`` — ``{kind: [reply kinds]}`` extracted from the return
      statements of each handler branch;
    * ``doc_table`` — ``{kind: reply}`` parsed from the module
      docstring's protocol table (rows between ``====`` rules).
    """
    proto: dict = {"sends": {}, "handles": {}, "replies": {}, "doc_table": {}}
    for call in calls:
        if not call["name"].endswith("request"):
            continue
        kind = call.get("str1")
        if kind is None:
            continue
        proto["sends"].setdefault(kind, []).append(call["line"])

    handle_fn = None
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "_handle"
        ):
            handle_fn = node
            break
    if handle_fn is not None:
        def _branch_replies(body: list) -> list[str]:
            out = []
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Return) and isinstance(
                        sub.value, ast.Tuple
                    ) and sub.value.elts:
                        first = sub.value.elts[0]
                        if isinstance(first, ast.Constant) and isinstance(
                            first.value, str
                        ):
                            out.append(first.value)
            return out

        for node in ast.walk(handle_fn):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.left, ast.Name)
                and test.left.id == "kind"
                and isinstance(test.comparators[0], ast.Constant)
                and isinstance(test.comparators[0].value, str)
            ):
                kind = test.comparators[0].value
                proto["handles"][kind] = node.lineno
                proto["replies"][kind] = _branch_replies(node.body)

    # docstring table: a reST simple table (``====`` rule, header row,
    # ``====`` rule, body rows, closing ``====`` rule); the reply column
    # is "kind: detail".
    import re as _re

    rules_seen = 0
    for line in docstring.splitlines():
        if _re.match(r"^=+(\s+=+)+$", line.strip()):
            rules_seen += 1
            continue
        if rules_seen != 2:  # body rows sit between the 2nd and 3rd rule
            continue
        cols = _re.split(r"\s{2,}", line.strip())
        if len(cols) != 3 or cols[0] == "kind":
            continue
        kind, _, reply = cols
        proto["doc_table"][kind] = reply.split(":")[0].strip()
    return proto


class ProjectIndex:
    """Summaries plus symbol lookup tables for one analysis run."""

    def __init__(self, summaries: Iterable[ModuleSummary], root=None) -> None:
        self.root = root
        self.modules: dict[str, ModuleSummary] = {}
        for s in summaries:
            self.modules[s.module_name] = s
        self.by_relpath: dict[str, ModuleSummary] = {
            s.relpath: s for s in self.modules.values()
        }
        # fq symbol tables
        self.functions: dict[str, ModuleSummary] = {}
        self.classes: dict[str, dict] = {}
        self.method_index: dict[str, list[str]] = {}
        self.class_index: dict[str, list[str]] = {}
        for mod, s in self.modules.items():
            for qual in s.functions:
                self.functions[f"{mod}.{qual}"] = s
            for cname, cinfo in s.classes.items():
                fq = f"{mod}.{cname}"
                self.classes[fq] = cinfo
                self.class_index.setdefault(cname, []).append(fq)
                for m in cinfo["methods"]:
                    self.method_index.setdefault(m, []).append(f"{fq}.{m}")

    # -- class hierarchy ----------------------------------------------
    def class_relatives(self, fq_class: str) -> set[str]:
        """The class plus its project-resolvable ancestors/descendants."""
        out = {fq_class}
        changed = True
        while changed:
            changed = False
            for fq, info in self.classes.items():
                bases = set()
                mod = fq.rsplit(".", 1)[0]
                for b in info["bases"]:
                    bname = b.split(".")[-1]
                    s = self.modules.get(mod)
                    target = None
                    if s and bname in s.classes:
                        target = f"{mod}.{bname}"
                    elif s and bname in s.imports:
                        t = s.imports[bname]
                        if t in self.classes:
                            target = t
                    elif len(self.class_index.get(bname, [])) == 1:
                        target = self.class_index[bname][0]
                    if target:
                        bases.add(target)
                if fq in out and not bases <= out:
                    out |= bases
                    changed = True
                elif bases & out and fq not in out:
                    out.add(fq)
                    changed = True
        return out

    def attr_released(self, module: str, cls: str | None, attr: str) -> bool:
        """Is ``self.<attr>`` released anywhere on the class, an
        ancestor, or a descendant?"""
        if cls is None:
            return False
        for fq in self.class_relatives(f"{module}.{cls}"):
            mod, cname = fq.rsplit(".", 1)
            s = self.modules.get(mod)
            if s and attr in s.attr_releases.get(cname, []):
                return True
        return False

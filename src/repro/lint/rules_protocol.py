"""R8 — shard request/reply protocol conformance.

The sharded partition service speaks a small message protocol: the
router (:mod:`repro.shard.router`) sends ``(kind, payload)`` requests
over duplex pipes and :meth:`ShardWorker._handle
<repro.shard.worker.ShardWorker>` dispatches on ``kind``, replying with
``(reply_kind, payload)``.  The two sides are separate modules edited
separately, and a drifted kind string fails only at runtime — inside a
worker *process*, where the traceback surfaces as an opaque ``("error",
...)`` reply.

This rule statically extracts both sides from the ASTs (the
``proto`` facts in each module's summary — see
:func:`repro.lint.project.summarize_module`) and cross-checks them:

* a request kind some sender emits but the worker has no ``kind ==
  "..."`` branch for (runtime rejection);
* a handler branch no code path ever sends (dead protocol arm — usually
  a renamed kind whose sender was updated and handler was not);
* drift between the worker docstring's protocol table and the code:
  undocumented kinds, documented-but-unhandled kinds, and reply kinds
  that do not match what the handler actually returns.

Modules other than ``shard/router.py``/``shard/worker.py`` produce no
``proto`` facts, so the rule is inert on fixtures and ordinary code.
"""

from __future__ import annotations

from typing import Iterable

from .engine import LintRule, register
from .findings import LintFinding

__all__ = ["ShardProtocolRule"]


@register
class ShardProtocolRule(LintRule):
    """R8: router sends, worker handlers, and the documented protocol
    table must agree kind-for-kind."""

    rule_id = "R8"
    title = "shard request/reply protocol must be closed"
    rationale = (
        "Router and worker are separate modules around a pickled-tuple "
        "pipe protocol; nothing at import time checks that every "
        "request kind the router emits has a worker branch, or that "
        "every branch is reachable.  A drifted kind string turns into "
        "an `(\"error\", ...)` reply from inside a worker process — the "
        "least debuggable failure mode the service has.  Extracting "
        "both sides from the ASTs makes the protocol a closed, "
        "lint-checked surface, including the docstring table users "
        "read."
    )
    scope = "project"

    def check_project(self, facts) -> Iterable[LintFinding]:
        worker = router = None
        for s in facts.project.modules.values():
            rel = s.relpath.replace("\\", "/")
            if rel.endswith("shard/worker.py"):
                worker = s
            elif rel.endswith("shard/router.py"):
                router = s
        if worker is None or not worker.proto.get("handles"):
            return
        handles: dict = worker.proto["handles"]
        replies: dict = worker.proto.get("replies", {})
        doc: dict = worker.proto.get("doc_table", {})

        sends: dict[str, list] = {}
        for s in (router, worker):
            if s is None:
                continue
            for kind, lines in s.proto.get("sends", {}).items():
                for ln in lines:
                    sends.setdefault(kind, []).append((s.relpath, ln))

        for kind in sorted(sends):
            if kind in handles:
                continue
            for rel, ln in sends[kind]:
                yield self.finding_at(
                    rel, ln, 0,
                    f'request kind "{kind}" is sent here but '
                    f"`ShardWorker._handle` has no branch for it — the "
                    f"worker will reject it at runtime",
                )
        for kind in sorted(handles):
            if kind not in sends:
                yield self.finding_at(
                    worker.relpath, handles[kind], 0,
                    f'worker handles request kind "{kind}" that no '
                    f"code path ever sends (dead protocol arm — renamed "
                    f"sender?)",
                )

        if not doc:
            return
        for kind in sorted(handles):
            if kind not in doc:
                yield self.finding_at(
                    worker.relpath, handles[kind], 0,
                    f'request kind "{kind}" is handled but missing from '
                    f"the module docstring's protocol table",
                )
        for kind in sorted(doc):
            if kind not in handles:
                yield self.finding_at(
                    worker.relpath, 1, 0,
                    f'protocol table documents request kind "{kind}" '
                    f"that the worker does not handle",
                )
        for kind in sorted(doc):
            want = doc[kind]
            got = replies.get(kind)
            if got and want not in got:
                yield self.finding_at(
                    worker.relpath, handles.get(kind, 1), 0,
                    f'protocol table says "{kind}" replies '
                    f'"{want}" but the handler returns '
                    f"{', '.join(sorted(set(got)))}",
                )

"""emlint — EM-model conformance linter for the reproduction.

Static layer of the correctness-analysis suite (the dynamic layer is
the em sanitizer, ``Machine(sanitize=True)`` / ``EM_SANITIZE=1``).
Since v2 the engine is *whole-program*: every module is summarized
(:mod:`repro.lint.project`), the summaries are resolved into a project
call graph (:mod:`repro.lint.callgraph`), and interprocedural dataflow
facts (:mod:`repro.lint.dataflow`) feed the rules, so a charge in a
caller clears a sink in a helper and a lease can be followed across
functions.  Per-module work is served from a content-addressed cache
(:mod:`repro.lint.cache`) on warm runs.

The rules check that algorithm code cannot silently bypass the
Aggarwal–Vitter cost accounting:

* **R1** — no access to private ``Disk``/``MemoryAccountant`` internals
  outside ``em/`` and ``obs/``;
* **R2** — no ``peek``/``uncounted()``/uncounted ``to_numpy`` escape
  hatches in algorithm code;
* **R3** — record comparisons must reach the comparison counter on some
  call path (or every resolved caller must);
* **R4** — no unseeded / global-state RNG in the package, ``scripts/``
  or ``benchmarks/``;
* **R5** — leases are provably released on all paths, across functions;
* **R6** — hot-path record ops route through the kernel backend;
* **R7** — shard code never touches another shard's state;
* **R8** — the shard request/reply protocol is closed (sends ⇔
  handlers ⇔ docstring table);
* **R9** — solver registry, budget envelopes, bound formulas, and phase
  labels agree.

Run it with ``repro lint [--json] [--rule R2 ...] [--diff REF]
[--baseline FILE] [--no-cache]``; silence an intentional exception with
a same-line ``# emlint: disable=Rn`` comment (see ``docs/LINTING.md``
for the catalog and the suppression policy).  ``SYNTAX`` findings are
never suppressable.
"""

from .cache import AnalysisCache, ENGINE_VERSION, default_cache_path
from .callgraph import CallGraph, CallStats
from .dataflow import DataflowFacts, compute_facts
from .engine import (
    ALGORITHM_SUBSYSTEMS,
    EM_LAYER_SUBSYSTEMS,
    LintRule,
    ModuleContext,
    all_rules,
    get_rules,
    lint_file,
    lint_source,
    register,
)
from .findings import LintFinding
from .project import ModuleSummary, ProjectIndex, summarize_module
from .runner import (
    LintReport,
    baseline_delta,
    default_lint_paths,
    default_root,
    git_changed_files,
    iter_python_files,
    lint_paths,
)

__all__ = [
    "AnalysisCache",
    "CallGraph",
    "CallStats",
    "DataflowFacts",
    "ENGINE_VERSION",
    "LintFinding",
    "LintRule",
    "LintReport",
    "ModuleContext",
    "ModuleSummary",
    "ProjectIndex",
    "ALGORITHM_SUBSYSTEMS",
    "EM_LAYER_SUBSYSTEMS",
    "all_rules",
    "baseline_delta",
    "compute_facts",
    "default_cache_path",
    "default_lint_paths",
    "default_root",
    "get_rules",
    "git_changed_files",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "summarize_module",
]

"""emlint — EM-model conformance linter for the reproduction.

Static layer of the correctness-analysis suite (the dynamic layer is
the em sanitizer, ``Machine(sanitize=True)`` / ``EM_SANITIZE=1``).  An
AST rule engine checks that algorithm code cannot silently bypass the
Aggarwal–Vitter cost accounting:

* **R1** — no access to private ``Disk``/``MemoryAccountant`` internals
  outside ``em/`` and ``obs/``;
* **R2** — no ``peek``/``uncounted()``/uncounted ``to_numpy`` escape
  hatches in algorithm code;
* **R3** — record comparisons route through the comparison counter;
* **R4** — no unseeded / global-state RNG anywhere in the package;
* **R5** — memory leases are context-managed or released in ``finally``.

Run it with ``repro lint [--json] [--rule R2 ...]``; silence an
intentional exception with a same-line ``# emlint: disable=Rn`` comment
(see ``docs/LINTING.md`` for the catalog and the suppression policy).
"""

from .engine import (
    ALGORITHM_SUBSYSTEMS,
    EM_LAYER_SUBSYSTEMS,
    LintRule,
    ModuleContext,
    all_rules,
    get_rules,
    lint_file,
    lint_source,
    register,
)
from .findings import LintFinding
from .runner import LintReport, default_root, iter_python_files, lint_paths

__all__ = [
    "LintFinding",
    "LintRule",
    "LintReport",
    "ModuleContext",
    "ALGORITHM_SUBSYSTEMS",
    "EM_LAYER_SUBSYSTEMS",
    "all_rules",
    "get_rules",
    "register",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "default_root",
]

"""Content-addressed per-module analysis cache.

Parsing ~100 modules and walking their ASTs under every rule dominates a
cold ``repro lint``.  Both products of the per-module stage — the
module-local findings (rules that need only one AST) and the
:class:`~repro.lint.project.ModuleSummary` (the facts the whole-program
stage consumes) — are pure functions of the module *source text* and the
engine itself, so they are cached under ``sha256(source)`` plus an
engine-version salt.  The whole-program stage (call graph, dataflow,
R3/R5/R8/R9) is recomputed from summaries every run: it is global, cheap
relative to parsing, and caching it per-module would be unsound — a
change in one module can flip verdicts in another.

The cache is one JSON document (atomic replace on save) so a crashed or
concurrent run can at worst lose cache hits, never corrupt results, and
``--no-cache`` / a missing or unwritable directory degrade silently to
cold analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .project import SUMMARY_SCHEMA

__all__ = ["AnalysisCache", "ENGINE_VERSION", "default_cache_path"]

#: Bump on any rule/engine change that can alter per-module results.
ENGINE_VERSION = "emlint-2.0"


def default_cache_path(root: Path) -> Path:
    """Cache location for a source root (``<repo>/.emlint-cache``)."""
    return Path(root).parent / ".emlint-cache" / "cache.json"


def content_key(source: str) -> str:
    h = hashlib.sha256()
    h.update(f"{ENGINE_VERSION}:{SUMMARY_SCHEMA}:".encode())
    h.update(source.encode("utf-8", errors="replace"))
    return h.hexdigest()


class AnalysisCache:
    """Load/store per-module analysis results keyed by content hash."""

    def __init__(self, path: Path | None) -> None:
        self.path = Path(path) if path else None
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text())
                if data.get("engine") == ENGINE_VERSION:
                    self._entries = data.get("entries", {})
            except (OSError, ValueError):
                self._entries = {}

    # ------------------------------------------------------------------
    def get(self, source: str) -> dict | None:
        """Cached ``{"summary": ..., "findings": ...}`` or None."""
        entry = self._entries.get(content_key(source))
        if entry is not None:
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, source: str, payload: dict) -> None:
        self._entries[content_key(source)] = payload
        self._dirty = True

    def save(self, live_sources: list[str] | None = None) -> None:
        """Persist (atomically); keeps only entries for ``live_sources``
        when given, so stale hashes don't accumulate forever."""
        if self.path is None or not self._dirty:
            return
        entries = self._entries
        if live_sources is not None:
            live = {content_key(s) for s in live_sources}
            entries = {k: v for k, v in entries.items() if k in live}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(
                    {"engine": ENGINE_VERSION, "entries": entries}, fh
                )
            os.replace(tmp, self.path)
        except OSError:
            pass  # caching is best-effort; analysis already succeeded

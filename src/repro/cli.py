"""Command-line entry point: ``repro`` (or ``python -m repro``).

Subcommands:

``repro list``
    List the registered experiments (one per paper claim).
``repro run [EXP_ID ...] [--full] [--out DIR] [--jobs N]``
    Run experiments (in parallel with ``--jobs``) and print their
    measured-vs-bound tables; optionally write each rendered table to
    ``DIR/<id>.txt``.
``repro report [--quick] [--jobs N] [--no-cache] [--json PATH]``
    Run every experiment through the parallel, cached runner and write
    EXPERIMENTS.md plus machine-readable ``results.json``.
``repro demo``
    A 30-second tour: quickstart-style run of the headline algorithms.
``repro bounds --n N --k K --a A --b B [--memory M] [--block B]``
    Evaluate every Table 1 bound for concrete parameters.
``repro solve --problem {splitters,partition,multiselect} --n N --k K ...``
    Run one algorithm on a generated workload, verify the output, and
    print measured I/O, comparisons, and the phase breakdown.
``repro trace ALGORITHM [--out DIR] [--json] [--n N] [--k K] ...``
    Run one registered solver under the span tracer and export the
    recorded tree three ways: Chrome/Perfetto ``.trace.json``, a
    rendered text tree, and the plain-dict span JSON (``--json``
    prints that payload to stdout for CI artifacts).
``repro metrics ALGORITHM [--out DIR] [--json] [--n N] ...``
    Run one registered solver inside a metrics scope + flight recorder
    and export the service telemetry: a rendered metrics table,
    Prometheus text exposition (``.prom``), metrics JSON, and the
    flight-recorder event dump.
``repro budgets [--check | --write] [--path FILE] [--headroom H]``
    Check every registered solver against its committed I/O envelope
    (the regression gate), or recalibrate and rewrite the envelopes.
``repro lint [PATH ...] [--json] [--rule RULE ...]``
    Run the emlint EM-conformance rules (R1–R5) over the source tree;
    non-zero exit on any active error-severity finding.
``repro sanitize-check [--solver NAME ...] [--n N] ...``
    Arm the runtime sanitizer: fire every trap (use-after-free,
    double-free, uninitialized read, double release, lease leak), then
    run the registered solvers under ``Machine(sanitize=True)`` with
    the tracer's counter-conservation check enabled.
``repro serve --n N --k K [--engine eager|lazy] [--durable] ...``
    Interactive partition service: build an index over a generated
    workload and answer queries (and, with the eager engine, apply
    appends/deletes) read line-by-line from stdin.  ``--durable`` adds
    WAL + snapshot persistence and the ``snapshot``/``crash``/``abort``/
    ``dstats`` commands (``crash`` abandons the live index and recovers
    it from the manifest in-session; ``abort`` simulates an unclean
    exit, which dumps the flight recorder to ``--flight-dump``).
``repro recover [--fail-at I] [--flight-dump FILE] ...``
    Crash-recovery scenario: build a durable index, apply an
    interleaved update plan, kill the machine at the ``--fail-at``-th
    counted I/O, recover from the manifest, and verify the recovered
    answers are element-identical to an uncrashed shadow run.  With
    ``--flight-dump FILE``, instead render a flight-recorder dump
    written by an earlier unclean ``repro serve`` exit.
``repro query --n N --k K QUERY [QUERY ...]``
    One-shot batch: coalesce the given queries (``select:R``,
    ``quantile:Q``, ``range:LO:HI``, ``part:KEY``) into one frontend
    flush and print the answers with the measured I/O.
``repro bench-queries [--quick] [--json] [--trace T] [--queries Q] ...``
    Benchmark the online service on a query trace against the offline
    per-query and sort-everything baselines; reports per-query I/O
    p50/p95/p99 from the service histograms, verifies answers, checks
    the 25 % acceptance bar, and records the run under benchmarks/out/
    (``--json`` prints the machine-readable document to stdout).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from . import __version__

__all__ = ["main"]


def _cmd_list(args) -> int:
    from .experiments import all_experiments

    for exp in all_experiments():
        print(f"{exp.exp_id:8s} {exp.title}")
    return 0


def _progress_line(rec) -> None:
    state = "cached" if rec.cached else f"{rec.wall_s:.1f}s"
    verdict = "PASS" if rec.passed else "FAIL"
    print(f"  {rec.exp_id:8s} {state:>8s}  {verdict}", flush=True)


def _cmd_run(args) -> int:
    from .experiments import all_experiments
    from .experiments.runner import run_experiments

    ids = args.exp_ids or [e.exp_id for e in all_experiments()]
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    records = run_experiments(
        ids,
        quick=not args.full,
        jobs=args.jobs,
        cache=False,
        progress=_progress_line if len(ids) > 1 else None,
    )
    # Render in request order; a crashed experiment becomes a FAIL table
    # (and a non-zero exit) without suppressing the others' output files.
    all_ok = True
    for rec in records:
        rendered = rec.to_result().render()
        print(rendered)
        print(f"({rec.wall_s:.1f}s)\n")
        if out_dir:
            (out_dir / f"{rec.exp_id.replace('.', '_')}.txt").write_text(
                rendered + "\n"
            )
        all_ok &= rec.passed
    return 0 if all_ok else 1


def _cmd_demo(args) -> int:
    from .analysis import check_multiselect, check_splitters
    from .bounds import splitters_right_bound
    from .core import multi_select, right_grounded_splitters
    from .em import Machine
    from .workloads import load_input, random_permutation

    machine = Machine(memory=4096, block=64)
    n, k, a = 100_000, 64, 32
    data = random_permutation(n, seed=0)
    file = load_input(machine, data)
    print(f"machine M={machine.M} B={machine.B}; input N={n} "
          f"({file.num_blocks} blocks)")

    with machine.measure() as cost:
        res = right_grounded_splitters(machine, file, k, a)
    check_splitters(data, res.splitters, a, n, k)
    bound = splitters_right_bound(n, k, a, machine.M, machine.B)
    print(f"\nright-grounded {k}-splitters (a={a}): {cost.total} I/Os "
          f"(bound {bound:.0f}; one scan = {n // machine.B})")
    print("  -> sublinear: the splitters were found without reading most "
          "of the input")

    ranks = np.linspace(1, n, 16).astype(np.int64)
    with machine.measure() as cost:
        ans = multi_select(machine, file, ranks)
    check_multiselect(data, ranks, ans)
    print(f"\nmulti-selection of {len(ranks)} ranks: {cost.total} I/Os "
          f"(Theorem 4's linear base case)")
    print("\nall outputs verified ✓ — see `repro run` for the full "
          "reproduction tables")
    return 0


def _cmd_bounds(args) -> int:
    from .bounds.table import render_table1

    print(
        render_table1(args.n, args.k, args.a, args.b, args.memory, args.block)
    )
    return 0


def _cmd_solve(args) -> int:
    from .analysis import (
        check_multiselect,
        check_partitioned,
        check_splitters,
        render_phase_breakdown,
    )
    from .core import approximate_partition, approximate_splitters, multi_select
    from .em import Machine
    from .workloads import WORKLOADS, load_input

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; known: "
              f"{', '.join(sorted(WORKLOADS))}")
        return 2
    machine = Machine(memory=args.memory, block=args.block)
    records = WORKLOADS[args.workload](args.n, seed=args.seed)
    file = load_input(machine, records)
    a = args.a if args.a is not None else 0
    b = args.b if args.b is not None else args.n
    print(f"machine M={machine.M} B={machine.B}; workload {args.workload} "
          f"N={args.n} seed={args.seed}")

    if args.trace:
        machine.disk.start_trace()
    pf = None
    try:
        with machine.measure() as cost:
            if args.problem == "splitters":
                result = approximate_splitters(machine, file, args.k, a, b)
                check_splitters(records, result.splitters, a, b, args.k)
                outcome = f"{len(result.splitters)} splitters ({result.variant})"
            elif args.problem == "partition":
                pf = approximate_partition(machine, file, args.k, a, b)
                sizes = check_partitioned(records, pf, a, b, args.k)
                outcome = (
                    f"{args.k} partitions, sizes in "
                    f"[{min(sizes)}, {max(sizes)}]"
                )
            else:  # multiselect
                ranks = np.linspace(1, args.n, args.k).astype(np.int64)
                answers = multi_select(machine, file, ranks)
                check_multiselect(records, ranks, answers)
                outcome = f"{args.k} ranks selected"

        print(f"\n{args.problem}: {outcome} — verified ✓")
        print(f"simulated I/O: {cost.total:,} "
              f"(one scan = {args.n // machine.B:,}); "
              f"comparisons: {machine.comparisons:,}")
        print(f"memory peak: {machine.memory.peak} / {machine.M}\n")
        print(render_phase_breakdown(cost))
        if args.trace:
            from .analysis import access_stats

            s = access_stats(machine.disk.stop_trace())
            print(
                f"\naccess pattern: read sequentiality "
                f"{s.read_sequentiality:.2f} "
                f"(mean run {s.read_mean_run:.1f} blocks), "
                f"write sequentiality {s.write_sequentiality:.2f}"
            )
        return 0
    except Exception as exc:
        print(f"solve failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        # Lifecycle hygiene even when the algorithm or a verification
        # check raises mid-measure: close the trace window and release
        # every file this command allocated.
        if machine.disk.tracing:
            machine.disk.stop_trace()
        if pf is not None:
            pf.free()
        file.free()


def _cmd_trace(args) -> int:
    import json

    from .experiments.runner import default_out_dir
    from .obs import (
        Tracer,
        build_instance,
        render_span_tree,
        span_rollup,
        traces_to_dict,
        write_chrome_trace,
    )

    overrides = {
        key: getattr(args, key)
        for key in ("n", "k", "a", "part_size", "memory", "block", "seed")
        if getattr(args, key) is not None
    }
    solver, machine, file, params = build_instance(args.algorithm, overrides)
    tracer = Tracer()
    tracer.attach(machine)
    try:
        outcome = solver.run(machine, file, params)
    finally:
        file.free()
        tracer.detach(machine)

    out_dir = Path(args.out) if args.out else default_out_dir() / "traces"
    out_dir.mkdir(parents=True, exist_ok=True)
    chrome_path = write_chrome_trace(
        tracer.traces, out_dir / f"{args.algorithm}.trace.json"
    )
    tree = render_span_tree(tracer.traces)
    tree_path = out_dir / f"{args.algorithm}.tree.txt"
    tree_path.write_text(tree + "\n")
    payload = {
        "solver": args.algorithm,
        "title": solver.title,
        "params": params,
        "outcome": outcome,
        "io": machine.io.total,
        "comparisons": machine.comparisons,
        "rollup": span_rollup(tracer.traces),
        "traces": traces_to_dict(tracer.traces),
    }
    spans_path = out_dir / f"{args.algorithm}.spans.json"
    spans_path.write_text(json.dumps(payload, indent=1) + "\n")

    if args.json:
        print(json.dumps(payload, indent=1))
        return 0
    print(f"{args.algorithm}: {outcome}\n")
    print(tree)
    print(
        f"\nwrote {chrome_path} (load at https://ui.perfetto.dev),\n"
        f"      {tree_path},\n      {spans_path}"
    )
    return 0


def _cmd_metrics(args) -> int:
    from .experiments.runner import default_out_dir
    from .obs import (
        FlightRecorder,
        MetricsRegistry,
        build_instance,
        flight_scope,
        metrics_scope,
    )

    import json

    overrides = {
        key: getattr(args, key)
        for key in ("n", "k", "a", "part_size", "memory", "block", "seed")
        if getattr(args, key) is not None
    }
    solver, machine, file, params = build_instance(args.algorithm, overrides)
    registry = MetricsRegistry()
    recorder = FlightRecorder()
    try:
        with metrics_scope(registry), flight_scope(recorder):
            outcome = solver.run(machine, file, params)
    finally:
        file.free()

    out_dir = Path(args.out) if args.out else default_out_dir() / "metrics"
    out_dir.mkdir(parents=True, exist_ok=True)
    prom_path = out_dir / f"{args.algorithm}.prom"
    prom_path.write_text(registry.to_prometheus())
    payload = {
        "solver": args.algorithm,
        "title": solver.title,
        "params": params,
        "outcome": outcome,
        "io": machine.io.total,
        "comparisons": machine.comparisons,
        "metrics": registry.to_dict(),
        "flight": recorder.to_dict(),
    }
    json_path = out_dir / f"{args.algorithm}.metrics.json"
    json_path.write_text(json.dumps(payload, indent=1) + "\n")
    flight_path = recorder.dump(out_dir / f"{args.algorithm}.flight.json")

    if args.json:
        print(json.dumps(payload, indent=1))
        return 0
    print(f"{args.algorithm}: {outcome}\n")
    print(registry.render())
    print()
    print(recorder.render())
    print(
        f"\nwrote {prom_path},\n      {json_path},\n      {flight_path}"
    )
    return 0


def _cmd_budgets(args) -> int:
    from .obs import check_budgets, render_budget_report, write_budgets

    path = args.path
    if args.write:
        path = write_budgets(path, headroom=args.headroom)
        print(f"wrote {path}")
    checks = check_budgets(path)
    print(render_budget_report(checks))
    return 0 if all(c.ok for c in checks) else 1


def _cmd_lint(args) -> int:
    import json as _json

    from .lint import lint_paths
    from .lint.runner import baseline_delta, git_changed_files

    rule_ids = None
    if args.rule:
        rule_ids = [
            r.strip()
            for spec in args.rule
            for r in spec.split(",")
            if r.strip()
        ]
    paths = args.paths or None
    only_paths = None
    if getattr(args, "diff", None):
        changed = git_changed_files(args.diff)
        if changed is None:
            print(
                f"lint --diff: cannot resolve git ref {args.diff!r}",
                file=sys.stderr,
            )
            return 2
        only_paths = changed
    try:
        report = lint_paths(
            paths,
            rule_ids=rule_ids,
            use_cache=not getattr(args, "no_cache", False),
            only_paths=only_paths,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if getattr(args, "baseline", None):
        try:
            baseline = _json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as exc:
            print(f"lint --baseline: {exc}", file=sys.stderr)
            return 2
        report = baseline_delta(report, baseline)
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _sanitize_trap_checks() -> list[tuple[str, bool]]:
    """Deliberately trigger every sanitizer trap on a throwaway machine.

    Returns ``(trap name, fired)`` pairs — each trap must raise its
    specific :class:`~repro.em.errors.SanitizerError` subclass.
    """
    from .em import (
        DoubleFreeError,
        DoubleReleaseError,
        LeaseLeakError,
        Machine,
        UninitializedReadError,
        UseAfterFreeError,
    )
    from .em.records import make_records

    results: list[tuple[str, bool]] = []

    def trap(name: str, exc_type, fn) -> None:
        machine = Machine(memory=256, block=8, sanitize=True)
        try:
            fn(machine)
        except exc_type:
            results.append((name, True))
        else:
            results.append((name, False))

    data = make_records(np.arange(8))

    def use_after_free(machine):
        (bid,) = machine.disk.allocate(1)
        machine.disk.write(bid, data)
        machine.disk.free([bid])
        machine.disk.read(bid)

    def double_free(machine):
        (bid,) = machine.disk.allocate(1)
        machine.disk.write(bid, data)
        machine.disk.free([bid])
        machine.disk.free([bid])

    def uninitialized_read(machine):
        (bid,) = machine.disk.allocate(1)
        machine.disk.read(bid)

    def double_release(machine):
        lease = machine.memory.lease(8, "trap")  # emlint: disable=R5 — deliberate trap fixture
        lease.release()
        lease.release()

    def lease_leak(machine):
        machine.memory.lease(8, "leak")  # emlint: disable=R5 — deliberate trap fixture
        machine.close()

    trap("use-after-free", UseAfterFreeError, use_after_free)
    trap("double-free", DoubleFreeError, double_free)
    trap("uninitialized-read", UninitializedReadError, uninitialized_read)
    trap("double-release", DoubleReleaseError, double_release)
    trap("lease-leak", LeaseLeakError, lease_leak)
    return results


def _cmd_sanitize_check(args) -> int:
    from .em import Machine
    from .em.errors import SanitizerError
    from .obs import Tracer
    from .obs.solvers import SOLVERS
    from .workloads.generators import load_input, random_permutation

    failures = 0

    print("sanitizer traps (each must fire):")
    for name, fired in _sanitize_trap_checks():
        print(f"  {name:22s} {'PASS' if fired else 'FAIL (did not raise)'}")
        failures += 0 if fired else 1

    names = args.solver or sorted(SOLVERS)
    unknown = set(names) - set(SOLVERS)
    if unknown:
        print(f"unknown solvers: {sorted(unknown)}", file=sys.stderr)
        return 2
    print("\nsolvers under Machine(sanitize=True) + conservation check:")
    for name in names:
        solver = SOLVERS[name]
        params = dict(solver.defaults)
        for key in ("n", "memory", "block"):
            if getattr(args, key) is not None:
                params[key] = getattr(args, key)
        machine = Machine(
            memory=params["memory"], block=params["block"], sanitize=True
        )
        file = load_input(
            machine, random_permutation(params["n"], seed=params["seed"])
        )
        machine.reset_counters()
        tracer = Tracer()
        tracer.attach(machine)
        try:
            outcome = solver.run(machine, file, params)
            file.free()
            tracer.detach(machine)  # conservation check fires here
            machine.close()  # lease-leak check fires here
        except SanitizerError as exc:
            failures += 1
            print(f"  {name:22s} FAIL {type(exc).__name__}: {exc}")
        except Exception as exc:  # incompatible overrides, solver bugs
            failures += 1
            print(f"  {name:22s} ERROR {type(exc).__name__}: {exc}")
        else:
            print(f"  {name:22s} PASS {outcome}")

    print(f"\nsanitize-check: {'PASS' if failures == 0 else f'{failures} FAILURE(S)'}")
    return 0 if failures == 0 else 1


def _build_service(args):
    """Shared setup for the service verbs: machine, input, engine.

    Returns ``(machine, file, engine)``; ``file`` is ``None`` when the
    engine took ownership of the data (the eager index copies the input
    into its own partition segments, so the staging file is freed here).
    """
    from .em import Machine
    from .service import LazyPartitionIndex, PartitionIndex
    from .workloads import WORKLOADS, load_input

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; known: "
              f"{', '.join(sorted(WORKLOADS))}", file=sys.stderr)
        raise SystemExit(2)
    durable = getattr(args, "durable", False)
    if durable and args.engine != "eager":
        print("--durable requires the eager engine", file=sys.stderr)
        raise SystemExit(2)
    shards = getattr(args, "shards", 0) or 0
    if shards and args.engine != "lazy":
        print("--shards requires the lazy engine", file=sys.stderr)
        raise SystemExit(2)
    machine = Machine(memory=args.memory, block=args.block)
    records = WORKLOADS[args.workload](args.n, seed=args.seed)
    file = load_input(machine, records)
    machine.reset_counters()
    if shards:
        from .shard import build_sharded_service

        router = build_sharded_service(
            machine, file, shards=shards, k=args.k,
            workers=getattr(args, "workers", "inproc"),
        )
        return machine, file, router
    if args.engine == "eager":
        if durable:
            from .service import DurablePartitionIndex

            engine = DurablePartitionIndex.build_durable(
                machine, file, args.k,
                wal_capacity=getattr(args, "wal_cap", None),
                snapshot_every=getattr(args, "snapshot_every", 16),
            )
        else:
            engine = PartitionIndex.build(machine, file, args.k)
        file.free()
        return machine, None, engine
    return machine, file, LazyPartitionIndex(machine, file, k=args.k)


def _parse_query_spec(spec: str):
    """``select:R`` / ``quantile:Q`` / ``range:LO:HI`` / ``part:KEY``
    (long kinds ``range_count`` / ``partition_of`` also accepted)."""
    kind, _, rest = spec.partition(":")
    kind = {"range": "range_count", "part": "partition_of"}.get(kind, kind)
    try:
        if kind == "select":
            return ("select", int(rest))
        if kind == "quantile":
            return ("quantile", float(rest))
        if kind == "range_count":
            lo, _, hi = rest.partition(":")
            return ("range_count", int(lo), int(hi))
        if kind == "partition_of":
            return ("partition_of", int(rest))
    except ValueError:
        pass
    raise SystemExit(f"bad query spec {spec!r} (want select:R, quantile:Q, "
                     f"range:LO:HI or part:KEY)")


def _print_answers(queries, answers) -> None:
    for query, ans in zip(queries, answers):
        if query.kind in ("select", "quantile"):
            arg = query.rank if query.kind == "select" else query.q
            print(f"  {query.kind} {arg} -> key={int(ans['key'])} "
                  f"uid={int(ans['uid'])}")
        elif query.kind == "range_count":
            print(f"  range_count ({query.lo}, {query.hi}] -> {ans}")
        else:
            print(f"  partition_of {query.key} -> {ans}")


def _cmd_query(args) -> int:
    from .service import Query, QueryFrontend

    machine, file, engine = _build_service(args)
    try:
        frontend = QueryFrontend(machine, engine)
        queries = [Query.coerce(_parse_query_spec(s)) for s in args.queries]
        for query in queries:
            frontend.submit(query)
        answers = frontend.flush()
        label = args.engine
        if getattr(args, "shards", 0):
            label = f"sharded[{engine.nshards}x{args.workers}]"
        print(f"engine={label} N={args.n} K={args.k} "
              f"n_live={engine.n_live}")
        _print_answers(queries, answers)
        flush = frontend.flushes[-1]
        print(f"one flush: {flush.queries} queries "
              f"({flush.distinct_ranks} distinct ranks), {flush.io:,} I/Os "
              f"({flush.amortized_io:.1f}/query)")
        return 0
    finally:
        engine.close()
        if file is not None:
            file.free()


def _cmd_serve(args) -> int:
    """Run the interactive service inside a flight-recorder scope.

    On an *unclean* exit of a durable service (an uncaught exception —
    e.g. the ``abort`` command), the recorder's last events are dumped
    to ``--flight-dump`` so ``repro recover --flight-dump`` can show
    what the service was doing when it died.
    """
    from .experiments.runner import default_out_dir
    from .obs import FlightRecorder, flight_scope

    recorder = FlightRecorder()
    try:
        with flight_scope(recorder):
            return _serve_loop(args, recorder)
    except BaseException:
        if getattr(args, "durable", False):
            dump = Path(args.flight_dump) if args.flight_dump else (
                default_out_dir() / "flight" / "serve.flight.json"
            )
            recorder.dump(dump)
            print(f"unclean exit: flight recorder dumped to {dump}",
                  file=sys.stderr)
        raise


def _serve_loop(args, recorder) -> int:
    from .service import QueryFrontend

    machine, file, engine = _build_service(args)
    frontend = QueryFrontend(machine, engine)
    eager = args.engine == "eager"
    durable = getattr(args, "durable", False)
    mode = "eager+durable" if durable else args.engine
    recorder.record("serve-start", engine=mode, n=args.n, k=args.k)
    print(f"partition service up: engine={mode} N={args.n} "
          f"K={args.k} (M={machine.M}, B={machine.B})")
    print("commands: select R [R ...] | quantile Q [Q ...] | "
          "range LO HI | part KEY"
          + (" | append K [K ...] | delete K | flush" if eager else "")
          + (" | snapshot | crash | abort | dstats" if durable else "")
          + " | stats | quit")
    stream = open(args.input) if args.input else sys.stdin
    status = 0
    try:
        for line in stream:
            tokens = line.split()
            if not tokens or tokens[0].startswith("#"):
                continue
            cmd, rest = tokens[0], tokens[1:]
            if durable and cmd == "abort":
                # Deliberately *outside* the keep-serving handler: an
                # abort is an unclean process exit, not a bad query.
                engine.abandon()
                raise RuntimeError(
                    "abort requested — simulating an unclean service exit"
                )
            try:
                if cmd == "quit":
                    break
                elif cmd == "stats":
                    for key, value in frontend.summary().items():
                        print(f"  {key}: {value}")
                elif cmd == "select":
                    for r in rest:
                        frontend.select(int(r))
                elif cmd == "quantile":
                    for q in rest:
                        frontend.quantile(float(q))
                elif cmd == "range":
                    frontend.range_count(int(rest[0]), int(rest[1]))
                elif cmd == "part":
                    frontend.partition_of(int(rest[0]))
                elif eager and cmd == "append":
                    engine.append([int(k) for k in rest])
                    print(f"  buffered {len(rest)} appends")
                elif eager and cmd == "delete":
                    engine.delete(int(rest[0]))
                    print("  buffered 1 delete")
                elif eager and cmd == "flush":
                    print(f"  update flush: {engine.flush_updates()}")
                elif durable and cmd == "snapshot":
                    engine.snapshot()
                    stats = engine.durability_stats()
                    print(f"  snapshot taken (epoch {stats['epoch']}, "
                          f"seq {stats['seq']})")
                elif durable and cmd == "dstats":
                    for key, value in engine.durability_stats().items():
                        print(f"  {key}: {value}")
                elif durable and cmd == "crash":
                    from .service import recover

                    manifest = engine.manifest_block
                    engine.abandon()
                    with machine.measure("svc-recover") as cost:
                        engine = recover(machine, manifest)
                    frontend = QueryFrontend(machine, engine)
                    print(f"  crashed and recovered: seq="
                          f"{engine.applied_seq} n_live={engine.n_live} "
                          f"[{cost.total:,} I/Os]")
                else:
                    print(f"  unknown command {cmd!r}", file=sys.stderr)
                    status = 1
                    continue
                if frontend.pending:
                    queued = frontend.queued
                    answers = frontend.flush()
                    _print_answers(queued, answers)
                    flush = frontend.flushes[-1]
                    print(f"  [{flush.io:,} I/Os]")
            except Exception as exc:  # keep serving after a bad query
                print(f"  error: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                status = 1
        summary = frontend.summary()
        print(f"served {summary['queries']} queries in "
              f"{summary['flushes']} flushes: {summary['io']:,} I/Os "
              f"({summary['amortized_io']:.1f}/query)")
        return status
    finally:
        if args.input:
            stream.close()
        engine.close()
        if file is not None:
            file.free()


class _InjectedCrash(Exception):
    """Raised by the ``repro recover`` crash injector."""


def _arm_crash(machine, fail_at: int):
    """Make the ``fail_at``-th disk I/O from now raise (single-shot).

    Arm this *after* setup so the build itself cannot fault; batched
    calls tick once per block, the whole batch failing before any
    accounting (disk batches are atomic).  Returns a disarm callable
    restoring the original disk methods — call it before recovery so an
    offset past the update phase's total I/O means "no crash" rather
    than a fault inside ``recover`` itself.
    """
    disk = machine.disk
    state = {"seen": 0}
    orig_read, orig_write = disk.read, disk.write
    orig_read_many, orig_write_many = disk.read_many, disk.write_many

    def tick(k: int) -> None:
        before = state["seen"]
        state["seen"] += k
        if before < fail_at <= state["seen"]:
            raise _InjectedCrash

    def read(bid):
        tick(1)
        return orig_read(bid)

    def write(bid, data):
        tick(1)
        return orig_write(bid, data)

    def read_many(bids):
        tick(len(bids))
        return orig_read_many(bids)

    def write_many(bids, data):
        tick(len(bids))
        return orig_write_many(bids, data)

    disk.read, disk.write = read, write
    disk.read_many, disk.write_many = read_many, write_many

    def disarm() -> None:
        disk.read, disk.write = orig_read, orig_write
        disk.read_many, disk.write_many = orig_read_many, orig_write_many

    return disarm


def _apply_update_batch(index, batch) -> None:
    for op in batch:
        if op[0] == "append":
            index.append(op[1])
        else:
            index.delete(op[1])
    index.flush_updates()


def _cmd_recover(args) -> int:
    """Scripted crash→recover scenario with an answer-identity check.

    Builds a durable index, applies an interleaved update plan, crashes
    at the ``--fail-at``-th I/O (0 = clean process death after the
    plan), recovers from the manifest, and compares a zipfian
    verification trace against a *shadow oracle*: a volatile index on a
    fresh machine that applied exactly the flush groups the recovered
    sequence number says were committed.  Exits non-zero if any answer
    diverges or the crashed process leaked memory leases.
    """
    from .em import Machine
    from .em.records import composite
    from .service import DurablePartitionIndex, PartitionIndex, recover
    from .workloads import load_input, random_permutation
    from .workloads.queries import update_batches, zipfian_trace

    if args.flight_dump:
        from .obs import load_flight_dump, render_flight_events

        print(render_flight_events(load_flight_dump(args.flight_dump)))
        return 0

    machine = Machine(memory=args.memory, block=args.block)
    records = random_permutation(args.n, seed=args.seed)
    file = load_input(machine, records)
    machine.reset_counters()
    index = DurablePartitionIndex.build_durable(
        machine, file, args.k,
        wal_capacity=args.wal_cap, snapshot_every=args.snapshot_every,
    )
    file.free()
    appends = 3 * args.batch_ops // 4
    deletes = args.batch_ops - appends
    plan = update_batches(
        records["key"], args.batches, appends, deletes, seed=args.seed
    )
    disarm = _arm_crash(machine, args.fail_at) if args.fail_at else None
    crashed = False
    try:
        for batch in plan:
            _apply_update_batch(index, batch)
    except _InjectedCrash:
        crashed = True
    finally:
        if disarm is not None:
            disarm()
    manifest = index.manifest_block
    index.abandon()
    leaked = machine.memory.in_use
    with machine.measure("svc-recover") as cost:
        recovered = recover(machine, manifest)
    seq = recovered.applied_seq
    print(f"{'crashed at I/O #' + str(args.fail_at) if crashed else 'clean shutdown'}"
          f": recovered seq={seq}/{len(plan)} n_live={recovered.n_live} "
          f"in {cost.total:,} I/Os")

    shadow_machine = Machine(memory=args.memory, block=args.block)
    shadow_file = load_input(shadow_machine, records)
    shadow = PartitionIndex.build(shadow_machine, shadow_file, args.k)
    shadow_file.free()
    for batch in plan[:seq]:
        _apply_update_batch(shadow, batch)

    ok = True
    if recovered.n_live != shadow.n_live:
        print(f"LIVE-COUNT MISMATCH: recovered {recovered.n_live} vs "
              f"shadow {shadow.n_live}", file=sys.stderr)
        ok = False
    else:
        trace = zipfian_trace(args.queries, recovered.n_live,
                              seed=args.seed + 1)
        got = composite(recovered.batch_select(trace))
        want = composite(shadow.batch_select(trace))
        diverged = int((got != want).sum())
        if diverged:
            print(f"ANSWER MISMATCH: {diverged}/{args.queries} queries "
                  f"diverge from the shadow oracle", file=sys.stderr)
            ok = False
        else:
            print(f"answer identity: {args.queries}/{args.queries} zipfian "
                  f"queries element-identical to the uncrashed shadow")
    if leaked:
        print(f"LEASE LEAK: crashed process held {leaked} records",
              file=sys.stderr)
        ok = False
    shadow.close()
    recovered.abandon()
    return 0 if ok else 1


def _cmd_bench_queries(args) -> int:
    if args.shards:
        return _bench_queries_sharded(args)
    import json

    from .analysis.report import render_kv
    from .core import multi_select
    from .em import Machine
    from .experiments.runner import default_out_dir
    from .em.records import composite
    from .obs import MetricsRegistry, metrics_scope
    from .service import LazyPartitionIndex, Query, QueryFrontend
    from .workloads import load_input
    from .workloads.generators import random_permutation
    from .workloads.queries import QUERY_TRACES

    n = args.n or (2**16 if args.quick else 2**20)
    k = args.k or (64 if args.quick else 256)
    q = args.queries or (128 if args.quick else 512)
    trace_fn = QUERY_TRACES[args.trace]
    if args.trace == "zipfian":
        trace = trace_fn(q, n, seed=args.seed, alpha=args.alpha)
    else:
        trace = trace_fn(q, n, seed=args.seed)
    records = random_permutation(n, seed=args.seed)

    machine = Machine(memory=args.memory, block=args.block)
    file = load_input(machine, records)
    machine.reset_counters()
    t0 = time.time()
    registry = MetricsRegistry()
    with metrics_scope(registry):
        with LazyPartitionIndex(machine, file, k=k) as engine:
            frontend = QueryFrontend(machine, engine)
            answers = frontend.run(
                [Query.select(int(r)) for r in trace], batch=args.batch
            )
            online_io = machine.io.total
            stats = dict(engine.stats)
    wall = time.time() - t0
    file.free()
    hist = registry.histogram("svc_query_io", labels=("engine",)).labels(
        engine="lazy"
    )
    p50, p95, p99 = (hist.quantile(f) for f in (0.50, 0.95, 0.99))

    # Differential identity plus the offline per-query estimate (the
    # single-rank multi-selection cost is rank-independent to ~0.1%).
    unique, inverse = np.unique(trace, return_inverse=True)
    mach2 = Machine(memory=args.memory, block=args.block)
    f2 = load_input(mach2, records)
    mach2.reset_counters()
    offline = multi_select(mach2, f2, unique)
    per_query = []
    for r in np.linspace(1, n, 3).astype(np.int64):
        mach2.reset_counters()
        multi_select(mach2, f2, np.array([r]))
        per_query.append(mach2.io.total)
    f2.free()
    identical = bool(np.array_equal(
        composite(np.array(answers, dtype=offline.dtype)),
        composite(offline[inverse]),
    ))
    offline_est = float(np.mean(per_query)) * q
    fraction = online_io / offline_est
    passed = identical and fraction < 0.25

    lines = [
        f"service bench: {args.trace} trace, seed {args.seed}",
        render_kv([
            ("N / K / queries", f"{n} / {k} / {q}"),
            ("distinct ranks", len(unique)),
            ("machine", f"M={args.memory} B={args.block} "
                        f"(flush batch {args.batch})"),
            ("online total I/O", f"{online_io:,}"),
            ("amortized I/O per query", f"{online_io / q:.1f}"),
            ("per-query I/O p50 / p95 / p99",
             f"{p50:.1f} / {p95:.1f} / {p99:.1f} "
             f"(over {hist.count} queries)"),
            ("refinements / leaf loads / cache hits",
             f"{stats['refinements']} / {stats['leaf_loads']} / "
             f"{stats['cache_hits']}"),
            ("offline per-query baseline",
             f"{offline_est:,.0f} ({np.mean(per_query):,.0f} I/Os x {q})"),
            ("online / offline", f"{fraction:.4f}"),
            ("answers identical to offline", "yes" if identical else "NO"),
            ("acceptance (< 0.25 of offline)",
             "PASS" if passed else "FAIL"),
            ("wall time", f"{wall:.1f}s"),
        ]),
    ]
    text = "\n".join(lines)
    out = Path(args.out) if args.out else (
        default_out_dir() / "SERVICE_QUERIES.txt"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    if args.json:
        doc = {
            "config": {
                "trace": args.trace,
                "n": n,
                "k": k,
                "queries": q,
                "batch": args.batch,
                "seed": args.seed,
                "memory": args.memory,
                "block": args.block,
            },
            "distinct_ranks": int(len(unique)),
            "online_io": int(online_io),
            "amortized_io": online_io / q,
            "per_query_io": {
                "p50": p50,
                "p95": p95,
                "p99": p99,
                "count": hist.count,
            },
            "engine_stats": stats,
            "offline_estimate": offline_est,
            "ratio": fraction,
            "answers_identical": identical,
            "passed": passed,
            "wall_s": round(wall, 3),
            "metrics": registry.to_dict(),
        }
        print(json.dumps(doc, indent=1))
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)
        print(f"\nwrote {out}")
    return 0 if passed else 1


def _bench_queries_sharded(args) -> int:
    """``bench-queries --shards W``: the same trace against the sharded
    service and the single-machine engine, answers asserted identical.

    The text record (``SERVICE_SHARDS.txt``) carries wall-clock timing
    and the observed speedup; the ``--json`` document deliberately
    excludes both so it is byte-reproducible across runs.  The >= 2x
    parallel-throughput gate only applies with process workers on a
    host with at least 4 CPUs — elsewhere the speedup is recorded but
    not asserted.
    """
    import json
    import os

    from .analysis.report import render_kv
    from .em import Machine
    from .em.records import composite
    from .experiments.runner import default_out_dir
    from .obs import MetricsRegistry, metrics_scope
    from .service import LazyPartitionIndex, Query, QueryFrontend
    from .shard import build_sharded_service
    from .workloads import load_input
    from .workloads.generators import random_permutation
    from .workloads.queries import QUERY_TRACES

    n = args.n or (2**16 if args.quick else 2**18)
    k = args.k or (64 if args.quick else 256)
    q = args.queries or (128 if args.quick else 512)
    w = args.shards
    trace_fn = QUERY_TRACES[args.trace]
    if args.trace == "zipfian":
        trace = trace_fn(q, n, seed=args.seed, alpha=args.alpha)
    elif args.trace == "shard-skew":
        trace = trace_fn(q, n, seed=args.seed, shards=w)
    else:
        trace = trace_fn(q, n, seed=args.seed)
    records = random_permutation(n, seed=args.seed)
    queries = [Query.select(int(r)) for r in trace]

    # Single-machine reference on its own machine (no shared state).
    mach1 = Machine(memory=args.memory, block=args.block)
    f1 = load_input(mach1, records)
    mach1.reset_counters()
    t0 = time.time()
    with LazyPartitionIndex(mach1, f1, k=k) as engine:
        single = QueryFrontend(mach1, engine).run(queries, batch=args.batch)
        single_io = mach1.io.total
    single_wall = time.time() - t0
    f1.free()
    mach1.close()

    # Sharded run: coordinator + W workers, all communication charged.
    registry = MetricsRegistry()
    mach2 = Machine(memory=args.memory, block=args.block)
    f2 = load_input(mach2, records)
    mach2.reset_counters()
    t0 = time.time()
    with metrics_scope(registry):
        with build_sharded_service(
            mach2, f2, shards=w, k=k, workers=args.workers
        ) as router:
            build_io = mach2.io.total
            sharded = QueryFrontend(mach2, router).run(
                queries, batch=args.batch
            )
            trace_io = mach2.io.total - build_io
            io_stats = router.shard_io_stats()
            sizes = [int(s) for s in router.shard_sizes]
    sharded_wall = time.time() - t0
    coord_io = mach2.io.total
    f2.free()
    mach2.close()

    identical = bool(np.array_equal(
        composite(np.array(single, dtype=records.dtype)),
        composite(np.array(sharded, dtype=records.dtype)),
    ))
    shard_io = [
        int(s["lifetime_reads"] + s["lifetime_writes"]) for s in io_stats
    ]
    io_balance = max(shard_io) / max(1.0, float(np.mean(shard_io)))
    size_balance = max(sizes) / max(1.0, float(np.mean(sizes)))
    families = registry.to_dict()
    msgs = int(sum(
        c["value"] for c in families["svc_shard_msgs"]["children"].values()
    ))
    comm_bytes = int(sum(
        c["value"] for c in families["svc_shard_bytes"]["children"].values()
    ))
    speedup = single_wall / sharded_wall if sharded_wall > 0 else float("inf")
    throughput_gated = args.workers == "process" and (os.cpu_count() or 1) >= 4
    throughput_ok = (not throughput_gated) or speedup >= 2.0
    if throughput_gated:
        gate_note = "PASS" if throughput_ok else "FAIL"
    else:
        gate_note = "skipped (needs process workers on >= 4 CPUs)"
    passed = identical and throughput_ok

    per_shard = ", ".join(
        f"s{i}: n={sizes[i]} io={shard_io[i]:,}" for i in range(w)
    )
    lines = [
        f"sharded service bench: {args.trace} trace, seed {args.seed}",
        render_kv([
            ("N / K / queries / shards", f"{n} / {k} / {q} / {w}"),
            ("workers", args.workers),
            ("machine", f"M={args.memory} B={args.block} "
                        f"(flush batch {args.batch})"),
            ("single-machine I/O", f"{single_io:,}"),
            ("coordinator I/O (build + trace)",
             f"{coord_io:,} ({build_io:,} + {trace_io:,})"),
            ("per-shard (size, lifetime I/O)", per_shard),
            ("shard I/O balance (max/mean)", f"{io_balance:.3f}"),
            ("shard size balance (max/mean)", f"{size_balance:.3f}"),
            ("messages / charged bytes", f"{msgs:,} / {comm_bytes:,}"),
            ("answers identical to single machine",
             "yes" if identical else "NO"),
            ("wall single / sharded",
             f"{single_wall:.2f}s / {sharded_wall:.2f}s"),
            ("observed speedup", f"{speedup:.2f}x"),
            (">= 2x throughput gate", gate_note),
            ("acceptance", "PASS" if passed else "FAIL"),
        ]),
    ]
    text = "\n".join(lines)
    out = Path(args.out) if args.out else (
        default_out_dir() / "SERVICE_SHARDS.txt"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    if args.json:
        doc = {
            "config": {
                "trace": args.trace,
                "n": n,
                "k": k,
                "queries": q,
                "shards": w,
                "workers": args.workers,
                "batch": args.batch,
                "seed": args.seed,
                "memory": args.memory,
                "block": args.block,
            },
            "single_io": int(single_io),
            "coordinator_io": {
                "build": int(build_io),
                "trace": int(trace_io),
                "total": int(coord_io),
            },
            "shards": [
                {
                    "shard": int(s["shard"]),
                    "n": int(s["n"]),
                    "lifetime_reads": int(s["lifetime_reads"]),
                    "lifetime_writes": int(s["lifetime_writes"]),
                    "lifetime_comparisons": int(s["lifetime_comparisons"]),
                }
                for s in io_stats
            ],
            "io_balance": io_balance,
            "size_balance": size_balance,
            "messages": msgs,
            "comm_bytes": comm_bytes,
            "answers_identical": identical,
            "metrics": families,
        }
        print(json.dumps(doc, indent=1))
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text)
        print(f"\nwrote {out}")
    return 0 if passed else 1


def _cmd_bench_kernels(args) -> int:
    from .em.kernels.bench import bench_kernels, render_bench
    from .experiments.runner import default_out_dir

    if args.quick:
        result = bench_kernels(n_blocks=2048, n_buckets=2000, reps=2)
    else:
        result = bench_kernels(
            n_blocks=args.blocks, n_buckets=args.buckets, reps=args.reps
        )
    text = render_bench(result)
    print(text)
    out = Path(args.out) if args.out else (
        default_out_dir() / "KERNEL_BACKEND.txt"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    print(f"\nwrote {out}")
    speedup = result.speedup("vectorized_v2")
    passed = result.identical and speedup >= args.min_speedup
    print(
        f"acceptance (identical outputs, >= {args.min_speedup:.0f}x): "
        f"{'PASS' if passed else 'FAIL'}"
    )
    return 0 if passed else 1


def _cmd_report(args) -> int:
    from .experiments.report_all import DEFAULT_ORDER, generate_experiments_md
    from .experiments.runner import (
        default_out_dir,
        run_experiments,
        write_results_json,
    )

    t0 = time.time()
    records = run_experiments(
        DEFAULT_ORDER,
        quick=args.quick,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=_progress_line,
    )
    text, ok = generate_experiments_md(
        quick=args.quick, results=[rec.to_result() for rec in records]
    )
    out = Path(args.out)
    out.write_text(text + "\n")
    json_path = Path(args.json) if args.json else default_out_dir() / "results.json"
    write_results_json(records, json_path, jobs=args.jobs)
    ran = sum(not rec.cached for rec in records)
    print(
        f"wrote {out} and {json_path} in {time.time() - t0:.1f}s "
        f"({ran} run, {len(records) - ran} cached; "
        f"{'all experiments PASS' if ok else 'FAILURES present'})"
    )
    if args.check_budgets:
        from .obs import check_budgets, render_budget_report

        checks = check_budgets()
        print()
        print(render_budget_report(checks))
        ok = ok and all(c.ok for c in checks)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Finding Approximate Partitions and "
            "Splitters in External Memory' (SPAA 2014)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run experiments and print tables")
    run_p.add_argument("exp_ids", nargs="*", help="experiment ids (default: all)")
    run_p.add_argument("--full", action="store_true", help="full sweeps")
    run_p.add_argument("--out", help="directory for rendered tables")
    run_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = in-process, serial)",
    )

    sub.add_parser("demo", help="30-second tour of the headline algorithms")

    bounds_p = sub.add_parser("bounds", help="evaluate Table 1 for parameters")
    bounds_p.add_argument("--n", type=int, required=True)
    bounds_p.add_argument("--k", type=int, required=True)
    bounds_p.add_argument("--a", type=int, required=True)
    bounds_p.add_argument("--b", type=int, required=True)
    bounds_p.add_argument("--memory", type=int, default=4096, help="M (records)")
    bounds_p.add_argument("--block", type=int, default=64, help="B (records)")

    report_p = sub.add_parser(
        "report", help="run every experiment and write EXPERIMENTS.md"
    )
    report_p.add_argument("--quick", action="store_true", help="quick sweeps")
    report_p.add_argument("--out", default="EXPERIMENTS.md")
    report_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = in-process, serial)",
    )
    report_p.add_argument(
        "--no-cache", action="store_true",
        help="ignore and bypass the result cache (force recomputation)",
    )
    report_p.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help=(
            "where to write machine-readable results "
            "(default benchmarks/out/results.json; always written)"
        ),
    )
    report_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default benchmarks/out/cache)",
    )
    report_p.add_argument(
        "--check-budgets", action="store_true",
        help="also run the I/O-budget regression gate (non-zero exit on "
        "any exceeded envelope)",
    )

    solve_p = sub.add_parser("solve", help="run one algorithm and verify it")
    solve_p.add_argument(
        "--problem",
        choices=["splitters", "partition", "multiselect"],
        required=True,
    )
    solve_p.add_argument("--n", type=int, required=True)
    solve_p.add_argument("--k", type=int, required=True)
    solve_p.add_argument("--a", type=int, default=None)
    solve_p.add_argument("--b", type=int, default=None)
    solve_p.add_argument("--workload", default="permutation")
    solve_p.add_argument("--seed", type=int, default=0)
    solve_p.add_argument("--memory", type=int, default=4096, help="M (records)")
    solve_p.add_argument("--block", type=int, default=64, help="B (records)")
    solve_p.add_argument(
        "--trace", action="store_true",
        help="report access-pattern (sequentiality) statistics",
    )

    from .obs.solvers import SOLVERS

    trace_p = sub.add_parser(
        "trace",
        help="record and export a span trace of one algorithm",
    )
    trace_p.add_argument(
        "algorithm", choices=sorted(SOLVERS),
        help="registered solver to trace",
    )
    trace_p.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default benchmarks/out/traces)",
    )
    trace_p.add_argument(
        "--json", action="store_true",
        help="print the span payload as JSON to stdout (artifacts are "
        "still written)",
    )
    trace_p.add_argument("--n", type=int, default=None)
    trace_p.add_argument("--k", type=int, default=None)
    trace_p.add_argument("--a", type=int, default=None)
    trace_p.add_argument("--part-size", dest="part_size", type=int, default=None)
    trace_p.add_argument("--memory", type=int, default=None, help="M (records)")
    trace_p.add_argument("--block", type=int, default=None, help="B (records)")
    trace_p.add_argument("--seed", type=int, default=None)

    metrics_p = sub.add_parser(
        "metrics",
        help="run one solver in a metrics scope and export the telemetry",
    )
    metrics_p.add_argument(
        "algorithm", choices=sorted(SOLVERS),
        help="registered solver to instrument",
    )
    metrics_p.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory (default benchmarks/out/metrics)",
    )
    metrics_p.add_argument(
        "--json", action="store_true",
        help="print the metrics payload as JSON to stdout (artifacts are "
        "still written)",
    )
    metrics_p.add_argument("--n", type=int, default=None)
    metrics_p.add_argument("--k", type=int, default=None)
    metrics_p.add_argument("--a", type=int, default=None)
    metrics_p.add_argument("--part-size", dest="part_size", type=int,
                           default=None)
    metrics_p.add_argument("--memory", type=int, default=None,
                           help="M (records)")
    metrics_p.add_argument("--block", type=int, default=None,
                           help="B (records)")
    metrics_p.add_argument("--seed", type=int, default=None)

    budgets_p = sub.add_parser(
        "budgets", help="check or recalibrate the I/O-budget envelopes"
    )
    budgets_p.add_argument(
        "--write", action="store_true",
        help="measure every solver and rewrite the budgets file "
        "(default: check only)",
    )
    budgets_p.add_argument(
        "--path", default=None, metavar="FILE",
        help="budgets file (default benchmarks/budgets.json)",
    )
    budgets_p.add_argument(
        "--headroom", type=float, default=None,
        help="envelope headroom over the measured ratio when writing",
    )

    lint_p = sub.add_parser(
        "lint", help="run the emlint EM-conformance rules over the source"
    )
    lint_p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    lint_p.add_argument(
        "--json", action="store_true",
        help="machine-readable findings instead of the text report",
    )
    lint_p.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="restrict to these rule ids (repeatable, comma-separable)",
    )
    lint_p.add_argument(
        "--diff", metavar="REF", default=None,
        help="report findings only for files changed against this git "
        "ref (analysis still covers the whole tree)",
    )
    lint_p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings already present in this stored --json "
        "report; only new findings fail the gate",
    )
    lint_p.add_argument(
        "--no-cache", action="store_true",
        help="skip the content-addressed analysis cache",
    )

    sanitize_p = sub.add_parser(
        "sanitize-check",
        help="arm the runtime sanitizer: fire every trap, then run the "
        "registered solvers under Machine(sanitize=True)",
    )
    sanitize_p.add_argument(
        "--solver", action="append", default=None, choices=sorted(SOLVERS),
        metavar="NAME",
        help="solver(s) to run (repeatable; default: all registered)",
    )
    sanitize_p.add_argument("--n", type=int, default=None)
    sanitize_p.add_argument("--memory", type=int, default=None, help="M (records)")
    sanitize_p.add_argument("--block", type=int, default=None, help="B (records)")

    def _service_args(p, engine_default: str) -> None:
        p.add_argument("--n", type=int, default=65_536)
        p.add_argument("--k", type=int, default=64)
        p.add_argument(
            "--engine", choices=["eager", "lazy"], default=engine_default,
            help="eager = materialized PartitionIndex (supports updates); "
            "lazy = LazyPartitionIndex (read-only, refines on demand)",
        )
        p.add_argument("--workload", default="permutation")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--memory", type=int, default=4096, help="M (records)")
        p.add_argument("--block", type=int, default=64, help="B (records)")

    def _durable_args(p) -> None:
        p.add_argument(
            "--wal-cap", type=int, default=None, dest="wal_cap",
            help="WAL capacity in blocks (default max(8, M/B))",
        )
        p.add_argument(
            "--snapshot-every", type=int, default=16, dest="snapshot_every",
            help="snapshot after this many committed flush groups",
        )

    serve_p = sub.add_parser(
        "serve", help="interactive partition service over stdin"
    )
    _service_args(serve_p, engine_default="eager")
    serve_p.add_argument(
        "--durable", action="store_true",
        help="WAL + snapshot durability (eager engine only); adds the "
        "snapshot/crash/dstats commands",
    )
    _durable_args(serve_p)
    serve_p.add_argument(
        "--input", default=None, metavar="FILE",
        help="read commands from FILE instead of stdin",
    )
    serve_p.add_argument(
        "--flight-dump", default=None, dest="flight_dump", metavar="FILE",
        help="flight-recorder dump path on unclean --durable exit "
        "(default benchmarks/out/flight/serve.flight.json)",
    )

    recover_p = sub.add_parser(
        "recover",
        help="crash a durable index at a chosen I/O and verify recovery",
    )
    recover_p.add_argument("--n", type=int, default=16_384)
    recover_p.add_argument("--k", type=int, default=32)
    recover_p.add_argument("--batches", type=int, default=8,
                           help="update flush groups to apply")
    recover_p.add_argument("--batch-ops", type=int, default=64,
                           dest="batch_ops",
                           help="operations per batch (3/4 appends)")
    recover_p.add_argument("--queries", type=int, default=512,
                           help="zipfian verification queries")
    recover_p.add_argument(
        "--fail-at", type=int, default=0, dest="fail_at",
        help="crash at this counted I/O during updates (0 = clean death "
        "after the full plan)",
    )
    recover_p.add_argument("--snapshot-every", type=int, default=3,
                           dest="snapshot_every")
    recover_p.add_argument("--wal-cap", type=int, default=None,
                           dest="wal_cap")
    recover_p.add_argument("--seed", type=int, default=0)
    recover_p.add_argument("--memory", type=int, default=4096,
                           help="M (records)")
    recover_p.add_argument("--block", type=int, default=64, help="B (records)")
    recover_p.add_argument(
        "--flight-dump", default=None, dest="flight_dump", metavar="FILE",
        help="render this flight-recorder dump (from an unclean "
        "`repro serve --durable` exit) instead of running the scenario",
    )

    query_p = sub.add_parser(
        "query", help="answer one batch of queries against a fresh index"
    )
    _service_args(query_p, engine_default="lazy")
    query_p.add_argument(
        "--shards", type=int, default=0, metavar="W",
        help="shard the service across W coordinator-driven workers "
        "(lazy engine only; 0 = single machine)",
    )
    query_p.add_argument(
        "--workers", choices=["inproc", "process"], default="inproc",
        help="worker placement for --shards (default inproc)",
    )
    query_p.add_argument(
        "queries", nargs="+", metavar="QUERY",
        help="select:R | quantile:Q | range:LO:HI | part:KEY",
    )

    bench_p = sub.add_parser(
        "bench-queries",
        help="benchmark the online service against offline baselines",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="small instance (N=2^16, 128 queries) for CI smoke runs",
    )
    bench_p.add_argument(
        "--trace", choices=["zipfian", "uniform", "adversarial", "shard-skew"],
        default="zipfian",
    )
    bench_p.add_argument(
        "--shards", type=int, default=0, metavar="W",
        help="benchmark the W-sharded service against the single-machine "
        "engine on the same trace (writes SERVICE_SHARDS.txt)",
    )
    bench_p.add_argument(
        "--workers", choices=["inproc", "process"], default="inproc",
        help="worker placement for --shards (default inproc)",
    )
    bench_p.add_argument("--queries", type=int, default=None)
    bench_p.add_argument("--alpha", type=float, default=1.1,
                         help="zipfian skew exponent")
    bench_p.add_argument("--batch", type=int, default=64,
                         help="frontend flush size")
    bench_p.add_argument("--n", type=int, default=None)
    bench_p.add_argument("--k", type=int, default=None)
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument("--memory", type=int, default=4096, help="M (records)")
    bench_p.add_argument("--block", type=int, default=64, help="B (records)")
    bench_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="record file (default benchmarks/out/SERVICE_QUERIES.txt)",
    )
    bench_p.add_argument(
        "--json", action="store_true",
        help="print the machine-readable result document to stdout "
        "(the text record file is still written)",
    )

    kern_p = sub.add_parser(
        "bench-kernels",
        help="benchmark the kernel backends against each other",
    )
    kern_p.add_argument(
        "--quick", action="store_true",
        help="small instance (2048 blocks) for CI smoke runs",
    )
    kern_p.add_argument("--blocks", type=int, default=8192,
                        help="disk image size in blocks")
    kern_p.add_argument("--buckets", type=int, default=2000,
                        help="distribution fanout for the grouping op")
    kern_p.add_argument("--reps", type=int, default=3,
                        help="repetitions per primitive")
    kern_p.add_argument("--min-speedup", type=float, default=5.0,
                        help="acceptance threshold for vectorized_v2")
    kern_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="record file (default benchmarks/out/KERNEL_BACKEND.txt)",
    )

    args = parser.parse_args(argv)
    if args.command == "budgets" and args.headroom is None:
        from .obs.budget import DEFAULT_HEADROOM

        args.headroom = DEFAULT_HEADROOM
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "budgets":
        return _cmd_budgets(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize-check":
        return _cmd_sanitize_check(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "bench-queries":
        return _cmd_bench_queries(args)
    if args.command == "bench-kernels":
        return _cmd_bench_kernels(args)
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""repro — reproduction of *Finding Approximate Partitions and Splitters in
External Memory* (SPAA 2014).

The package provides:

* :mod:`repro.em` — an instrumented external-memory machine simulator
  (block device with exact I/O counting, enforced memory budget);
* :mod:`repro.alg` — classic EM substrates (external sort, distribution,
  selection, Aggarwal–Vitter multi-partition);
* :mod:`repro.core` — the paper's contributions: L-intermixed selection
  (§4.1), optimal multi-selection (Theorem 4), approximate K-splitters
  (§5.1), approximate K-partitioning (§5.2), the §3 reduction, and the
  linear-I/O memory-splitters routine it builds on;
* :mod:`repro.baselines` — sort-based and pre-paper comparison algorithms;
* :mod:`repro.bounds` — every Table 1 bound as a formula, plus the
  counting arguments behind the lower bounds;
* :mod:`repro.workloads`, :mod:`repro.analysis`, :mod:`repro.experiments`
  — inputs, validators, and the benchmark harness that regenerates the
  paper's results table.

Quickstart
----------
>>> from repro import Machine, load_input, random_permutation
>>> from repro.core import two_sided_splitters
>>> mach = Machine(memory=4096, block=64)
>>> data = load_input(mach, random_permutation(20_000, seed=1))
>>> result = two_sided_splitters(mach, data, k=16, a=500, b=3000)
>>> len(result.splitters)
15
"""

from .em import (
    EMFile,
    IOCounters,
    Machine,
    MemoryBudgetError,
    composite,
    make_records,
    sort_records,
)
from .workloads import load_input, random_permutation, uniform_random

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "EMFile",
    "IOCounters",
    "MemoryBudgetError",
    "make_records",
    "composite",
    "sort_records",
    "load_input",
    "random_permutation",
    "uniform_random",
    "__version__",
]

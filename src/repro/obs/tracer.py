"""Hierarchical span tracing for the EM simulator.

A :class:`Tracer` attaches to one or more
:class:`~repro.em.machine.Machine` instances (directly with
:meth:`Tracer.attach`, or to every machine built inside a ``with
tracer.install():`` body via the
:func:`~repro.em.machine.observe_machines` hook) and records a **tree of
spans** — one per :meth:`Disk.phase <repro.em.disk.Disk.phase>` /
``Machine.measure(label)`` entry — through the observer callbacks of the
em layer.  Each span carries:

* ``reads`` / ``writes`` / ``comparisons`` — **exclusive** (self) costs:
  model charges attributed to this span while no child span was open.
  Summing the exclusive costs over a whole trace therefore reproduces
  the machine's lifetime counters *exactly* (the differential tests
  assert this); inclusive rollups are the ``cum_*`` properties.
* ``mem_peak`` / ``blocks_peak`` — high-water marks of leased memory
  records and live disk blocks while the span was open (inclusive of
  children: peaks are maxima, so no double counting arises).
* ``depth`` — recursion depth (root = 0), and ``wall_s`` — inclusive
  wall-clock time.

The paper's claims are Θ-shapes in block I/Os, so this attribution —
*where* a composed algorithm (Theorem 4's multi-selection recursion, the
§3 reduction's approx/sweep split) pays its transfers — is the
reproduction's core observability primitive.  Exporters for the
recorded trees (Perfetto/Chrome JSON, text tree, plain dicts) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..em.errors import CounterConservationError
from ..em.machine import observe_machines

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["Span", "MachineTrace", "Tracer"]

#: Display name of the implicit root span (I/O outside any phase).
ROOT_NAME = "(machine)"


@dataclass
class Span:
    """One node of a trace tree: a ``phase()`` activation.

    ``reads``/``writes``/``comparisons`` are exclusive; see the module
    docstring for the exact semantics of every field.
    """

    name: str
    path: str
    depth: int
    t_start: float = 0.0
    wall_s: float = 0.0
    reads: int = 0
    writes: int = 0
    comparisons: int = 0
    mem_peak: int = 0
    blocks_peak: int = 0
    children: list["Span"] = field(default_factory=list)

    @property
    def io(self) -> int:
        """Exclusive I/Os (reads + writes charged directly to this span)."""
        return self.reads + self.writes

    @property
    def cum_reads(self) -> int:
        """Inclusive reads: self plus all descendants."""
        return self.reads + sum(c.cum_reads for c in self.children)

    @property
    def cum_writes(self) -> int:
        """Inclusive writes: self plus all descendants."""
        return self.writes + sum(c.cum_writes for c in self.children)

    @property
    def cum_io(self) -> int:
        """Inclusive I/Os: self plus all descendants."""
        return self.cum_reads + self.cum_writes

    @property
    def cum_comparisons(self) -> int:
        """Inclusive comparisons: self plus all descendants."""
        return self.comparisons + sum(c.cum_comparisons for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Plain JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "wall_s": round(self.wall_s, 6),
            "reads": self.reads,
            "writes": self.writes,
            "comparisons": self.comparisons,
            "mem_peak": self.mem_peak,
            "blocks_peak": self.blocks_peak,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            path=d["path"],
            depth=int(d["depth"]),
            wall_s=float(d["wall_s"]),
            reads=int(d["reads"]),
            writes=int(d["writes"]),
            comparisons=int(d["comparisons"]),
            mem_peak=int(d["mem_peak"]),
            blocks_peak=int(d["blocks_peak"]),
            children=[cls.from_dict(c) for c in d.get("children", [])],
        )


class MachineTrace:
    """The span tree recorded for one machine.

    Implements every em-layer observer protocol (disk, accountant,
    machine); a :class:`Tracer` wires one of these to each machine it
    attaches to.  ``root`` is the implicit depth-0 span that absorbs
    activity outside any phase.
    """

    def __init__(self, machine: "Machine", index: int) -> None:
        self.index = index
        self.M = machine.M
        self.B = machine.B
        self.kernel = machine.kernel.name
        self.label = machine.label
        # Lifetime-counter baseline for the conservation check: the
        # exclusive span counts recorded between attach and detach must
        # sum exactly to the machine's lifetime deltas over the same
        # window (lifetime counters survive reset_counters, so the
        # identity holds across measurement-window resets too).
        self._base_reads = machine.disk.lifetime.reads
        self._base_writes = machine.disk.lifetime.writes
        self._base_comparisons = machine.lifetime_comparisons
        now = time.perf_counter()
        self.root = Span(
            name=ROOT_NAME,
            path="",
            depth=0,
            t_start=now,
            mem_peak=machine.memory.in_use,
            blocks_peak=machine.disk.live_blocks,
        )
        self._stack: list[Span] = [self.root]
        self._machine = machine
        self._finalized = False

    # -- disk observer protocol ----------------------------------------
    def on_phase_push(self, label: str, path: str) -> None:
        parent = self._stack[-1]
        span = Span(
            name=label,
            path=path,
            depth=len(self._stack),
            t_start=time.perf_counter(),
            mem_peak=self._machine.memory.in_use,
            blocks_peak=self._machine.disk.live_blocks,
        )
        parent.children.append(span)
        self._stack.append(span)

    def on_phase_pop(self, label: str, path: str) -> None:
        # Guard against pops of phases entered before this trace
        # attached (attach-mid-phase): only close spans we opened.
        if len(self._stack) > 1 and self._stack[-1].name == label:
            self._close(self._stack.pop())

    def on_io(self, read: bool, count: int) -> None:
        span = self._stack[-1]
        if read:
            span.reads += count
        else:
            span.writes += count

    def on_blocks(self, live: int) -> None:
        span = self._stack[-1]
        if live > span.blocks_peak:
            span.blocks_peak = live

    # -- accountant observer protocol ----------------------------------
    def on_memory(self, in_use: int) -> None:
        span = self._stack[-1]
        if in_use > span.mem_peak:
            span.mem_peak = in_use

    # -- machine observer protocol -------------------------------------
    def on_comparisons(self, count: int) -> None:
        self._stack[-1].comparisons += count

    # -- lifecycle -----------------------------------------------------
    def _close(self, span: Span) -> None:
        span.wall_s = time.perf_counter() - span.t_start
        parent = self._stack[-1]
        if span.mem_peak > parent.mem_peak:
            parent.mem_peak = span.mem_peak
        if span.blocks_peak > parent.blocks_peak:
            parent.blocks_peak = span.blocks_peak

    def finalize(self) -> None:
        """Close any still-open spans (idempotent); called on detach."""
        if self._finalized:
            return
        while len(self._stack) > 1:
            self._close(self._stack.pop())
        self.root.wall_s = time.perf_counter() - self.root.t_start
        self._finalized = True

    def conservation_error(self) -> str | None:
        """Check span-tree/lifetime counter conservation.

        Returns ``None`` when the root span's inclusive reads, writes,
        and comparisons equal the machine's lifetime-counter deltas
        since attach, else a human-readable description of the drift.
        Every model charge flows through the same observer callbacks
        that build the tree, so any mismatch means a charge bypassed
        the hooks (or a span was mutated behind the tracer's back).
        """
        deltas = (
            self._machine.disk.lifetime.reads - self._base_reads,
            self._machine.disk.lifetime.writes - self._base_writes,
            self._machine.lifetime_comparisons - self._base_comparisons,
        )
        recorded = (
            self.root.cum_reads,
            self.root.cum_writes,
            self.root.cum_comparisons,
        )
        if recorded == deltas:
            return None
        drifts = [
            f"{name}: span tree has {got}, lifetime counters advanced {want}"
            for name, got, want in zip(
                ("reads", "writes", "comparisons"), recorded, deltas
            )
            if got != want
        ]
        return (
            f"span-tree counts diverge from machine #{self.index} "
            f"lifetime counters — " + "; ".join(drifts)
        )

    def to_dict(self) -> dict:
        """Plain JSON-serializable form of the whole trace."""
        return {
            "machine": self.index,
            "label": self.label,
            "M": self.M,
            "B": self.B,
            "kernel": self.kernel,
            "root": self.root.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = f"#{self.index}" + (f" {self.label!r}" if self.label else "")
        return (
            f"MachineTrace({name}, M={self.M}, B={self.B}, "
            f"kernel={self.kernel}, "
            f"io={self.root.cum_io}, spans={sum(1 for _ in self.root.walk())})"
        )


class Tracer:
    """Records span trees for every machine it is attached to.

    Two attachment modes::

        tracer = Tracer()
        trace = tracer.attach(machine)          # one existing machine
        ...
        tracer.detach(machine)                  # stop recording

        with Tracer().install() as tracer:      # every machine built
            result = run_experiment()           # inside the body
        for trace in tracer.traces: ...

    ``install()`` composes with other :func:`observe_machines` contexts
    (the hook is reentrant), so the experiment runner can both collect
    machines and trace them.
    """

    def __init__(self) -> None:
        self.traces: list[MachineTrace] = []
        self._live: dict[int, tuple["Machine", MachineTrace]] = {}

    def attach(self, machine: "Machine") -> MachineTrace:
        """Start recording ``machine``; returns its (live) trace.

        Attach with the machine idle (no open phases): spans are only
        recorded for phases entered after attachment.
        """
        if id(machine) in self._live:
            raise ValueError("tracer already attached to this machine")
        trace = MachineTrace(machine, len(self.traces))
        self.traces.append(trace)
        self._live[id(machine)] = (machine, trace)
        machine.disk.add_observer(trace)
        machine.memory.add_observer(trace)
        machine.add_observer(trace)
        return trace

    def detach(self, machine: "Machine") -> MachineTrace:
        """Stop recording ``machine`` and finalize its trace.

        When the machine runs in sanitize mode, detaching additionally
        verifies counter conservation — the span tree's exclusive counts
        must sum exactly to the machine's lifetime-counter deltas since
        attach — and raises
        :class:`~repro.em.errors.CounterConservationError` on drift.
        """
        try:
            _, trace = self._live.pop(id(machine))
        except KeyError:
            raise ValueError("tracer is not attached to this machine") from None
        machine.disk.remove_observer(trace)
        machine.memory.remove_observer(trace)
        machine.remove_observer(trace)
        trace.finalize()
        if machine.sanitize:
            drift = trace.conservation_error()
            if drift is not None:
                raise CounterConservationError(drift)
        return trace

    @contextmanager
    def install(self) -> Iterator["Tracer"]:
        """Attach to every :class:`Machine` constructed in the body.

        On exit, every trace started in the body is detached and
        finalized (open spans closed), so the recorded trees are
        complete and safe to export.
        """
        before = set(self._live)
        with observe_machines(lambda m: self.attach(m)):
            try:
                yield self
            finally:
                started = [
                    machine
                    for key, (machine, _) in list(self._live.items())
                    if key not in before
                ]
                for machine in started:
                    self.detach(machine)

"""Observability for the EM simulator: span tracing, trace export, and
the I/O-budget regression gate.

The paper's claims are Θ-shapes in block I/Os; this subpackage provides
the attribution layer — a hierarchical :class:`Tracer` recording
per-phase span trees (reads, writes, comparisons, memory/disk peaks,
wall time), exporters (Perfetto/Chrome trace JSON, text tree,
plain dicts), and a constant-factor budget gate that fails CI when an
algorithm's measured I/O count drifts above its committed envelope.
"""

from .budget import (
    BudgetCheck,
    check_budgets,
    default_budgets_path,
    render_budget_report,
    write_budgets,
)
from .export import (
    chrome_trace,
    render_span_tree,
    span_rollup,
    traces_to_dict,
    write_chrome_trace,
)
from .solvers import SOLVERS, Solver, build_instance, run_solver
from .tracer import MachineTrace, Span, Tracer

__all__ = [
    "Tracer",
    "MachineTrace",
    "Span",
    "chrome_trace",
    "write_chrome_trace",
    "render_span_tree",
    "span_rollup",
    "traces_to_dict",
    "Solver",
    "SOLVERS",
    "build_instance",
    "run_solver",
    "BudgetCheck",
    "check_budgets",
    "render_budget_report",
    "write_budgets",
    "default_budgets_path",
]

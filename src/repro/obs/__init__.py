"""Observability for the EM simulator: span tracing, trace export,
service telemetry, and the I/O-budget regression gate.

The paper's claims are Θ-shapes in block I/Os; this subpackage provides
the attribution layer — a hierarchical :class:`Tracer` recording
per-phase span trees (reads, writes, comparisons, memory/disk peaks,
wall time), exporters (Perfetto/Chrome trace JSON, text tree,
plain dicts), a deterministic metrics registry
(:class:`MetricsRegistry`: counters, gauges, per-query I/O histograms
with fixed log-spaced buckets) plus a bounded :class:`FlightRecorder`
of structured service events that survives to a dump on crash, and a
constant-factor budget gate that fails CI when an algorithm's measured
I/O count drifts above its committed envelope.
"""

from .budget import (
    BudgetCheck,
    check_budgets,
    default_budgets_path,
    render_budget_report,
    write_budgets,
)
from .export import (
    chrome_trace,
    render_span_tree,
    span_rollup,
    traces_to_dict,
    write_chrome_trace,
)
from .metrics import (
    DEFAULT_IO_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    current_registry,
    metrics_scope,
)
from .recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    current_recorder,
    flight_scope,
    load_flight_dump,
    render_flight_events,
)
from .solvers import SOLVERS, Solver, build_instance, run_solver
from .tracer import MachineTrace, Span, Tracer

__all__ = [
    "Tracer",
    "MachineTrace",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_IO_BUCKETS",
    "current_registry",
    "metrics_scope",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "flight_scope",
    "load_flight_dump",
    "render_flight_events",
    "chrome_trace",
    "write_chrome_trace",
    "render_span_tree",
    "span_rollup",
    "traces_to_dict",
    "Solver",
    "SOLVERS",
    "build_instance",
    "run_solver",
    "BudgetCheck",
    "check_budgets",
    "render_budget_report",
    "write_budgets",
    "default_budgets_path",
]

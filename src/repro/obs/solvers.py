"""Registry of traceable/budgeted solvers.

One place that knows, for each headline algorithm, (a) how to run it on
a generated workload, (b) the paper's Θ-shape for its I/O cost from
:mod:`repro.bounds.formulas`, and (c) a deterministic reference point
``(N, K, a, M, B, seed)``.  Both observability features build on it:

* ``repro trace <solver>`` runs one entry under a
  :class:`~repro.obs.tracer.Tracer` and exports the span tree;
* the I/O-budget gate (:mod:`repro.obs.budget`) replays every entry at
  its reference point and checks the measured I/O count against a
  committed constant-factor envelope of the Θ-shape.

Workloads come from :func:`repro.workloads.generators.random_permutation`
with a fixed seed and every algorithm here is deterministic given its
seed, so measured I/O counts are bit-for-bit reproducible — exact
equality regressions, not tolerances, are what the budget gate relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..bounds.formulas import (
    multiselect_io,
    online_trace_io,
    partition_left_bound,
    partition_right_upper,
    scan_io,
    service_index_io,
    service_recovery_io,
    sharded_service_io,
    sort_io,
    splitters_right_bound,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..em.file import EMFile
    from ..em.machine import Machine

__all__ = ["Solver", "SOLVERS", "build_instance", "run_solver"]


@dataclass(frozen=True)
class Solver:
    """A registered solver: how to run it and what its cost should be.

    ``run(machine, file, params)`` executes the algorithm (freeing any
    output files it creates) and returns a one-line outcome string;
    ``formula(params)`` evaluates the paper's Θ-shape at a parameter
    point (same dict shape as ``defaults``).
    """

    name: str
    title: str
    defaults: dict
    formula: Callable[[dict], float]
    formula_name: str
    run: Callable[["Machine", "EMFile", dict], str]


def _ranks(n: int, k: int) -> np.ndarray:
    return np.linspace(1, n, k).astype(np.int64)


def _run_sort(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..alg.sort import external_sort

    out = external_sort(machine, file)
    n = len(out)
    out.free()
    return f"sorted {n} records"


def _run_multiselect(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..core import multi_select

    answers = multi_select(machine, file, _ranks(p["n"], p["k"]))
    return f"selected {len(answers)} ranks"


def _run_splitters(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..core import right_grounded_splitters

    res = right_grounded_splitters(machine, file, p["k"], p["a"])
    return f"{len(res.splitters)} splitters ({res.variant})"


def _run_partition(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..core import approximate_partition

    pf = approximate_partition(machine, file, p["k"], p["a"], p["n"])
    sizes = pf.partition_sizes
    pf.free()
    return f"{len(sizes)} partitions, sizes in [{min(sizes)}, {max(sizes)}]"


def _run_reduction(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..core import precise_partition_via_approx

    pf = precise_partition_via_approx(machine, file, p["part_size"])
    parts = pf.num_partitions
    pf.free()
    return f"{parts} precise partitions of {p['part_size']}"


def _run_service_online(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..service import LazyPartitionIndex, Query, QueryFrontend
    from ..workloads.queries import zipfian_trace

    trace = zipfian_trace(p["queries"], p["n"], seed=p["seed"], alpha=1.1)
    with LazyPartitionIndex(machine, file, k=p["k"]) as engine:
        frontend = QueryFrontend(machine, engine)
        frontend.run([Query.select(int(r)) for r in trace], batch=64)
        refinements = engine.stats["refinements"]
    return (
        f"{p['queries']} queries, {refinements} refinements, "
        f"{frontend.amortized_io:.1f} I/Os/query"
    )


def _run_service_sharded(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..service import Query, QueryFrontend
    from ..shard import build_sharded_service
    from ..workloads.queries import zipfian_trace

    trace = zipfian_trace(p["queries"], p["n"], seed=p["seed"], alpha=1.1)
    with build_sharded_service(
        machine, file, shards=p["shards"], k=p["k"]
    ) as router:
        frontend = QueryFrontend(machine, router)
        frontend.run([Query.select(int(r)) for r in trace], batch=64)
        sizes = router.shard_sizes
    return (
        f"{p['shards']} shards (sizes {int(sizes.min())}..{int(sizes.max())}), "
        f"{p['queries']} queries, {frontend.amortized_io:.1f} I/Os/query"
    )


def _run_service_index(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..service import PartitionIndex
    from ..workloads.queries import uniform_trace

    q = p["queries"]
    trace = uniform_trace(q, p["n"], seed=p["seed"])
    with PartitionIndex.build(machine, file, p["k"]) as index:
        index.batch_select(trace[: q // 2])
        index.append((trace[: q // 4] * 3) % p["n"])
        for key in np.unique(trace[: q // 8] % p["n"]):
            index.delete(int(key))
        index.flush_updates()
        index.batch_select((trace[q // 2 :] % index.n_live) + 1)
        parts = index.num_partitions
        stats = dict(index.stats)
    return (
        f"{parts} partitions after {q} queries + {q // 4 + q // 8} updates "
        f"({stats['splits']} splits, {stats['merges']} merges)"
    )


def _run_service_recovery(machine: "Machine", file: "EMFile", p: dict) -> str:
    from ..service import DurablePartitionIndex, recover
    from ..workloads.generators import random_permutation
    from ..workloads.queries import update_batches, zipfian_trace

    # snapshot_every=3 with 8 flush groups leaves two committed groups
    # in the WAL past the last snapshot, so recovery exercises replay.
    index = DurablePartitionIndex.build_durable(
        machine, file, p["k"], snapshot_every=3
    )
    # The staged input is a seeded permutation of 0..n-1; regenerate it
    # (free CPU, zero I/O) to drive a live-key-aware update plan.
    keys = random_permutation(p["n"], seed=p["seed"])["key"]
    n_batches = max(1, p["updates"] // 64)
    plan = update_batches(keys, n_batches, 48, 16, seed=p["seed"])
    for batch in plan:
        for op in batch:
            if op[0] == "append":
                index.append(op[1])
            else:
                index.delete(op[1])
        index.flush_updates()
    manifest = index.manifest_block
    index.abandon()  # simulated crash: memory gone, disk survives
    # The envelope prices *recovery* (manifest + snapshot + WAL replay +
    # re-snapshot) plus the verification trace, not the crashed run.
    machine.reset_counters()
    recovered = recover(machine, manifest)
    trace = zipfian_trace(p["queries"], recovered.n_live, seed=p["seed"])
    recovered.batch_select(trace)
    groups = recovered.applied_seq
    n_live = recovered.n_live
    recovered.abandon()
    return (
        f"recovered {groups} committed groups, {n_live} live records, "
        f"{p['queries']} verification queries"
    )


def _reduction_formula(p: dict) -> float:
    # Approx (left-grounded) partition plus the §3 sweep's O(N/B).
    n, b = p["n"], p["part_size"]
    return partition_left_bound(
        n, -(-n // b), b, p["memory"], p["block"]
    ) + scan_io(n, p["block"])


#: name -> Solver.  Reference points use the wide machine (M=4096,
#: B=64) and sizes small enough that replaying every entry takes
#: seconds, but large enough that each algorithm leaves its base case.
SOLVERS: dict[str, Solver] = {
    s.name: s
    for s in [
        Solver(
            name="sort",
            title="external merge sort (the §1.2 baseline)",
            defaults=dict(n=20_000, k=0, a=0, part_size=0,
                          memory=4096, block=64, seed=0),
            formula=lambda p: sort_io(p["n"], p["memory"], p["block"]),
            formula_name="sort_io",
            run=_run_sort,
        ),
        Solver(
            name="multiselect",
            title="multi-selection (Theorem 4)",
            defaults=dict(n=20_000, k=64, a=0, part_size=0,
                          memory=4096, block=64, seed=0),
            formula=lambda p: multiselect_io(
                p["n"], p["k"], p["memory"], p["block"]
            ),
            formula_name="multiselect_io",
            run=_run_multiselect,
        ),
        Solver(
            name="splitters",
            title="right-grounded approximate K-splitters (Theorem 5)",
            defaults=dict(n=40_000, k=64, a=32, part_size=0,
                          memory=4096, block=64, seed=0),
            formula=lambda p: splitters_right_bound(
                p["n"], p["k"], p["a"], p["memory"], p["block"]
            ),
            formula_name="splitters_right_bound",
            run=_run_splitters,
        ),
        Solver(
            name="partition",
            title="right-grounded approximate K-partitioning (Theorem 6)",
            defaults=dict(n=20_000, k=16, a=128, part_size=0,
                          memory=4096, block=64, seed=0),
            formula=lambda p: partition_right_upper(
                p["n"], p["k"], p["a"], p["memory"], p["block"]
            ),
            formula_name="partition_right_upper",
            run=_run_partition,
        ),
        Solver(
            name="reduction",
            title="precise partitioning via approximate (§3 reduction)",
            defaults=dict(n=20_000, k=0, a=0, part_size=500,
                          memory=4096, block=64, seed=0),
            formula=_reduction_formula,
            formula_name="partition_left_bound + scan_io",
            run=_run_reduction,
        ),
        # The acceptance point of the online partition service: the full
        # zipfian(1.1) trace of ISSUE 4 (N=2^20, K=256, 512 queries).
        # The envelope pins the engine's total I/O to ~3x the lazy-trace
        # cost model — two orders of magnitude below the per-query
        # offline multi_select baseline at the same point.
        Solver(
            name="service-online",
            title="lazy online partition service (zipfian trace)",
            defaults=dict(n=2**20, k=256, a=0, part_size=0, queries=512,
                          memory=4096, block=64, seed=0),
            formula=lambda p: online_trace_io(
                p["n"], p["k"], p["queries"], p["memory"], p["block"]
            ),
            formula_name="online_trace_io",
            run=_run_service_online,
        ),
        # The sharded coordinator (ISSUE 9): split across W workers by
        # sampled splitters, answer the zipfian trace through the
        # router.  The envelope prices the *coordinator's* counters —
        # sampling + distribution scans, the charged sends of every
        # record, and the per-flush request/reply communication; the
        # workers' engine I/O lives on their own machines (checked by
        # the conservation tests, not this gate).
        Solver(
            name="service-sharded",
            title="sharded partition service, coordinator + communication",
            defaults=dict(n=2**17, k=128, a=0, part_size=0, queries=256,
                          shards=4, memory=4096, block=64, seed=0),
            formula=lambda p: sharded_service_io(
                p["n"], p["k"], p["queries"], p["shards"],
                p["memory"], p["block"],
            ),
            formula_name="sharded_service_io",
            run=_run_service_sharded,
        ),
        Solver(
            name="service-index",
            title="eager partition index (build + queries + updates)",
            defaults=dict(n=65_536, k=64, a=0, part_size=0, queries=64,
                          memory=4096, block=64, seed=0),
            formula=lambda p: service_index_io(
                p["n"], p["k"], p["queries"], p["memory"], p["block"]
            ),
            formula_name="service_index_io",
            run=_run_service_index,
        ),
        # Crash recovery of the durable service (ISSUE 6): build, apply
        # an interleaved update plan, crash, then measure recover() plus
        # a verification trace against the recovery cost model.
        Solver(
            name="service-recovery",
            title="durable service crash recovery (WAL replay + queries)",
            defaults=dict(n=32_768, k=32, a=0, part_size=0, queries=128,
                          updates=512, memory=4096, block=64, seed=0),
            formula=lambda p: service_recovery_io(
                p["n"], p["k"], p["updates"], p["queries"],
                p["memory"], p["block"],
            ),
            formula_name="service_recovery_io",
            run=_run_service_recovery,
        ),
    ]
}


def build_instance(name: str, overrides: dict | None = None):
    """Build ``(solver, machine, file, params)`` for a registry entry.

    ``overrides`` replaces individual default parameters (CLI flags).
    The input is staged uncounted, and counters are reset, so the
    machine's counters afterwards measure exactly the solver's work.
    """
    from ..em.machine import Machine
    from ..workloads.generators import load_input, random_permutation

    solver = SOLVERS[name]
    params = dict(solver.defaults)
    if overrides:
        unknown = set(overrides) - set(params)
        if unknown:
            raise KeyError(f"unknown solver parameters: {sorted(unknown)}")
        params.update({k: v for k, v in overrides.items() if v is not None})
    machine = Machine(memory=params["memory"], block=params["block"])
    records = random_permutation(params["n"], seed=params["seed"])
    file = load_input(machine, records)
    machine.reset_counters()
    return solver, machine, file, params


def run_solver(name: str, overrides: dict | None = None):
    """Run a registry entry at a parameter point; returns a result dict.

    Keys: ``outcome`` (display string), ``io``/``reads``/``writes``/
    ``comparisons`` (measured), ``bound`` (the Θ-shape at this point),
    ``ratio`` (measured/bound) and ``params``.
    """
    solver, machine, file, params = build_instance(name, overrides)
    try:
        outcome = solver.run(machine, file, params)
    finally:
        file.free()
    bound = solver.formula(params)
    io = machine.io.total
    return {
        "solver": name,
        "outcome": outcome,
        "io": io,
        "reads": machine.io.reads,
        "writes": machine.io.writes,
        "comparisons": machine.comparisons,
        "bound": bound,
        "ratio": io / bound if bound else float("inf"),
        "params": params,
    }

"""The I/O-budget regression gate.

``benchmarks/budgets.json`` commits, for every solver in
:data:`repro.obs.solvers.SOLVERS`, a **constant-factor envelope** ``c``
against the paper's Θ-shape: at the solver's reference parameter point,
the measured I/O count must satisfy ``measured ≤ c · formula(point)``.
The Θ-constants themselves are unknowable, so ``c`` is calibrated from
the current implementation (measured ratio × a small headroom) — the
gate therefore does not validate the theory (the experiments do that);
it stops a future change from silently bloating a hot path's constant
factor.  ``repro report --check-budgets`` (and the CI budget job) fail
loudly when any envelope is exceeded.

Regenerate envelopes after an *intentional* cost change with
``repro budgets --write`` and commit the diff — the diff itself then
documents the regression you accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..analysis.report import render_table
from .solvers import SOLVERS, run_solver

__all__ = [
    "BUDGETS_SCHEMA_VERSION",
    "BudgetCheck",
    "default_budgets_path",
    "check_budgets",
    "render_budget_report",
    "write_budgets",
]

BUDGETS_SCHEMA_VERSION = 1

#: Headroom multiplier applied to the measured ratio when writing
#: envelopes: loose enough to absorb refactors that shuffle a few I/Os,
#: tight enough that a ~10% bloat of a hot path trips the gate.
DEFAULT_HEADROOM = 1.08


@dataclass(frozen=True)
class BudgetCheck:
    """Outcome of checking one solver against its envelope."""

    solver: str
    formula: str
    measured: int
    bound: float
    ratio: float
    envelope: float
    ok: bool

    @property
    def limit(self) -> float:
        """The gate's threshold in I/Os: ``envelope · bound``."""
        return self.envelope * self.bound


def default_budgets_path() -> Path:
    """``benchmarks/budgets.json`` of the repository checkout when
    recognizable, else relative to the current directory."""
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "budgets.json"
    return Path("benchmarks") / "budgets.json"


def _load(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if doc.get("schema") != BUDGETS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported budgets schema {doc.get('schema')!r} "
            f"(expected {BUDGETS_SCHEMA_VERSION})"
        )
    return doc


def check_budgets(path: str | Path | None = None) -> list[BudgetCheck]:
    """Replay every budgeted solver and check it against its envelope.

    Unknown solver names in the file raise (a renamed algorithm must
    update its budget, not silently skip the gate); solvers missing
    from the file are reported as failures with envelope 0 — adding an
    algorithm to the registry without committing a budget fails loudly
    too.
    """
    budgets_path = Path(path) if path is not None else default_budgets_path()
    doc = _load(budgets_path)
    entries = doc["budgets"]
    unknown = set(entries) - set(SOLVERS)
    if unknown:
        raise KeyError(
            f"{budgets_path} budgets unknown solvers: {sorted(unknown)}"
        )
    checks: list[BudgetCheck] = []
    for name in SOLVERS:
        entry = entries.get(name)
        if entry is None:
            checks.append(
                BudgetCheck(
                    solver=name, formula=SOLVERS[name].formula_name,
                    measured=0, bound=0.0, ratio=float("inf"),
                    envelope=0.0, ok=False,
                )
            )
            continue
        run = run_solver(name, entry.get("point"))
        envelope = float(entry["envelope"])
        checks.append(
            BudgetCheck(
                solver=name,
                formula=entry.get("formula", SOLVERS[name].formula_name),
                measured=run["io"],
                bound=run["bound"],
                ratio=run["ratio"],
                envelope=envelope,
                ok=run["io"] <= envelope * run["bound"],
            )
        )
    return checks


def render_budget_report(checks: list[BudgetCheck]) -> str:
    """Render gate results as a table plus a one-line verdict."""
    rows = [
        (
            c.solver, c.formula, c.measured, f"{c.bound:.1f}",
            f"{c.ratio:.3f}", f"{c.envelope:.3f}", f"{c.limit:.0f}",
            "PASS" if c.ok else "FAIL",
        )
        for c in checks
    ]
    table = render_table(
        ["solver", "formula", "io", "bound", "ratio", "envelope",
         "limit", "verdict"],
        rows,
        title="I/O-budget gate (measured <= envelope * theory shape)",
    )
    ok = all(c.ok for c in checks)
    verdict = (
        "budget gate: PASS"
        if ok
        else "budget gate: FAIL — an algorithm exceeds its committed "
        "I/O envelope (regenerate intentionally with `repro budgets "
        "--write` and commit the diff)"
    )
    return f"{table}\n{verdict}"


def write_budgets(
    path: str | Path | None = None, headroom: float = DEFAULT_HEADROOM
) -> Path:
    """Measure every registered solver and (re)write the budgets file.

    Each entry commits the solver's reference point, the formula name,
    the measured I/O count at write time, and the envelope
    ``ratio × headroom`` (rounded up to 3 decimals).
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    budgets_path = Path(path) if path is not None else default_budgets_path()
    entries = {}
    for name, solver in SOLVERS.items():
        run = run_solver(name)
        entries[name] = {
            "title": solver.title,
            "formula": solver.formula_name,
            "point": {
                k: v for k, v in solver.defaults.items() if v
            },
            "measured": run["io"],
            "bound": round(run["bound"], 3),
            "ratio": round(run["ratio"], 6),
            "envelope": _ceil3(run["ratio"] * headroom),
        }
    doc = {
        "schema": BUDGETS_SCHEMA_VERSION,
        "description": (
            "Per-algorithm constant-factor I/O envelopes against the "
            "theory formulas of repro.bounds.formulas, measured at the "
            "committed reference points (see repro.obs.budget)."
        ),
        "headroom": headroom,
        "budgets": entries,
    }
    budgets_path.parent.mkdir(parents=True, exist_ok=True)
    budgets_path.write_text(json.dumps(doc, indent=2) + "\n")
    return budgets_path


def _ceil3(value: float) -> float:
    """Round up to 3 decimals (envelopes must never round below the
    measured ratio)."""
    import math

    return math.ceil(value * 1000) / 1000

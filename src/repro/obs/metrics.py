"""Deterministic metrics layer for the partition service.

Three instrument kinds — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` — are grouped into labeled :class:`MetricFamily`
collections owned by a :class:`MetricsRegistry`.  The design goals are
the same as the tracer's (:mod:`repro.obs.tracer`):

* **Zero model cost.**  All bookkeeping is plain-Python arithmetic on
  values the instrumented code already holds (lifetime counters, stats
  dict deltas).  Nothing here touches :class:`~repro.em.disk.Disk` or
  the accountant, so emlint/sanitizer guarantees and every existing EM
  counter are unchanged — the differential tests assert byte- and
  counter-identity with metrics enabled vs. the no-op registry.
* **Determinism.**  Histograms use fixed bucket bounds (log-spaced over
  simulated-I/O cost by default) and *nearest-rank* quantiles computed
  from exact per-bucket counts, minima, maxima, and sums — no sampling,
  no wall-clock, no randomness.  The same workload always produces the
  same ``to_dict()`` payload, so benchmark outputs are reproducible and
  diffable.
* **Ambient wiring.**  Service objects resolve the active registry via
  :func:`current_registry` at construction time; outside a
  :func:`metrics_scope` block this yields the no-op
  :data:`NULL_REGISTRY`, so instrumentation costs nothing (a handful of
  no-op method calls) when telemetry is off.

Exports: :meth:`MetricsRegistry.to_dict` (JSON),
:meth:`MetricsRegistry.to_prometheus` (classic text exposition), and
:meth:`MetricsRegistry.render` (aligned table for the CLI).
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from math import ceil, inf
from typing import Iterator, Mapping, Sequence

__all__ = [
    "DEFAULT_IO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "current_registry",
    "metrics_scope",
]

#: Default histogram bounds: 0 plus powers of two up to 2^20 — log-spaced
#: over simulated-I/O cost (block transfers), wide enough for every
#: workload the benchmarks run.  Values above the last bound land in the
#: implicit overflow bucket.
DEFAULT_IO_BUCKETS: tuple[float, ...] = (
    0.0,
    *(float(1 << e) for e in range(21)),
)


class Counter:
    """A monotonically non-decreasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    def to_dict(self) -> dict:
        return {"value": _num(self._value)}


class Gauge:
    """A value that can go up and down (queue depths, drift, epochs)."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def to_dict(self) -> dict:
        return {"value": _num(self._value)}


class Histogram:
    """Fixed-bucket histogram with deterministic quantile estimates.

    ``buckets`` are the upper bounds (``le`` style: a value lands in the
    first bucket whose bound is ≥ it); an implicit overflow bucket
    catches values above the last bound.  Per bucket the histogram keeps
    the exact count, sum, minimum, and maximum, which makes
    :meth:`quantile` *exact* whenever the requested rank falls on a
    bucket holding a single distinct value (boundary values, single
    samples, constant buckets) and a linear interpolation between the
    bucket's observed min and max otherwise — never an extrapolation
    past data actually seen.
    """

    kind = "histogram"

    __slots__ = ("bounds", "_counts", "_sums", "_los", "_his")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(
            float(b) for b in (DEFAULT_IO_BUCKETS if buckets is None else buckets)
        )
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        n = len(bounds) + 1  # + overflow bucket
        self._counts = [0] * n
        self._sums = [0.0] * n
        self._los = [inf] * n
        self._his = [-inf] * n

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return sum(self._sums)

    @property
    def min(self) -> float:
        lo = min(self._los)
        return 0.0 if lo == inf else lo

    @property
    def max(self) -> float:
        hi = max(self._his)
        return 0.0 if hi == -inf else hi

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count < 0:
            raise ValueError("observation count must be >= 0")
        if count == 0:
            return
        value = float(value)
        i = bisect_left(self.bounds, value)  # first bound >= value
        self._counts[i] += count
        self._sums[i] += value * count
        if value < self._los[i]:
            self._los[i] = value
        if value > self._his[i]:
            self._his[i] = value

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile with in-bucket interpolation.

        Exact at bucket boundaries, for single samples, and for buckets
        holding one distinct value; otherwise linear between the
        bucket's observed min and max.  Empty histogram -> 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        total = self.count
        if total == 0:
            return 0.0
        rank = max(1, ceil(q * total))  # 1-based nearest rank
        seen = 0
        for i, k in enumerate(self._counts):
            if k == 0:
                continue
            if rank <= seen + k:
                lo, hi = self._los[i], self._his[i]
                if k == 1 or lo == hi:
                    return lo
                pos = rank - seen  # 1..k within this bucket
                return lo + (hi - lo) * (pos - 1) / (k - 1)
            seen += k
        return self.max  # pragma: no cover - rank <= total always hits

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms (same bounds) into a new one.

        Counts and sums add; minima and maxima combine by min/max — all
        associative and commutative, so merging is order-independent
        (the merge-associativity tests assert this).
        """
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        out = Histogram(self.bounds)
        for i in range(len(self._counts)):
            out._counts[i] = self._counts[i] + other._counts[i]
            out._sums[i] = self._sums[i] + other._sums[i]
            out._los[i] = min(self._los[i], other._los[i])
            out._his[i] = max(self._his[i], other._his[i])
        return out

    def to_dict(self) -> dict:
        filled = {
            ("+Inf" if i == len(self.bounds) else _num(self.bounds[i])): c
            for i, c in enumerate(self._counts)
            if c
        }
        return {
            "count": self.count,
            "sum": _num(self.sum),
            "min": _num(self.min),
            "max": _num(self.max),
            "p50": _num(self.quantile(0.50)),
            "p95": _num(self.quantile(0.95)),
            "p99": _num(self.quantile(0.99)),
            "buckets": filled,
        }


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labels: object):
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets)
            self._children[key] = child
        return child

    def to_dict(self) -> dict:
        children = {
            ",".join(f"{n}={v}" for n, v in zip(self.label_names, key)): c.to_dict()
            for key, c in sorted(self._children.items())
        }
        if self.label_names:
            return {"kind": self.kind, "help": self.help, "children": children}
        body = children.get("", {"value": 0})
        return {"kind": self.kind, "help": self.help, **body}


class MetricsRegistry:
    """Owns every metric family; idempotent getters, three exporters."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- getters -------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        bounds = tuple(float(b) for b in buckets) if buckets is not None else None
        fam = self._families.get(name)
        if fam is None:
            fam = MetricFamily(name, kind, help, label_names, bounds)
            self._families[name] = fam
            return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {fam.kind}"
            )
        if fam.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{fam.label_names}, got {label_names}"
            )
        if kind == "histogram" and bounds is not None and fam.buckets != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """The counter family ``name`` (or its sole child when unlabeled)."""
        fam = self._family(name, "counter", help, labels)
        return fam if fam.label_names else fam.labels()

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """The gauge family ``name`` (or its sole child when unlabeled)."""
        fam = self._family(name, "gauge", help, labels)
        return fam if fam.label_names else fam.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        """The histogram family ``name`` (or its sole child when unlabeled)."""
        fam = self._family(name, "histogram", help, labels, buckets)
        return fam if fam.label_names else fam.labels()

    # -- exporters -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-serializable snapshot of every family."""
        return {
            name: fam.to_dict() for name, fam in sorted(self._families.items())
        }

    def to_prometheus(self) -> str:
        """Classic Prometheus text exposition (histograms cumulative)."""
        lines: list[str] = []
        for name, fam in sorted(self._families.items()):
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for key, child in sorted(fam._children.items()):
                base = dict(zip(fam.label_names, key))
                if isinstance(child, Histogram):
                    cum = 0
                    for i, bound in enumerate((*child.bounds, inf)):
                        cum += child._counts[i]
                        le = "+Inf" if bound is inf else _fmt(bound)
                        lines.append(
                            f"{name}_bucket{_labels({**base, 'le': le})} {cum}"
                        )
                    lines.append(f"{name}_sum{_labels(base)} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{_labels(base)} {child.count}")
                else:
                    lines.append(f"{name}{_labels(base)} {_fmt(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Aligned human-readable table of every child instrument."""
        rows: list[tuple[str, str]] = []
        for name, fam in sorted(self._families.items()):
            for key, child in sorted(fam._children.items()):
                label = name + (
                    "{" + ",".join(
                        f"{n}={v}" for n, v in zip(fam.label_names, key)
                    ) + "}"
                    if fam.label_names
                    else ""
                )
                if isinstance(child, Histogram):
                    val = (
                        f"count={child.count} sum={_fmt(child.sum)} "
                        f"p50={_fmt(child.quantile(0.5))} "
                        f"p95={_fmt(child.quantile(0.95))} "
                        f"p99={_fmt(child.quantile(0.99))} "
                        f"max={_fmt(child.max)}"
                    )
                else:
                    val = _fmt(child.value)
                rows.append((label, val))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(r[0]) for r in rows)
        return "\n".join(f"{k:<{width}} : {v}" for k, v in rows)


# -- no-op registry ----------------------------------------------------


class _NullInstrument:
    """Absorbs every instrument call; stands in for all three kinds."""

    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose every instrument is a shared no-op.

    The ambient default: service code instruments unconditionally, and
    outside a :func:`metrics_scope` block every call lands here and
    does nothing.
    """

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {}

    def to_prometheus(self) -> str:
        return ""

    def render(self) -> str:
        return "(no metrics recorded)"


#: Shared no-op registry returned by :func:`current_registry` by default.
NULL_REGISTRY = NullRegistry()

_ACTIVE: list[MetricsRegistry] = []


def current_registry() -> MetricsRegistry | NullRegistry:
    """The innermost active registry, or :data:`NULL_REGISTRY`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_REGISTRY


@contextmanager
def metrics_scope(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Make ``registry`` (a fresh one by default) ambient for the body.

    Service objects constructed inside the body bind their instruments
    to this registry; scopes nest (innermost wins) and always restore
    the previous registry on exit.
    """
    reg = MetricsRegistry() if registry is None else registry
    _ACTIVE.append(reg)
    try:
        yield reg
    finally:
        _ACTIVE.pop()


# -- formatting helpers ------------------------------------------------


def _num(x: float) -> int | float:
    """Collapse integral floats to ints for compact JSON."""
    return int(x) if float(x).is_integer() else x


def _fmt(x: float) -> str:
    v = _num(x)
    return str(v) if isinstance(v, int) else f"{v:g}"


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs.items())
    return "{" + body + "}"

"""Bounded ring-buffer flight recorder for the partition service.

A :class:`FlightRecorder` keeps the last ``capacity`` structured events
(update flushes, WAL group commits, snapshots, recovery replays) in a
ring buffer.  It costs nothing in the EM model — events are plain
dicts, recorded outside any :class:`~repro.em.machine.Machine` charge
path — and carries **no wall-clock timestamps**, only a monotone
sequence number, so dumps are deterministic and diffable.

The point is the crash path: ``repro serve --durable`` dumps the
recorder to JSON on any unclean exit, and ``repro recover
--flight-dump`` renders that dump, so the PR 6 kill-at-any-I/O chaos
sweep finally leaves a record of what the service was doing when it
died.

Like the metrics registry (:mod:`repro.obs.metrics`), wiring is
ambient: service objects resolve :func:`current_recorder` at
construction time, which is the no-op :data:`NULL_RECORDER` outside a
:func:`flight_scope` block.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "flight_scope",
    "load_flight_dump",
    "render_flight_events",
]


class FlightRecorder:
    """Last-``capacity`` structured events, oldest evicted first."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(self, kind: str, **fields: object) -> None:
        """Append one event; evicts the oldest when full.

        The ``seq``/``kind`` keys belong to the recorder — caller fields
        with those names cannot shadow them.
        """
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append({**fields, "seq": self._seq, "kind": str(kind)})
        self._seq += 1

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0
        self.dropped = 0

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": self.dropped,
            "events": self.events,
        }

    def dump(self, path: str | Path) -> Path:
        """Write the recorder state as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """Human-readable event log, one line per event."""
        return render_flight_events(self.to_dict())


class NullFlightRecorder:
    """Absorbs every event; the ambient default outside a scope."""

    capacity = 0
    dropped = 0
    events: list[dict] = []

    def record(self, kind: str, **fields: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def to_dict(self) -> dict:
        return {"capacity": 0, "recorded": 0, "dropped": 0, "events": []}

    def dump(self, path: str | Path) -> Path:  # pragma: no cover - unused
        raise RuntimeError("cannot dump the null flight recorder")

    def render(self) -> str:
        return "(no flight events recorded)"


#: Shared no-op recorder returned by :func:`current_recorder` by default.
NULL_RECORDER = NullFlightRecorder()

_ACTIVE: list[FlightRecorder] = []


def current_recorder() -> FlightRecorder | NullFlightRecorder:
    """The innermost active recorder, or :data:`NULL_RECORDER`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_RECORDER


@contextmanager
def flight_scope(
    recorder: FlightRecorder | None = None,
) -> Iterator[FlightRecorder]:
    """Make ``recorder`` (a fresh one by default) ambient for the body."""
    rec = FlightRecorder() if recorder is None else recorder
    _ACTIVE.append(rec)
    try:
        yield rec
    finally:
        _ACTIVE.pop()


def load_flight_dump(path: str | Path) -> dict:
    """Read a :meth:`FlightRecorder.dump` file back into a dict."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "events" not in doc:
        raise ValueError(f"{path} is not a flight-recorder dump")
    return doc


def render_flight_events(doc: dict) -> str:
    """Render a dump (or :meth:`FlightRecorder.to_dict`) as text."""
    events = doc.get("events", [])
    if not events:
        return "(no flight events recorded)"
    lines = [
        f"flight recorder: {len(events)} event(s) held, "
        f"{doc.get('recorded', len(events))} recorded, "
        f"{doc.get('dropped', 0)} dropped (capacity {doc.get('capacity', '?')})"
    ]
    for ev in events:
        extras = " ".join(
            f"{k}={v}" for k, v in ev.items() if k not in ("seq", "kind")
        )
        lines.append(f"  #{ev.get('seq', '?'):>4} {ev.get('kind', '?'):<14} {extras}".rstrip())
    return "\n".join(lines)

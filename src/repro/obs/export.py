"""Exporters for recorded span trees.

Three output forms, one per consumer:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  array of complete ``"X"`` events), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  One process row
  per traced machine; every span becomes a slice whose ``args`` carry
  the model costs (reads, writes, comparisons, memory/block peaks).
* :func:`render_span_tree` — a human-readable text tree with per-span
  I/O shares.  Sibling spans with the same name (loop iterations,
  recursion fan-out) are merged by default (``×n`` count column) so the
  tree stays readable; pass ``merge=False`` for the raw sequence.
* :func:`span_rollup` — a flat ``{path: metrics}`` dict aggregating
  every span with the same stack path, across all machines.  This is
  the plain-dict form embedded in the experiment runner's
  ``results.json`` records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .tracer import MachineTrace, Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "render_span_tree",
    "span_rollup",
    "traces_to_dict",
]


def chrome_trace(traces: Sequence[MachineTrace]) -> dict:
    """Build a Chrome trace-event JSON document from recorded traces.

    Timestamps are microseconds relative to the earliest root span, so
    multi-machine experiments line up on one timeline.
    """
    events: list[dict] = []
    t0 = min((t.root.t_start for t in traces), default=0.0)
    for trace in traces:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": trace.index,
                "tid": 0,
                "args": {
                    "name": f"machine-{trace.index} (M={trace.M}, B={trace.B})"
                },
            }
        )
        for span in trace.root.walk():
            events.append(
                {
                    "name": span.name,
                    "cat": "em",
                    "ph": "X",
                    "pid": trace.index,
                    "tid": 0,
                    "ts": round((span.t_start - t0) * 1e6, 3),
                    "dur": round(span.wall_s * 1e6, 3),
                    "args": {
                        "path": span.path,
                        "reads": span.cum_reads,
                        "writes": span.cum_writes,
                        "io": span.cum_io,
                        "comparisons": span.cum_comparisons,
                        "self_io": span.io,
                        "mem_peak": span.mem_peak,
                        "blocks_peak": span.blocks_peak,
                        "depth": span.depth,
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: Sequence[MachineTrace], path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(traces), indent=1) + "\n")
    return out


# ----------------------------------------------------------------------
# Text tree
# ----------------------------------------------------------------------
def _merge_siblings(spans: list[Span]) -> list[tuple[Span, int, dict]]:
    """Group same-named siblings: ``(representative, count, summed)``.

    ``summed`` holds inclusive totals over the group (io, reads, writes,
    comparisons, wall) plus max peaks — what one tree row reports.
    """
    groups: dict[str, tuple[Span, int, dict]] = {}
    for span in spans:
        agg = {
            "reads": span.cum_reads,
            "writes": span.cum_writes,
            "comparisons": span.cum_comparisons,
            "wall_s": span.wall_s,
            "mem_peak": span.mem_peak,
            "blocks_peak": span.blocks_peak,
        }
        if span.name not in groups:
            groups[span.name] = (span, 1, agg)
        else:
            rep, count, acc = groups[span.name]
            for key in ("reads", "writes", "comparisons", "wall_s"):
                acc[key] += agg[key]
            for key in ("mem_peak", "blocks_peak"):
                acc[key] = max(acc[key], agg[key])
            groups[span.name] = (rep, count + 1, acc)
    return list(groups.values())


def _tree_rows(
    spans: list[Span], grand_io: int, depth: int, merge: bool, rows: list
) -> None:
    if merge:
        entries = _merge_siblings(spans)
    else:
        entries = [
            (
                span,
                1,
                {
                    "reads": span.cum_reads,
                    "writes": span.cum_writes,
                    "comparisons": span.cum_comparisons,
                    "wall_s": span.wall_s,
                    "mem_peak": span.mem_peak,
                    "blocks_peak": span.blocks_peak,
                },
            )
            for span in spans
        ]
    entries.sort(key=lambda e: -(e[2]["reads"] + e[2]["writes"]))
    for rep, count, agg in entries:
        io = agg["reads"] + agg["writes"]
        label = "  " * depth + rep.name + (f" ×{count}" if count > 1 else "")
        rows.append(
            (
                label,
                io,
                io / grand_io if grand_io else 0.0,
                agg["reads"],
                agg["writes"],
                agg["comparisons"],
                agg["mem_peak"],
                agg["blocks_peak"],
                agg["wall_s"],
            )
        )
        # Children of every span in the merged group render together one
        # level deeper (recursion collapses into one sub-tree per name).
        children = (
            [c for s in spans if s.name == rep.name for c in s.children]
            if merge
            else rep.children
        )
        if children:
            _tree_rows(children, grand_io, depth + 1, merge, rows)


def render_span_tree(
    traces: Sequence[MachineTrace] | MachineTrace, *, merge: bool = True
) -> str:
    """Render trace(s) as an indented text tree with per-span I/O shares.

    Every row shows *inclusive* costs (self + descendants); the share
    column is relative to its machine's total I/O, so nested rows
    overlap by design — read it like a flame graph.
    """
    if isinstance(traces, MachineTrace):
        traces = [traces]
    if not traces:
        return "(no spans recorded)"
    chunks: list[str] = []
    for trace in traces:
        grand = trace.root.cum_io
        rows: list[tuple] = []
        _tree_rows([trace.root], grand, 0, merge, rows)
        width = max((len(r[0]) for r in rows), default=4)
        lines = [
            f"machine-{trace.index} (M={trace.M}, B={trace.B}): "
            f"{grand:,} I/Os, {trace.root.cum_comparisons:,} comparisons",
            f"{'span':<{width}}  {'io':>9}  {'share':>6}  {'reads':>9}  "
            f"{'writes':>9}  {'cmp':>10}  {'mem':>8}  {'blocks':>7}  {'wall':>9}",
        ]
        for label, io, share, reads, writes, cmps, mem, blocks, wall in rows:
            lines.append(
                f"{label:<{width}}  {io:>9,}  {share:>6.1%}  {reads:>9,}  "
                f"{writes:>9,}  {cmps:>10,}  {mem:>8,}  {blocks:>7,}  "
                f"{wall * 1e3:>7.1f}ms"
            )
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks)


# ----------------------------------------------------------------------
# Plain-dict forms
# ----------------------------------------------------------------------
def span_rollup(traces: Sequence[MachineTrace]) -> dict[str, dict]:
    """Aggregate spans by full stack path across all machines.

    Returns ``{path: {"spans", "reads", "writes", "io", "comparisons",
    "mem_peak", "blocks_peak", "wall_s"}}`` where reads/writes/
    comparisons/wall sum the *exclusive* costs of every span with that
    path (so values across paths sum to the machines' totals) and the
    peaks take maxima.  The root path is ``""``.  This is the runner's
    ``results.json`` embedding — flat, JSON-safe, and bounded by the
    number of distinct paths rather than the number of span activations.
    """
    rollup: dict[str, dict] = {}
    for trace in traces:
        for span in trace.root.walk():
            entry = rollup.setdefault(
                span.path,
                {
                    "spans": 0,
                    "reads": 0,
                    "writes": 0,
                    "io": 0,
                    "comparisons": 0,
                    "mem_peak": 0,
                    "blocks_peak": 0,
                    "wall_s": 0.0,
                },
            )
            entry["spans"] += 1
            entry["reads"] += span.reads
            entry["writes"] += span.writes
            entry["io"] += span.reads + span.writes
            entry["comparisons"] += span.comparisons
            entry["mem_peak"] = max(entry["mem_peak"], span.mem_peak)
            entry["blocks_peak"] = max(entry["blocks_peak"], span.blocks_peak)
            entry["wall_s"] = round(entry["wall_s"] + span.wall_s, 6)
    return rollup


def traces_to_dict(traces: Sequence[MachineTrace]) -> list[dict]:
    """Full span trees as plain dicts (one per machine)."""
    return [trace.to_dict() for trace in traces]

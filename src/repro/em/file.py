"""EMFile: a sequence of records stored across disk blocks.

An :class:`EMFile` is the simulator's analogue of a file on disk: ``N``
records laid out across ``ceil(N/B)`` blocks, all full except possibly the
last.  Algorithms read and write through block-granular operations that
charge I/Os; convenience whole-file accessors exist for test/verification
code and are explicit about whether they count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from .errors import FileError
from .records import RECORD_DTYPE, empty_records

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = ["EMFile"]


class EMFile:
    """A handle to a block-aligned sequence of records on the simulated disk.

    Create with :meth:`from_records` (bulk load, optionally uncounted for
    inputs) or by appending blocks via
    :class:`~repro.em.streams.BlockWriter`.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._block_ids: list[int] = []
        self._length = 0
        self._freed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, machine: "Machine", records: np.ndarray, *, counted: bool = True
    ) -> "EMFile":
        """Write ``records`` to a fresh file.

        With ``counted=False`` the writes are free — use this only to stage
        the *input* of an experiment (the model assumes the input already
        resides on disk).
        """
        if records.dtype != RECORD_DTYPE:
            raise FileError("EMFile stores record arrays only")
        f = cls(machine)
        if counted:
            f.append_blocks(records)
        else:
            with machine.disk.uncounted():
                f.append_blocks(records)
        return f

    @classmethod
    def adopt(
        cls, machine: "Machine", block_ids, length: int
    ) -> "EMFile":
        """Reattach a handle to blocks that already exist on disk.

        Crash recovery rebuilds :class:`EMFile` handles from block ids
        persisted in a snapshot; the blocks themselves were written (and
        charged) by the original process, so adoption itself performs no
        I/O.  The layout invariant is checked: ``length`` records must
        occupy exactly ``len(block_ids)`` blocks.
        """
        ids = [int(b) for b in block_ids]
        if length < 0:
            raise FileError("adopted length must be >= 0")
        B = machine.B
        if -(-length // B) != len(ids):
            raise FileError(
                f"{length} records do not fit exactly in {len(ids)} "
                f"blocks of {B}"
            )
        f = cls(machine)
        f._block_ids = ids
        f._length = int(length)
        return f

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of records in the file."""
        return self._length

    @property
    def num_blocks(self) -> int:
        return len(self._block_ids)

    @property
    def block_ids(self) -> tuple[int, ...]:
        return tuple(self._block_ids)

    def _check_live(self) -> None:
        if self._freed:
            raise FileError("file has been freed")

    # ------------------------------------------------------------------
    # Block-granular I/O (counted)
    # ------------------------------------------------------------------
    def read_block(self, index: int) -> np.ndarray:
        """Read the ``index``-th block (one read I/O)."""
        self._check_live()
        if not 0 <= index < len(self._block_ids):
            raise FileError(f"block index {index} out of range")
        return self.machine.disk.read(self._block_ids[index])

    def write_block(self, index: int, data: np.ndarray) -> None:
        """Overwrite the ``index``-th block (one write I/O).

        Only the last block may be partially full; overwriting an interior
        block with fewer than ``B`` records would corrupt the layout, so it
        is rejected.
        """
        self._check_live()
        if not 0 <= index < len(self._block_ids):
            raise FileError(f"block index {index} out of range")
        B = self.machine.B
        is_last = index == len(self._block_ids) - 1
        if not is_last and len(data) != B:
            raise FileError("interior blocks must contain exactly B records")
        if is_last:
            old_len = self._length - (len(self._block_ids) - 1) * B
            self._length += len(data) - old_len
        self.machine.disk.write(self._block_ids[index], data)

    def append_block(self, data: np.ndarray) -> None:
        """Append a new block of up to ``B`` records (one write I/O).

        The current last block must be full (files are append-only at block
        granularity; use a :class:`~repro.em.streams.BlockWriter` to buffer
        record-level appends).
        """
        self._check_live()
        B = self.machine.B
        if self._block_ids and self._length != len(self._block_ids) * B:
            raise FileError("cannot append: last block is partially full")
        if len(data) == 0:
            return
        (bid,) = self.machine.disk.allocate(1)
        try:
            self.machine.disk.write(bid, data)
        except BaseException:
            self.machine.disk.free([bid])  # don't leak on a failed write
            raise
        self._block_ids.append(bid)
        self._length += len(data)

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read blocks ``[start, stop)`` in one batched call.

        Counts exactly ``stop - start`` read I/Os — same model cost,
        counters, phase attribution and trace as reading the blocks one
        :meth:`read_block` at a time — but moves them with a single
        numpy concatenation.  Returns the concatenated records.  The
        caller is responsible for leasing ``(stop - start) * B`` records
        of buffer memory (:func:`~repro.em.streams.scan_chunks` does
        this automatically).
        """
        self._check_live()
        if not 0 <= start <= stop <= len(self._block_ids):
            raise FileError(
                f"block range [{start}, {stop}) invalid for "
                f"{len(self._block_ids)}-block file"
            )
        return self.machine.disk.read_many(self._block_ids[start:stop])

    def append_blocks(self, data: np.ndarray) -> None:
        """Append ``ceil(len(data)/B)`` new blocks in one batched call.

        All new blocks are full except possibly the last — the same
        layout (and the same one-write-per-block model cost) as
        repeatedly calling :meth:`append_block` with ``B``-record
        slices.  Like :meth:`append_block`, requires the current last
        block to be full.
        """
        self._check_live()
        if data.dtype != RECORD_DTYPE:
            raise FileError("EMFile stores record arrays only")
        B = self.machine.B
        if self._block_ids and self._length != len(self._block_ids) * B:
            raise FileError("cannot append: last block is partially full")
        if len(data) == 0:
            return
        nblocks = -(-len(data) // B)
        ids = self.machine.disk.allocate(nblocks)
        try:
            self.machine.disk.write_many(ids, data)
        except BaseException:
            self.machine.disk.free(ids)  # don't leak on a failed write
            raise
        self._block_ids.extend(ids)
        self._length += len(data)

    def iter_blocks(self) -> Iterator[np.ndarray]:
        """Iterate over blocks front to back (one read I/O per block).

        Note: the caller is responsible for holding a ``B``-record memory
        lease for the buffer; prefer :class:`~repro.em.streams.BlockReader`
        which manages the lease automatically.
        """
        self._check_live()
        for i in range(len(self._block_ids)):
            yield self.read_block(i)

    # ------------------------------------------------------------------
    # Whole-file access
    # ------------------------------------------------------------------
    def to_numpy(self, *, counted: bool = False) -> np.ndarray:
        """Materialize the whole file as one numpy array.

        By default this is an *uncounted verification* accessor (it does not
        charge I/Os and does not lease memory): use it in tests and result
        checking only.  With ``counted=True`` it charges one read per block
        but still does not lease memory; algorithm code should instead read
        through streams with explicit leases.
        """
        self._check_live()
        disk = self.machine.disk
        if counted:
            parts = [disk.read(bid) for bid in self._block_ids]
        else:
            parts = [disk.peek(bid) for bid in self._block_ids]
        return self.machine.kernel.concat(parts) if parts else empty_records(0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def free(self) -> None:
        """Release the file's blocks back to the disk."""
        if self._freed:
            return
        self.machine.disk.free(self._block_ids)
        self._block_ids = []
        self._length = 0
        self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"{self._length} records"
        return f"EMFile({state}, {len(self._block_ids)} blocks)"

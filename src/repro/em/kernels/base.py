"""Kernel backend interface: the *data movement* half of the simulator.

The EM layer splits every hot operation into two halves:

* **accounting** — I/O charges, phase attribution, comparison counts,
  access traces, lease bookkeeping.  This is the scientific quantity the
  paper's claims are checked against; it lives in
  :class:`~repro.em.disk.Disk` / :class:`~repro.em.machine.Machine` and
  is guarded by emlint and the strict sanitizer.  Kernels never touch
  it.
* **movement** — the numpy work that actually shuffles record bytes:
  gathering blocks into a contiguous array, scattering a batch payload
  back into blocks, concatenating record parts, sorting by the
  composite order, bucketing against pivots, grouping a chunk by
  destination bucket, and rank-partitioning a memory load.  This half
  is *pure* (no counters, no model state) and therefore swappable.

A :class:`KernelBackend` implements the movement half.  Every backend
must be **byte-identical** to every other: same inputs produce the same
output arrays, bit for bit — ordering guarantees included (grouping
preserves input order within a bucket, sorting is the stable argsort of
the composite, rank partitions apply ``np.argpartition`` with the same
``kth`` list).  The differential harness in ``tests/test_kernels.py``
enforces this across all registered experiments and the service paths,
alongside counter/phase/trace identity.

The base class carries the canonical (definitional) implementations of
the batch-comparison operations; backends override the movement-heavy
operations where a faster strategy exists.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..records import composite

__all__ = ["KernelBackend"]


class KernelBackend:
    """Interface + canonical semantics for the movement operations.

    Subclasses set :attr:`name` (the registry key, recorded in trace
    metadata and ``results.json``) and may override any operation, as
    long as outputs stay byte-identical to these definitions.
    """

    #: Registry key; also stamped into traces and results.
    name: str = ""

    # ------------------------------------------------------------------
    # Block movement (Disk.read_many / write_many delegate here *after*
    # validating ids and charging the model cost)
    # ------------------------------------------------------------------
    def gather_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
    ) -> np.ndarray:
        """Concatenate the stored blocks ``block_ids`` (non-empty, all
        validated by the caller) into one fresh array.

        ``origin`` maps a block id to its ``(arena, record_offset)``
        physical layout hint — blocks written in one batch share an
        arena at consecutive offsets.  Backends may exploit it or ignore
        it; the output must equal the blocks' records concatenated in
        the given order.
        """
        raise NotImplementedError

    def scatter_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
        data: np.ndarray,
        block_size: int,
    ) -> None:
        """Store the concatenated payload ``data`` into ``block_ids``
        (block ``i`` receives ``data[i*B:(i+1)*B]``; the last block the
        remainder), updating ``origin`` for each stored block.

        The caller has validated ids and payload shape and charged the
        writes; the kernel must copy ``data`` (stored blocks never alias
        caller memory) and must leave ``blocks[bid]`` readable
        independently of the others.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Record concatenation
    # ------------------------------------------------------------------
    def concat(self, parts: list[np.ndarray]) -> np.ndarray:
        """Concatenate record arrays into a fresh array (empty list →
        empty record array; a single part is still copied)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch comparisons (canonical implementations — semantics, not
    # strategy; charging stays with the caller via em.comparisons)
    # ------------------------------------------------------------------
    def sort_by_composite(self, records: np.ndarray) -> np.ndarray:
        """Records sorted by the ``(key, uid)`` total order — the stable
        argsort of the composite (a fresh array)."""
        order = np.argsort(composite(records), kind="stable")
        return records[order]

    def bucket_of(
        self, records: np.ndarray, pivot_composites: np.ndarray
    ) -> np.ndarray:
        """Bucket index of each record against sorted pivot composites:
        ``#{pivots < record}`` (a record equal to pivot ``p_i`` lands in
        bucket ``i`` — the paper's ``(p_{i-1}, p_i]`` convention)."""
        return np.searchsorted(
            pivot_composites, composite(records), side="left"
        )

    def partition_at(self, records: np.ndarray, kth0: np.ndarray) -> np.ndarray:
        """Records permuted so each 0-based boundary in ``kth0`` holds
        its order statistic (one ``np.argpartition`` multi-pivot pass;
        ``kth0`` must be the deduplicated, in-range boundary list)."""
        order = np.argpartition(composite(records), kth0)
        return records[order]

    def rank_order(self, records: np.ndarray, kth0: np.ndarray) -> np.ndarray:
        """The ``np.argpartition`` permutation itself, for callers that
        need to map positions back to input indices."""
        return np.argpartition(composite(records), kth0)

    # ------------------------------------------------------------------
    # Bucket distribution
    # ------------------------------------------------------------------
    def group_by_bucket(
        self, records: np.ndarray, bucket_idx: np.ndarray
    ) -> Iterable[tuple[int, np.ndarray]]:
        """Group ``records`` by their ``bucket_idx``.

        Yields ``(bucket, group)`` pairs in ascending bucket order,
        skipping empty buckets, with each group preserving the records'
        input order — the invariant that makes distribution passes
        backend-independent.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

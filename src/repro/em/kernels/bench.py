"""Wall-clock benchmark of the kernel backends.

Times the four backend-differing primitives — arena gather, arena
scatter, concatenation, and bucket grouping — on a scaled-up hot-path
instance (a multi-thousand-block disk image and a multi-thousand-bucket
distribution pass, the shapes the experiment suite actually produces),
and cross-checks byte identity of every output against the reference
backend while doing so.

``sort_by_composite`` / ``bucket_of`` / ``partition_at`` are *not*
timed: they are canonical implementations shared via
:class:`~repro.em.kernels.base.KernelBackend`, identical by
construction, so their ratio is 1.0 by definition.

Used by ``repro bench-kernels`` and ``benchmarks/test_kernel_backend.py``
(which records the result in ``benchmarks/out/KERNEL_BACKEND.txt``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..disk import Disk
from ..records import make_records
from . import available_kernels, get_kernel

__all__ = ["KernelBenchResult", "bench_kernels", "render_bench"]

#: Primitive names in report order.
OPS = ("gather", "scatter", "concat", "group")


@dataclass
class KernelBenchResult:
    """Per-backend wall-clock seconds for each primitive, plus shape."""

    n_blocks: int
    block: int
    n_buckets: int
    reps: int
    #: kernel name -> {op name -> seconds}
    timings: dict[str, dict[str, float]] = field(default_factory=dict)
    identical: bool = True

    def total(self, kernel: str) -> float:
        return sum(self.timings[kernel].values())

    def speedup(self, kernel: str, baseline: str = "numpy_v1") -> float:
        """Wall-clock ratio baseline/kernel over the whole suite."""
        return self.total(baseline) / self.total(kernel)


def bench_kernels(
    n_blocks: int = 8192,
    block: int = 64,
    n_buckets: int = 2000,
    reps: int = 3,
    kernels: tuple[str, ...] | None = None,
) -> KernelBenchResult:
    """Time every registered backend on the primitive suite.

    The instance: ``n_blocks`` full blocks staged contiguously on a
    disk (one arena, the layout ``write_many`` produces), a same-sized
    record payload, a ``n_buckets``-way bucket assignment, and a
    500-part concatenation.  Each primitive runs ``reps`` times; the
    recorded figure is the total.
    """
    names = kernels or available_kernels()
    n = n_blocks * block

    disk = Disk(block)
    ids = disk.allocate(n_blocks)
    payload = make_records(np.arange(n))
    with disk.uncounted():
        disk.write_many(ids, payload)
    bucket_idx = np.random.default_rng(0).integers(0, n_buckets, size=n)
    parts = np.array_split(payload, 500)

    result = KernelBenchResult(
        n_blocks=n_blocks, block=block, n_buckets=n_buckets, reps=reps
    )
    reference: dict[str, bytes] = {}
    for name in names:
        kern = get_kernel(name)
        tasks = {
            "gather": lambda: kern.gather_blocks(
                disk._blocks, disk._origin, ids
            ),
            "scatter": lambda: _scatter_roundtrip(
                kern, disk, ids, payload, block
            ),
            "concat": lambda: kern.concat(parts),
            "group": lambda: _group_digest(kern, payload, bucket_idx),
        }
        timings: dict[str, float] = {}
        for op in OPS:
            t0 = time.perf_counter()
            for _ in range(reps):
                out = tasks[op]()
            timings[op] = time.perf_counter() - t0
            digest = _digest(out)
            if op not in reference:
                reference[op] = digest
            elif digest != reference[op]:
                result.identical = False
        result.timings[name] = timings
    return result


def _scatter_roundtrip(kern, disk, ids, payload, block):
    kern.scatter_blocks(disk._blocks, disk._origin, ids, payload, block)
    return disk._blocks[ids[0]]


def _group_digest(kern, payload, bucket_idx):
    return list(kern.group_by_bucket(payload, bucket_idx))


def _digest(out) -> bytes:
    if isinstance(out, list):
        return b"".join(
            int(b).to_bytes(8, "little") + r.tobytes() for b, r in out
        )
    return np.asarray(out).tobytes()


def render_bench(result: KernelBenchResult) -> str:
    """Human-readable report (the KERNEL_BACKEND.txt payload)."""
    lines = [
        "kernel backend benchmark",
        f"  instance: {result.n_blocks} blocks x B={result.block} "
        f"({result.n_blocks * result.block:,} records), "
        f"{result.n_buckets} buckets, {result.reps} reps/op",
        "",
        f"  {'kernel':<16}" + "".join(f"{op:>10}" for op in OPS)
        + f"{'total':>10}{'speedup':>10}",
    ]
    for name, timings in result.timings.items():
        total = result.total(name)
        speed = result.speedup(name)
        lines.append(
            f"  {name:<16}"
            + "".join(f"{timings[op]:>9.3f}s" for op in OPS)
            + f"{total:>9.3f}s{speed:>9.2f}x"
        )
    lines += [
        "",
        f"  outputs byte-identical across backends: "
        f"{'yes' if result.identical else 'NO'}",
    ]
    return "\n".join(lines)

"""``vectorized_v2`` — arena-aware bulk movement (the default backend).

Three strategies distinguish it from the ``numpy_v1`` reference; all
produce byte-identical outputs:

* **Arena-run gather** — blocks written in one ``write_many`` batch
  share a physical arena at consecutive offsets (the ``origin`` hints
  kept by the disk).  A gather coalesces maximal runs of adjacent
  blocks and moves each run with a single numpy slice copy instead of
  one copy per block, turning a ``k``-block read into ``O(#runs)``
  memcpys.
* **Single-arena scatter** — a batch write copies its payload once and
  stores per-block *views* into that arena, so the blocks it creates
  are themselves a coalescible run for later gathers.
* **Preallocate-and-assign concat + fused grouping** —
  ``np.concatenate`` re-promotes the structured field dtypes per input
  part, which dominates many-small-part concatenations; v2 preallocates
  and slice-assigns instead.  Bucket grouping applies one stable
  argsort take (a single fused gather) and slices group boundaries out
  of the result, rather than one mask pass per bucket.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..records import RECORD_DTYPE, concat_records
from .base import KernelBackend

__all__ = ["VectorizedV2Kernel"]


class VectorizedV2Kernel(KernelBackend):
    """Arena-coalescing, fused-pass backend (default)."""

    name = "vectorized_v2"

    def gather_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
    ) -> np.ndarray:
        # Coalesce maximal runs of blocks physically adjacent in one
        # arena; each run then moves with a single slice copy.
        runs: list[tuple[np.ndarray, int, int]] = []  # (arena, offset, records)
        total = 0
        run_arena: np.ndarray | None = None
        run_off = 0  # record offset of the run's start in its arena
        run_len = 0  # records accumulated in the current run
        for bid in block_ids:
            b = blocks[bid]
            o = origin.get(bid)
            if o is None:
                arena, off = b, 0
            else:
                arena, off = o
            nb = len(b)
            if run_arena is arena and off == run_off + run_len:
                run_len += nb
            else:
                if run_arena is not None:
                    runs.append((run_arena, run_off, run_len))
                run_arena, run_off, run_len = arena, off, nb
            total += nb
        runs.append((run_arena, run_off, run_len))
        out = np.empty(total, dtype=RECORD_DTYPE)
        pos = 0
        for arena, off, n in runs:
            out[pos : pos + n] = arena[off : off + n]
            pos += n
        return out

    def scatter_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
        data: np.ndarray,
        block_size: int,
    ) -> None:
        B = block_size
        buf = data.copy()  # one copy for the whole batch — the arena
        for i, bid in enumerate(block_ids):
            off = i * B
            blocks[bid] = buf[off : off + B]
            origin[bid] = (buf, off)

    def concat(self, parts: list[np.ndarray]) -> np.ndarray:
        return concat_records(parts)

    def group_by_bucket(
        self, records: np.ndarray, bucket_idx: np.ndarray
    ) -> Iterable[tuple[int, np.ndarray]]:
        # Fused distribute pass: one stable argsort take groups every
        # bucket at once; boundary slicing then yields views into the
        # grouped copy.  Stability preserves input order within buckets.
        if len(records) == 0:
            return
        order = np.argsort(bucket_idx, kind="stable")
        sorted_idx = bucket_idx[order]
        grouped = records[order]
        boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(records)]))
        for s, e in zip(starts, ends):
            yield int(sorted_idx[s]), grouped[s:e]

"""Versioned kernel backends for the simulator's data-movement paths.

The registry separates *what the model charges* (accounting — owned by
:class:`~repro.em.disk.Disk` / :class:`~repro.em.machine.Machine`,
guarded by emlint and the sanitizer) from *how record bytes move*
(movement — a :class:`~repro.em.kernels.base.KernelBackend`).  Two
backends ship:

* :class:`~repro.em.kernels.numpy_v1.NumpyV1Kernel` — the per-block
  reference strategy, audit-friendly, one copy per block;
* :class:`~repro.em.kernels.vectorized_v2.VectorizedV2Kernel` — the
  default: arena-run coalescing, single-arena scatters, preallocated
  concatenation, fused distribute grouping.

Selection happens at :class:`~repro.em.machine.Machine` construction:
``Machine(kernel="numpy_v1")`` wins over the ``EM_KERNEL`` environment
variable, which wins over :data:`DEFAULT_KERNEL`.  The chosen backend
is recorded in trace metadata and ``results.json``, and every backend
must be byte-identical and counter/phase/trace-identical to every other
(proven by the differential tests; ``repro bench-kernels`` measures the
wall-clock gap).
"""

from __future__ import annotations

import os

from .base import KernelBackend
from .numpy_v1 import NumpyV1Kernel
from .vectorized_v2 import VectorizedV2Kernel

__all__ = [
    "KernelBackend",
    "NumpyV1Kernel",
    "VectorizedV2Kernel",
    "KERNEL_ENV",
    "DEFAULT_KERNEL",
    "register_kernel",
    "available_kernels",
    "get_kernel",
]

#: Environment variable naming the backend new machines default to.
KERNEL_ENV = "EM_KERNEL"

#: Backend used when neither ``Machine(kernel=...)`` nor ``EM_KERNEL``
#: says otherwise.
DEFAULT_KERNEL = "vectorized_v2"

_REGISTRY: dict[str, KernelBackend] = {}


def register_kernel(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Register a backend class under its :attr:`KernelBackend.name`.

    Backends are stateless, so one shared instance serves every machine.
    Usable as a class decorator for out-of-tree backends.
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no kernel name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate kernel backend {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def available_kernels() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def get_kernel(kernel: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend: instance passthrough, name lookup, or the
    ``EM_KERNEL``-environment / :data:`DEFAULT_KERNEL` default."""
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or DEFAULT_KERNEL
    try:
        return _REGISTRY[kernel]
    except KeyError:
        known = ", ".join(available_kernels())
        raise KeyError(
            f"unknown kernel backend {kernel!r}; registered: {known}"
        ) from None


register_kernel(NumpyV1Kernel)
register_kernel(VectorizedV2Kernel)

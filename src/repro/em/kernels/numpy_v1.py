"""``numpy_v1`` — the plain per-block reference backend.

This is the straightforward numpy strategy the simulator's hot paths
used before batching landed, preserved verbatim as the *reference*
backend: one copy per block on gather/scatter (exactly what ``k``
successive :meth:`Disk.read <repro.em.disk.Disk.read>` /
:meth:`Disk.write <repro.em.disk.Disk.write>` calls do),
``np.concatenate`` for record concatenation (which re-promotes the
structured field dtypes per input part), and one boolean-mask pass per
bucket when grouping a chunk for distribution.

Every operation is simple enough to audit at a glance, which is the
point: the differential harness proves ``vectorized_v2`` byte-identical
to *this* backend, so v1's auditability transfers to v2's speed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..records import RECORD_DTYPE
from .base import KernelBackend

__all__ = ["NumpyV1Kernel"]


class NumpyV1Kernel(KernelBackend):
    """Per-block reference backend (audit-friendly, no layout tricks)."""

    name = "numpy_v1"

    def gather_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
    ) -> np.ndarray:
        # One copy per block, then one concatenation — what k successive
        # Disk.read calls produce.  The origin layout hints are ignored.
        parts = [blocks[bid].copy() for bid in block_ids]
        return np.concatenate(parts)

    def scatter_blocks(
        self,
        blocks: dict[int, np.ndarray],
        origin: dict[int, tuple[np.ndarray, int]],
        block_ids: Sequence[int],
        data: np.ndarray,
        block_size: int,
    ) -> None:
        # One stored copy per block — what k successive Disk.write calls
        # do; each block becomes its own single-block arena.
        B = block_size
        for i, bid in enumerate(block_ids):
            stored = data[i * B : (i + 1) * B].copy()
            blocks[bid] = stored
            origin[bid] = (stored, 0)

    def concat(self, parts: list[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.empty(0, dtype=RECORD_DTYPE)
        return np.concatenate(parts)

    def group_by_bucket(
        self, records: np.ndarray, bucket_idx: np.ndarray
    ) -> Iterable[tuple[int, np.ndarray]]:
        # One boolean mask per occupied bucket; masks preserve input
        # order, so groups match the fused backend byte for byte.
        for b in np.unique(bucket_idx):
            yield int(b), records[bucket_idx == b]

"""Record representation for the external-memory simulator.

The paper's model stores indivisible *elements* drawn from an ordered domain.
We represent an element as a fixed-size record with three 64-bit fields:

``key``
    the element's value in the ordered domain (what the problem statements
    compare);
``uid``
    a unique identifier used to break ties among equal keys, giving a total
    order — the standard symbolic-perturbation trick for comparison-based
    algorithms in the presence of duplicates;
``grp``
    a small integer tag used by the L-intermixed selection problem (§4.1),
    where each element carries a *group id*.  Zero for plain elements.

One record occupies one "word" of the model: a disk block holds ``B``
records and memory holds ``M`` records.  Since every record has the same
constant size this only changes constants relative to the paper.

Vectorized order
----------------
For fast in-memory manipulation (CPU time is free in the EM model, but we
still care about wall-clock time of the *simulation*) we combine
``(key, uid)`` into a single ``int64`` *composite* with
``composite = key * 2**UID_BITS + uid``.  To make this injective and
overflow-free, keys must lie in ``[KEY_MIN, KEY_MAX]`` and uids in
``[0, UID_MAX]``; :func:`make_records` validates the ranges.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RECORD_DTYPE",
    "KEY_MIN",
    "KEY_MAX",
    "UID_BITS",
    "UID_MAX",
    "make_records",
    "empty_records",
    "composite",
    "composite_of",
    "sort_records",
    "concat_records",
]

#: Structured dtype of one record (one "word" of the EM model).
RECORD_DTYPE = np.dtype([("key", np.int64), ("uid", np.int64), ("grp", np.int64)])

#: Number of low-order bits of the composite reserved for the uid.
UID_BITS = 31
#: Largest permitted uid (inclusive).
UID_MAX = (1 << UID_BITS) - 1
#: Smallest permitted key (inclusive).
KEY_MIN = -(1 << 31)
#: Largest permitted key (inclusive).
KEY_MAX = (1 << 31) - 1


def make_records(
    keys: np.ndarray,
    uids: np.ndarray | None = None,
    grps: np.ndarray | int = 0,
) -> np.ndarray:
    """Build a record array from parallel field arrays.

    Parameters
    ----------
    keys:
        Integer array of element values; each must lie in
        ``[KEY_MIN, KEY_MAX]``.
    uids:
        Optional unique ids in ``[0, UID_MAX]``; defaults to
        ``0, 1, ..., len(keys)-1``.  Uniqueness is the *caller's*
        responsibility when passing explicit uids.
    grps:
        Group ids (scalar or array); defaults to 0.

    Returns
    -------
    numpy.ndarray
        A fresh array with dtype :data:`RECORD_DTYPE`.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    n = len(keys)
    if n and (keys.min() < KEY_MIN or keys.max() > KEY_MAX):
        raise ValueError(f"keys must lie in [{KEY_MIN}, {KEY_MAX}]")
    if uids is None:
        uids = np.arange(n, dtype=np.int64)
    else:
        uids = np.asarray(uids, dtype=np.int64)
        if uids.shape != keys.shape:
            raise ValueError("uids must have the same shape as keys")
        if n and (uids.min() < 0 or uids.max() > UID_MAX):
            raise ValueError(f"uids must lie in [0, {UID_MAX}]")
    out = np.empty(n, dtype=RECORD_DTYPE)
    out["key"] = keys
    out["uid"] = uids
    out["grp"] = grps
    return out


def empty_records(n: int = 0) -> np.ndarray:
    """Return an uninitialized record array of length ``n``."""
    return np.empty(n, dtype=RECORD_DTYPE)


def composite(records: np.ndarray) -> np.ndarray:
    """Return the int64 total-order composite ``key * 2**UID_BITS + uid``.

    Monotone in the lexicographic order on ``(key, uid)``; injective given
    the field ranges enforced by :func:`make_records`.
    """
    return records["key"] * np.int64(1 << UID_BITS) + records["uid"]


def composite_of(key: int, uid: int) -> int:
    """Composite of a single ``(key, uid)`` pair (Python ints)."""
    return int(key) * (1 << UID_BITS) + int(uid)


def sort_records(records: np.ndarray) -> np.ndarray:
    """Return records sorted by the total order ``(key, uid)`` (a copy).

    Reference primitive: algorithm code should dispatch through
    ``machine.kernel.sort_by_composite`` instead (emlint rule R6), so
    the backend registry stays the single hot-path entry point.
    """
    order = np.argsort(composite(records), kind="stable")
    return records[order]


def concat_records(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate record arrays (handles the empty list).

    Preallocates and slice-assigns instead of ``np.concatenate``: for
    structured dtypes numpy re-promotes the field dtypes per input
    array, which dominates the runtime of many-small-block
    concatenations on the batched I/O path.

    Reference primitive: algorithm code should dispatch through
    ``machine.kernel.concat`` instead (emlint rule R6).
    """
    if not parts:
        return empty_records(0)
    if len(parts) == 1:
        return parts[0].copy()
    out = np.empty(sum(len(p) for p in parts), dtype=RECORD_DTYPE)
    pos = 0
    for p in parts:
        out[pos : pos + len(p)] = p
        pos += len(p)
    return out

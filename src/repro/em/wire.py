"""Charged communication primitive for the sharded service.

The EM model has no network, so cross-machine messages are charged as
what they physically are on each endpoint: block transfers.  A message
of ``w`` payload words occupies ``message_blocks(w, B)`` blocks, and

* the **sender** pays that many block *writes* (serializing the payload
  out of memory), attributed to the phase ``"shard-send"``;
* the **receiver** pays that many block *reads* (deserializing it into
  memory), attributed to ``"shard-recv"``.

Both charges are realized as *real* :class:`~repro.em.disk.Disk`
operations on scratch blocks — allocate, transfer, free — rather than
counter pokes, so they flow through every observer hook exactly like
algorithm I/O: span tracers attribute them, sanitize-mode counter
conservation holds, and per-phase rollups show communication next to
computation.  On the receive side the scratch blocks are first
initialized *uncounted* (the network delivered the bytes; the endpoint
did not pay a write for them) and then read back counted.

Payload sizes are computed by :func:`payload_words` from the abstract
message value, **not** from any serialized byte string, so every
transport — in-process reference passing, pickled pipes, real sockets —
charges identically and the model cost of a sharded run is
deterministic across worker implementations.
"""

from __future__ import annotations

import numpy as np

from .records import RECORD_DTYPE

if False:  # pragma: no cover - import cycle guard for type checkers
    from .machine import Machine

__all__ = [
    "WORDS_PER_RECORD",
    "payload_words",
    "message_blocks",
    "charge_send",
    "charge_recv",
    "SEND_PHASE",
    "RECV_PHASE",
]

#: One record is three 64-bit words (key, uid, grp); a block of ``B``
#: records therefore carries ``3 B`` words of payload.
WORDS_PER_RECORD = 3

#: Phase labels communication charges are attributed to.
SEND_PHASE = "shard-send"
RECV_PHASE = "shard-recv"


def payload_words(value) -> int:
    """Canonical size of a message payload in 64-bit words.

    Defined over abstract values (arrays, scalars, containers), not
    serialized bytes, so all transports agree on the charge:

    * record arrays count :data:`WORDS_PER_RECORD` words per record,
      other numpy arrays one word per element;
    * scalars (``int``/``float``/``bool``/``None``) count one word;
    * strings count one word per 8 characters (rounded up, min 1);
    * tuples/lists/dicts are the sum of their items (keys and values).
    """
    if value is None or isinstance(value, (bool, int, float, np.integer, np.floating)):
        return 1
    if isinstance(value, np.ndarray):
        if value.dtype == RECORD_DTYPE:
            return WORDS_PER_RECORD * int(value.size)
        return int(value.size)
    if isinstance(value, str):
        return max(1, -(-len(value) // 8))
    if isinstance(value, (tuple, list)):
        return sum(payload_words(v) for v in value)
    if isinstance(value, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in value.items())
    raise TypeError(f"unchargeable payload type: {type(value).__name__}")


def message_blocks(words: int, block: int) -> int:
    """Blocks occupied by a ``words``-word message on a ``B=block``
    machine; every message costs at least one block (the envelope)."""
    if words < 0:
        raise ValueError("payload size must be >= 0")
    if block < 1:
        raise ValueError("block size B must be >= 1")
    return max(1, -(-words // (WORDS_PER_RECORD * block)))


def _scratch(machine: "Machine", nblocks: int) -> tuple[list[int], np.ndarray]:
    ids = machine.disk.allocate(nblocks)
    payload = np.zeros(nblocks * machine.B, dtype=RECORD_DTYPE)
    return ids, payload


def charge_send(machine: "Machine", nblocks: int, phase: str = SEND_PHASE) -> None:
    """Charge ``machine`` ``nblocks`` block writes for sending a message."""
    ids, payload = _scratch(machine, nblocks)
    try:
        with machine.phase(phase):
            machine.disk.write_many(ids, payload)
    finally:
        machine.disk.free(ids)


def charge_recv(machine: "Machine", nblocks: int, phase: str = RECV_PHASE) -> None:
    """Charge ``machine`` ``nblocks`` block reads for receiving a message.

    The scratch blocks are initialized uncounted first — the bytes
    arrived over the wire, the endpoint only pays to read them in.
    """
    ids, payload = _scratch(machine, nblocks)
    try:
        with machine.uncounted():
            machine.disk.write_many(ids, payload)
        with machine.phase(phase):
            machine.disk.read_many(ids)
    finally:
        machine.disk.free(ids)

"""Buffered streams over :class:`~repro.em.file.EMFile` with leased memory.

These are the only building blocks algorithms need for sequential I/O:

* :class:`BlockReader` — forward scan, one leased block buffer;
* :class:`BlockWriter` — record-granular appends, flushed in full blocks;
* :func:`scan_chunks` — scan a file in memory-sized chunks (run formation,
  chunk sampling); returns a close-aware :class:`ChunkScanner`;
* :func:`merge_sorted_files` — k-way merge of sorted files using the
  block-frontier technique (vectorized; still one read per block and one
  write per output block, exactly as the model counts);
* :func:`copy_file` — linear-I/O file copy.

Every stream leases its buffer space from the machine's
:class:`~repro.em.machine.MemoryAccountant`, so the sum of open streams can
never exceed ``M``.

All streams move data through the disk's batched fast path
(:meth:`~repro.em.disk.Disk.read_many` / ``write_many``) — one numpy
concatenation per chunk instead of one Python call per block — while
charging exactly the same per-block model cost.  Record concatenation
and merge ordering dispatch through the machine's
:attr:`~repro.em.machine.Machine.kernel` backend, so a backend swap
changes wall-clock behaviour only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from .comparisons import cmp_search
from .errors import StreamError
from .file import EMFile
from .records import composite, empty_records

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = [
    "BlockReader",
    "BlockWriter",
    "ChunkScanner",
    "scan_chunks",
    "merge_sorted_files",
    "copy_file",
]


class BlockReader:
    """Sequential block-at-a-time reader holding a ``B``-record lease.

    Iterate to obtain successive blocks; use as a context manager so the
    lease is released even on error:

    >>> # with BlockReader(f) as reader:
    >>> #     for block in reader: ...
    """

    def __init__(self, file: EMFile, label: str = "reader") -> None:
        self._file = file
        self._lease = file.machine.memory.lease(file.machine.B, label)
        self._index = 0
        self._closed = False

    def __enter__(self) -> "BlockReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self) -> Iterator[np.ndarray]:
        while self._index < self._file.num_blocks:
            if self._closed:
                raise StreamError("reader is closed")
            block = self._file.read_block(self._index)
            self._index += 1
            yield block

    def close(self) -> None:
        if not self._closed:
            self._lease.release()
            self._closed = True


class BlockWriter:
    """Record-granular append buffer that flushes full blocks to a new file.

    Holds a ``B``-record lease for its buffer.  ``close()`` flushes the
    trailing partial block and returns the finished :class:`EMFile`.
    """

    def __init__(self, machine: "Machine", label: str = "writer") -> None:
        self.machine = machine
        self._lease = machine.memory.lease(machine.B, label)
        self._file = EMFile(machine)
        self._parts: list[np.ndarray] = []
        self._buffered = 0
        self._closed = False

    @property
    def records_written(self) -> int:
        """Records accepted so far (including still-buffered ones)."""
        return len(self._file) + self._buffered

    def write(self, records: np.ndarray) -> None:
        """Append an array of records (any length)."""
        if self._closed:
            raise StreamError("writer is closed")
        if len(records) == 0:
            return
        self._parts.append(records)
        self._buffered += len(records)
        B = self.machine.B
        if self._buffered >= B:
            data = self.machine.kernel.concat(self._parts)
            n_full = (len(data) // B) * B
            # One batched write for all full blocks (same one-I/O-per-
            # block cost as appending them individually).
            self._file.append_blocks(data[:n_full])
            rest = data[n_full:]
            self._parts = [rest] if len(rest) else []
            self._buffered = len(rest)

    def close(self) -> EMFile:
        """Flush and return the written file."""
        if self._closed:
            raise StreamError("writer already closed")
        if self._buffered:
            self._file.append_block(self.machine.kernel.concat(self._parts))
            self._parts = []
            self._buffered = 0
        self._lease.release()
        self._closed = True
        return self._file

    def abort(self) -> None:
        """Discard everything written and release resources."""
        if self._closed:
            return
        self._lease.release()
        self._file.free()
        self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


class ChunkScanner:
    """Iterator over a file's records in memory-sized chunks.

    Returned by :func:`scan_chunks`.  The chunk-buffer lease is acquired
    eagerly on construction and released *deterministically*: when the
    iteration is exhausted, when :meth:`close` is called, or when the
    ``with`` block exits — never "whenever the generator happens to be
    garbage-collected".  Callers that may stop scanning early (``break``,
    ``return``, exceptions) must use the context-manager form::

        with scan_chunks(file, machine.load_limit, "scan") as chunks:
            for chunk in chunks:
                ...

    Each chunk is read through the batched
    :meth:`~repro.em.file.EMFile.read_range` fast path — one I/O charge
    per block, one numpy concatenation per chunk.
    """

    def __init__(self, file: EMFile, chunk_records: int, label: str = "chunk") -> None:
        machine = file.machine
        self._file = file
        self._blocks_per_chunk = max(1, chunk_records // machine.B)
        self._lease = machine.memory.lease(self._blocks_per_chunk * machine.B, label)
        self._next = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ChunkScanner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self) -> "ChunkScanner":
        return self

    def __next__(self) -> np.ndarray:
        if self._closed:
            raise StopIteration
        if self._next >= self._file.num_blocks:
            self.close()
            raise StopIteration
        stop = min(self._next + self._blocks_per_chunk, self._file.num_blocks)
        chunk = self._file.read_range(self._next, stop)
        self._next = stop
        return chunk

    def close(self) -> None:
        """Release the chunk buffer lease (idempotent)."""
        if not self._closed:
            self._closed = True
            self._lease.release()

    def __del__(self) -> None:  # pragma: no cover - safety net only
        try:
            self.close()
        except Exception:
            pass


def scan_chunks(file: EMFile, chunk_records: int, label: str = "chunk") -> ChunkScanner:
    """Scan ``file`` in chunks of up to ``chunk_records`` records.

    Leases ``chunk_records`` of memory for the duration of the iteration.
    ``chunk_records`` is rounded down to a multiple of ``B`` (at least one
    block).  Returns a :class:`ChunkScanner`; use it as a context manager
    so the lease is released deterministically even when the scan stops
    early.
    """
    return ChunkScanner(file, chunk_records, label)


def merge_sorted_files(machine: "Machine", files: list[EMFile], writer: BlockWriter) -> None:
    """Merge sorted ``files`` into ``writer`` (k-way, block-frontier method).

    Each input file must be sorted by composite order.  Memory use: one
    block buffer per input plus a gather workspace of up to ``k*B`` records
    (leased); the caller's writer holds its own block.  Choose
    ``k <= (M - 2B) / (2B)`` to be safe.

    I/O cost: exactly one read per input block and one write per output
    block — the textbook merge cost.
    """
    k = len(files)
    if k == 0:
        return
    B = machine.B
    lease = machine.memory.lease(2 * k * B, "merge-buffers")
    try:
        buffers: list[np.ndarray] = []
        next_block: list[int] = []
        for f in files:
            if f.num_blocks:
                buffers.append(f.read_block(0))
                next_block.append(1)
            else:
                buffers.append(empty_records(0))
                next_block.append(f.num_blocks)
        while True:
            # Refill any empty buffer that still has blocks.
            for i, f in enumerate(files):
                if len(buffers[i]) == 0 and next_block[i] < f.num_blocks:
                    buffers[i] = f.read_block(next_block[i])
                    next_block[i] += 1
            active = [i for i in range(k) if len(buffers[i])]
            if not active:
                break
            if len(active) == 1:
                # Single survivor: stream the rest through unchanged,
                # batching reads up to the k-block gather workspace the
                # lease already covers.
                i = active[0]
                writer.write(buffers[i])
                buffers[i] = empty_records(0)
                f = files[i]
                while next_block[i] < f.num_blocks:
                    stop = min(next_block[i] + k, f.num_blocks)
                    writer.write(f.read_range(next_block[i], stop))
                    next_block[i] = stop
                break
            # Emit everything <= the smallest frontier maximum.  Future
            # blocks of every run are >= that run's buffered maximum, so all
            # records <= threshold are currently buffered.
            threshold = min(int(composite(buffers[i][-1:])[0]) for i in active)
            gathered: list[np.ndarray] = []
            for i in active:
                comps = composite(buffers[i])
                cut = int(np.searchsorted(comps, threshold, side="right"))
                if cut:
                    gathered.append(buffers[i][:cut])
                    buffers[i] = buffers[i][cut:]
            out = machine.kernel.concat(gathered)
            cmp_search(machine, len(out), len(active))
            writer.write(machine.kernel.sort_by_composite(out))
    finally:
        lease.release()


def copy_file(machine: "Machine", file: EMFile, label: str = "copy") -> EMFile:
    """Copy ``file`` into a fresh file in ``O(N/B)`` I/Os.

    Moves data in memory-sized batches through the disk's vectorized
    path — the I/O count (one read and one write per block) is identical
    to a block-at-a-time copy.
    """
    with BlockWriter(machine, label) as writer:
        with scan_chunks(file, machine.load_limit, label) as chunks:
            for chunk in chunks:
                writer.write(chunk)
        out = writer.close()
    return out

"""External-memory machine substrate.

Implements the Aggarwal–Vitter model literally: a :class:`Machine` with
``M`` records of memory and a block device of ``B``-record blocks, exact
I/O counting, and an enforcing memory accountant.
"""

from .disk import Disk, IOCounters
from .errors import (
    BadBlockError,
    BlockSizeError,
    CounterConservationError,
    DiskError,
    DoubleFreeError,
    DoubleReleaseError,
    EMError,
    FileError,
    LeaseError,
    LeaseLeakError,
    MemoryBudgetError,
    SanitizerError,
    SpecError,
    StreamError,
    UninitializedReadError,
    UseAfterFreeError,
)
from .file import EMFile
from .kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KernelBackend,
    available_kernels,
    get_kernel,
    register_kernel,
)
from .machine import (
    Machine,
    MemoryAccountant,
    MemoryLease,
    observe_machines,
    sanitize_default,
)
from .records import (
    KEY_MAX,
    KEY_MIN,
    RECORD_DTYPE,
    UID_BITS,
    UID_MAX,
    composite,
    composite_of,
    concat_records,
    empty_records,
    make_records,
    sort_records,
)
from .streams import (
    BlockReader,
    BlockWriter,
    ChunkScanner,
    copy_file,
    merge_sorted_files,
    scan_chunks,
)

__all__ = [
    "Machine",
    "MemoryAccountant",
    "MemoryLease",
    "observe_machines",
    "KernelBackend",
    "KERNEL_ENV",
    "DEFAULT_KERNEL",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "Disk",
    "IOCounters",
    "EMFile",
    "BlockReader",
    "BlockWriter",
    "ChunkScanner",
    "scan_chunks",
    "merge_sorted_files",
    "copy_file",
    "RECORD_DTYPE",
    "KEY_MIN",
    "KEY_MAX",
    "UID_BITS",
    "UID_MAX",
    "make_records",
    "empty_records",
    "composite",
    "composite_of",
    "sort_records",
    "concat_records",
    "EMError",
    "MemoryBudgetError",
    "LeaseError",
    "DiskError",
    "BadBlockError",
    "BlockSizeError",
    "FileError",
    "StreamError",
    "SpecError",
    "SanitizerError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "UninitializedReadError",
    "LeaseLeakError",
    "DoubleReleaseError",
    "CounterConservationError",
    "sanitize_default",
]

"""The external-memory machine: disk + enforced memory budget.

A :class:`Machine` bundles a :class:`~repro.em.disk.Disk` with a
:class:`MemoryAccountant` that enforces the model's memory capacity ``M``
(measured in records).  Algorithms *lease* memory for every
data-proportional working set — block buffers, in-memory arrays, per-group
control state — and the accountant raises
:class:`~repro.em.errors.MemoryBudgetError` if the total ever exceeds ``M``.

This keeps the simulation honest: a "linear I/O" algorithm that secretly
keeps the whole input in a Python list would fail its lease.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from .disk import Disk, IOCounters
from .kernels import KernelBackend, get_kernel
from .errors import (
    DoubleReleaseError,
    LeaseError,
    LeaseLeakError,
    MemoryBudgetError,
)

__all__ = [
    "Machine",
    "MemoryAccountant",
    "MemoryLease",
    "observe_machines",
    "sanitize_default",
]

#: Environment variable that switches every new :class:`Machine` into
#: strict sanitizer mode (``EM_SANITIZE=1`` — any of 1/true/yes/on).
SANITIZE_ENV = "EM_SANITIZE"


def sanitize_default() -> bool:
    """The sanitize mode new machines inherit when not told explicitly:
    true iff ``EM_SANITIZE`` is set to ``1``/``true``/``yes``/``on``."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )

#: Callbacks invoked with every newly constructed :class:`Machine` while an
#: :func:`observe_machines` context is active.
_observers: list[Callable[["Machine"], None]] = []


@contextmanager
def observe_machines(callback: Callable[["Machine"], None]) -> Iterator[None]:
    """Invoke ``callback(machine)`` for every Machine built in the body.

    The experiment runner uses this to collect every machine an
    experiment constructs and aggregate their lifetime resource usage
    (I/Os, comparisons, memory/disk peaks) without the experiments
    having to report anything themselves.  Reentrant; observing is
    per-process (workers observe their own machines).
    """
    _observers.append(callback)
    try:
        yield
    finally:
        _observers.remove(callback)


class MemoryLease:
    """A reservation of ``size`` records of machine memory.

    Usable as a context manager; releasing twice is an error.  Leases can
    also be :meth:`resize`-d, which is convenient for buffers that grow and
    shrink during a scan.
    """

    __slots__ = ("_accountant", "_size", "_released", "label")

    def __init__(self, accountant: "MemoryAccountant", size: int, label: str) -> None:
        self._accountant = accountant
        self._size = size
        self._released = False
        self.label = label

    @property
    def size(self) -> int:
        return self._size

    @property
    def released(self) -> bool:
        return self._released

    def resize(self, new_size: int) -> None:
        """Grow or shrink the lease to ``new_size`` records."""
        if self._released:
            raise LeaseError(f"lease {self.label!r} already released")
        self._accountant._resize(self, new_size)

    def release(self) -> None:
        """Return the leased records to the pool."""
        if self._released:
            if self._accountant.sanitize:
                raise DoubleReleaseError(
                    f"lease {self.label!r} released twice"
                )
            raise LeaseError(f"lease {self.label!r} already released")
        self._accountant._release(self)
        self._released = True

    def __enter__(self) -> "MemoryLease":
        return self

    def __exit__(self, *exc) -> None:
        if not self._released:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "active"
        return f"MemoryLease({self.label!r}, size={self._size}, {state})"


class MemoryAccountant:
    """Tracks leased memory against the capacity ``M``."""

    def __init__(self, capacity: int, *, sanitize: bool = False) -> None:
        if capacity < 1:
            raise ValueError("memory capacity must be >= 1")
        self._capacity = int(capacity)
        self._in_use = 0
        self._peak = 0
        # Observer objects with an ``on_memory(in_use)`` method,
        # notified after every lease/resize/release (the span tracer
        # tracks per-span memory high-water marks through this).
        self._observers: list = []
        # Sanitize mode keeps the set of live leases so teardown can
        # name exactly which labels leaked (see Machine.close); lenient
        # mode tracks nothing.
        self._sanitize = bool(sanitize)
        self._live_leases: set[MemoryLease] = set()

    @property
    def sanitize(self) -> bool:
        """True when the strict runtime sanitizer is enabled."""
        return self._sanitize

    @property
    def live_leases(self) -> tuple["MemoryLease", ...]:
        """The currently active leases (sanitize mode only; always empty
        in lenient mode, which does not track lease identity)."""
        return tuple(self._live_leases)

    def add_observer(self, observer) -> None:
        """Register an observer: ``observer.on_memory(in_use)`` is
        called after every change to the leased total."""
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister an observer added with :meth:`add_observer`."""
        self._observers.remove(observer)

    def _notify(self) -> None:
        for obs in self._observers:
            obs.on_memory(self._in_use)

    @property
    def capacity(self) -> int:
        """Total memory in records (the model's ``M``)."""
        return self._capacity

    @property
    def in_use(self) -> int:
        """Records currently leased."""
        return self._in_use

    @property
    def available(self) -> int:
        """Records not currently leased."""
        return self._capacity - self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of leased records."""
        return self._peak

    def reset_peak(self) -> None:
        self._peak = self._in_use

    def lease(self, size: int, label: str = "") -> MemoryLease:
        """Reserve ``size`` records; raises MemoryBudgetError if over ``M``."""
        if size < 0:
            raise ValueError("lease size must be >= 0")
        if self._in_use + size > self._capacity:
            raise MemoryBudgetError(size, self._in_use, self._capacity, label)
        self._in_use += size
        self._peak = max(self._peak, self._in_use)
        if self._observers:
            self._notify()
        lease = MemoryLease(self, size, label)
        if self._sanitize:
            self._live_leases.add(lease)
        return lease

    def _resize(self, lease: MemoryLease, new_size: int) -> None:
        if new_size < 0:
            raise ValueError("lease size must be >= 0")
        delta = new_size - lease._size
        if self._in_use + delta > self._capacity:
            # Report the requested *new size* (not the delta, which can
            # even be negative) and which lease asked for it.
            raise MemoryBudgetError(
                new_size, self._in_use, self._capacity, lease.label
            )
        self._in_use += delta
        self._peak = max(self._peak, self._in_use)
        lease._size = new_size
        if self._observers:
            self._notify()

    def _release(self, lease: MemoryLease) -> None:
        self._in_use -= lease._size
        if self._sanitize:
            self._live_leases.discard(lease)
        if self._observers:
            self._notify()


class Machine:
    """An external-memory machine with memory ``M`` and block size ``B``.

    Parameters
    ----------
    memory:
        Memory capacity ``M`` in records.  Must be at least ``2 * block``
        (the model requires ``M >= 2B``).
    block:
        Block size ``B`` in records.
    sanitize:
        Enable the strict runtime sanitizer: use-after-free / double-free
        / uninitialized-read detection on the disk, double-release and
        teardown lease-leak detection on the accountant, and
        counter-conservation checking in the span tracer.  ``None`` (the
        default) inherits the process-wide :func:`sanitize_default`
        (the ``EM_SANITIZE`` environment variable).
    kernel:
        Data-movement backend for the hot paths: a registered backend
        name (``"numpy_v1"``, ``"vectorized_v2"``), a
        :class:`~repro.em.kernels.KernelBackend` instance, or ``None``
        (the default) to resolve the ``EM_KERNEL`` environment variable
        and fall back to :data:`~repro.em.kernels.DEFAULT_KERNEL`.
        Backends are byte- and counter-identical by contract; the choice
        only affects wall-clock speed and is recorded in trace metadata
        and ``results.json``.

    Examples
    --------
    >>> from repro.em import Machine
    >>> mach = Machine(memory=4096, block=64)
    >>> mach.M, mach.B, mach.fanout
    (4096, 64, 64)
    """

    def __init__(
        self,
        memory: int,
        block: int,
        *,
        sanitize: bool | None = None,
        kernel: "str | KernelBackend | None" = None,
        label: str = "",
    ) -> None:
        if block < 1:
            raise ValueError("block size B must be >= 1")
        if memory < 2 * block:
            raise ValueError("model requires M >= 2B")
        self._M = int(memory)
        self._label = str(label)
        self._B = int(block)
        if sanitize is None:
            sanitize = sanitize_default()
        self._sanitize = bool(sanitize)
        self.disk = Disk(block, sanitize=self._sanitize, kernel=get_kernel(kernel))
        self.memory = MemoryAccountant(memory, sanitize=self._sanitize)
        self._comparisons = 0
        self._lifetime_comparisons = 0
        # Observer objects with an ``on_comparisons(count)`` method,
        # notified per charge_comparisons call (the span tracer's hook).
        self._machine_observers: list = []
        for cb in list(_observers):
            cb(self)

    def add_observer(self, observer) -> None:
        """Register an observer: ``observer.on_comparisons(count)`` is
        called for every :meth:`charge_comparisons` charge.  Disk and
        memory activity have their own observer hooks
        (:meth:`Disk.add_observer <repro.em.disk.Disk.add_observer>`,
        :meth:`MemoryAccountant.add_observer`)."""
        self._machine_observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister an observer added with :meth:`add_observer`."""
        self._machine_observers.remove(observer)

    # ------------------------------------------------------------------
    # Model parameters
    # ------------------------------------------------------------------
    @property
    def M(self) -> int:
        """Memory capacity in records."""
        return self._M

    @property
    def B(self) -> int:
        """Block size in records."""
        return self._B

    @property
    def fanout(self) -> int:
        """``M / B`` — the model's branching parameter."""
        return self._M // self._B

    @property
    def label(self) -> str:
        """Optional display name (e.g. ``"shard-3"``) stamped into traces
        and metrics labels; ``""`` for anonymous machines."""
        return self._label

    @property
    def sanitize(self) -> bool:
        """True when the strict runtime sanitizer is enabled."""
        return self._sanitize

    @property
    def kernel(self) -> KernelBackend:
        """The data-movement backend this machine dispatches to.

        Algorithm code routes every record-movement primitive —
        concatenation, composite sort, bucket lookup, chunk grouping,
        rank partitioning — through this object (emlint rule R6 enforces
        it), so a backend swap changes wall-clock behaviour only.
        """
        return self.disk.kernel

    @property
    def load_limit(self) -> int:
        """Largest in-memory load an algorithm phase should attempt *now*:
        the currently unleased memory minus two block buffers (a reader
        and a writer), floored at one block.

        Adaptive rather than the static ``M - 2B`` so that composed
        algorithms — e.g. a base case running while its caller holds an
        answer-writer buffer and a small control lease — automatically
        shrink their chunk sizes instead of blowing the budget.
        """
        return max(self._B, self.memory.available - 2 * self._B)

    # ------------------------------------------------------------------
    # Accounting conveniences (delegate to the disk)
    # ------------------------------------------------------------------
    @property
    def io(self) -> IOCounters:
        """Live I/O counters."""
        return self.disk.counters

    def snapshot(self) -> IOCounters:
        """Frozen copy of the I/O counters."""
        return self.disk.snapshot()

    @property
    def comparisons(self) -> int:
        """Key comparisons performed since the last counter reset (the
        model's CPU cost; see :mod:`repro.em.comparisons`)."""
        return self._comparisons

    @property
    def lifetime_comparisons(self) -> int:
        """Cumulative comparisons over the machine's whole life — the
        analogue of :attr:`Disk.lifetime`, preserved across
        :meth:`reset_counters`."""
        return self._lifetime_comparisons

    def charge_comparisons(self, count: float) -> None:
        """Add ``count`` comparisons (rounded up) to the CPU counter."""
        import math

        charge = int(math.ceil(count))
        self._comparisons += charge
        self._lifetime_comparisons += charge
        for obs in self._machine_observers:
            obs.on_comparisons(charge)

    def reset_counters(self) -> None:
        self.disk.reset_counters()
        self._comparisons = 0

    def phase(self, label: str):
        """Context manager attributing I/Os to ``label``."""
        return self.disk.phase(label)

    def uncounted(self):
        """Context manager suspending I/O counting (setup/verification)."""
        return self.disk.uncounted()

    @contextmanager
    def measure(self, label: str = "") -> Iterator[IOCounters]:
        """Yield a counter object that, after the block exits, holds the
        I/Os and comparisons performed inside the ``with`` body.

        The result is a frozen delta: its ``by_phase`` dict is a private
        copy (mutating it never touches the live counters) and its
        ``comparisons`` field carries the CPU-cost delta alongside the
        I/Os.

        >>> mach = Machine(memory=4096, block=64)
        >>> with mach.measure() as cost:
        ...     pass
        >>> cost.total
        0
        """
        before = self.snapshot()
        cmp_before = self._comparisons
        result = IOCounters()
        try:
            if label:
                with self.disk.phase(label):
                    yield result
            else:
                yield result
        finally:
            delta = self.snapshot() - before
            result.reads = delta.reads
            result.writes = delta.writes
            result.by_phase = dict(delta.by_phase)
            result.comparisons = self._comparisons - cmp_before

    def close(self) -> None:
        """Tear the machine down, checking lease hygiene in sanitize mode.

        In sanitize mode, raises :class:`~repro.em.errors.LeaseLeakError`
        naming every still-active lease — an algorithm exited without
        releasing its working memory (a missing ``finally`` or context
        manager).  Lenient machines only verify the aggregate leased
        total is zero, and stay silent when it is.  Idempotent; also
        invoked by the ``with Machine(...) as m:`` form on exit.
        """
        if self._sanitize:
            leaked = sorted(
                (lease.label or "<unlabelled>", lease.size)
                for lease in self.memory.live_leases
            )
            if leaked:
                detail = ", ".join(
                    f"{label!r} ({size} records)" for label, size in leaked
                )
                raise LeaseLeakError(
                    f"{len(leaked)} lease(s) still active at machine "
                    f"teardown: {detail}"
                )

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception with the (inevitable)
        # leak report its early exit caused.
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(M={self._M}, B={self._B}, "
            f"io={self.io.reads}r/{self.io.writes}w, "
            f"mem={self.memory.in_use}/{self._M})"
        )

"""Error hierarchy for the external-memory machine simulator.

All simulator-level failures derive from :class:`EMError` so callers can
distinguish model violations (an algorithm asking for more memory than ``M``,
touching a freed block, ...) from ordinary Python errors in user code.
"""

from __future__ import annotations


class EMError(Exception):
    """Base class for all external-memory simulator errors."""


class MemoryBudgetError(EMError):
    """Raised when an algorithm tries to lease more than ``M`` records.

    In the Aggarwal–Vitter model the machine has exactly ``M`` words of
    memory; exceeding it means the algorithm is not a valid EM algorithm.
    The simulator enforces the budget instead of silently letting Python's
    unbounded heap hide the violation.
    """

    def __init__(
        self, requested: int, in_use: int, capacity: int, label: str = ""
    ) -> None:
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        self.label = label
        what = f"memory lease {label!r}" if label else "memory lease"
        super().__init__(
            f"{what} of {requested} records denied: "
            f"{in_use}/{capacity} records already in use"
        )


class LeaseError(EMError):
    """Raised on invalid lease lifecycle operations (double release, ...)."""


class DiskError(EMError):
    """Base class for block-device failures."""


class BadBlockError(DiskError):
    """Raised when reading/writing a block id that was never allocated
    or has already been freed."""


class BlockSizeError(DiskError):
    """Raised when writing a payload that does not fit in one block."""


class SanitizerError(EMError):
    """Base class for violations detected by the strict runtime sanitizer.

    The sanitizer (``Machine(sanitize=True)`` or ``EM_SANITIZE=1``) turns
    silent accounting hazards — touching freed blocks, leaking leases,
    counters that disagree with their span tree — into hard errors.  Every
    concrete sanitizer error *also* derives from the closest pre-existing
    error class (:class:`BadBlockError`, :class:`LeaseError`, ...), so code
    written against the lenient API keeps working when sanitize mode is on.
    """


class UseAfterFreeError(SanitizerError, BadBlockError):
    """Raised (sanitize mode) when a freed block is read, written, peeked,
    or freed through any path other than a double :meth:`Disk.free` (which
    raises the more specific :class:`DoubleFreeError`)."""


class DoubleFreeError(SanitizerError, BadBlockError):
    """Raised (sanitize mode) when :meth:`Disk.free` is asked to release a
    block that has already been freed."""


class UninitializedReadError(SanitizerError, DiskError):
    """Raised (sanitize mode) when a counted read touches a block that was
    allocated but never written — the returned garbage would silently
    poison an experiment."""


class LeaseLeakError(SanitizerError, LeaseError):
    """Raised (sanitize mode) at machine teardown (:meth:`Machine.close`)
    when memory leases are still active — a ``finally``/context-manager
    release is missing somewhere."""


class DoubleReleaseError(SanitizerError, LeaseError):
    """Raised (sanitize mode) when :meth:`MemoryLease.release` is called on
    an already-released lease."""


class CounterConservationError(SanitizerError):
    """Raised (sanitize mode) when a detaching span trace's exclusive
    counts do not sum exactly to the machine's lifetime counter deltas —
    some charge bypassed the observer hooks or a span was mutated."""


class FileError(EMError):
    """Raised on invalid :class:`~repro.em.file.EMFile` operations."""


class StreamError(EMError):
    """Raised on invalid stream usage (read past end, write after close...)."""


class SpecError(EMError):
    """Raised when problem parameters violate the paper's §1.1 preconditions
    (e.g. ``a > N/K`` or ``b < N/K``, for which no solution exists)."""

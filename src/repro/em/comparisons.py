"""Comparison counting — the model's CPU side.

The paper's model is *comparison-based*: CPU time is free, but the
information-theoretic arguments (Lemma 1, Theorem 7, the §1.2 references
to internal-memory Θ(N·lg K) bounds) all count comparisons.  The
simulator therefore tracks, alongside block I/Os, the number of
key-comparisons the algorithms perform, charged at the numpy-operation
granularity by these helpers:

* an in-memory sort of ``n`` records costs ``n·log2 n``;
* a batched binary search of ``n`` queries into ``m`` sorted values
  costs ``n·log2 m``;
* a vectorized compare/filter/merge step over ``n`` records costs ``n``;
* a median-of-5 over ``g`` groups costs ``6g`` (the classic constant).

The counts are *model costs of the operations actually executed*, so
they are exact for the decision-tree arguments; they live on the
:class:`~repro.em.machine.Machine` and reset with the I/O counters.
Charging stays deliberately outside the :mod:`~repro.em.kernels`
backends: algorithms charge here and then move bytes through
``machine.kernel``, so switching backends can never change what is
counted.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = ["cmp_sort", "cmp_search", "cmp_linear", "cmp_median5"]


def cmp_sort(machine: "Machine", n: int) -> None:
    """Charge an in-memory comparison sort of ``n`` records."""
    if n > 1:
        machine.charge_comparisons(n * math.log2(n))


def cmp_search(machine: "Machine", n_queries: int, haystack: int) -> None:
    """Charge ``n_queries`` binary searches into ``haystack`` sorted values."""
    if n_queries > 0 and haystack > 0:
        machine.charge_comparisons(n_queries * math.log2(max(2, haystack)))


def cmp_linear(machine: "Machine", n: int) -> None:
    """Charge one comparison per record (filters, merges, max-scans)."""
    if n > 0:
        machine.charge_comparisons(n)


def cmp_median5(machine: "Machine", n_records: int) -> None:
    """Charge medians-of-5 over ``n_records`` (6 comparisons per group)."""
    if n_records > 0:
        machine.charge_comparisons(6 * math.ceil(n_records / 5))

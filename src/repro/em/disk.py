"""Simulated block device with exact I/O accounting.

The disk stores fixed-size blocks of ``B`` records.  Every :meth:`Disk.read`
and :meth:`Disk.write` increments the corresponding counter — the quantity
the paper's cost model measures.  Counters can be tagged with a *phase*
label (a stack of labels, managed by :meth:`Disk.phase`) so experiments can
attribute I/Os to algorithm stages, and temporarily suspended with
:meth:`Disk.uncounted` for setup work that is outside the model (loading
the input, verification reads).

Phase labels nest: an I/O performed inside ``phase("distribute")`` which
itself runs inside ``phase("partition")`` is charged to the *joined stack
path* ``"partition/distribute"``, so composed algorithms can be rolled up
hierarchically (see :func:`repro.analysis.trace.phase_breakdown`).  I/Os
outside any phase carry the empty label ``""``.

Observers (see :meth:`Disk.add_observer`) receive a callback per counted
I/O, per phase push/pop, and per live-block-count change — the span
tracer of :mod:`repro.obs` is built on these hooks.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from .errors import (
    BadBlockError,
    BlockSizeError,
    DoubleFreeError,
    UninitializedReadError,
    UseAfterFreeError,
)
from .records import RECORD_DTYPE

if TYPE_CHECKING:  # pragma: no cover
    from .kernels import KernelBackend

__all__ = ["Disk", "IOCounters"]


@dataclass
class IOCounters:
    """A snapshot of I/O activity.

    Attributes
    ----------
    reads / writes:
        Number of block reads / writes.
    by_phase:
        ``{path: (reads, writes)}`` broken down by the full phase-stack
        path active at the time of the I/O — nested phases join with
        ``"/"`` (``"partition/distribute"``), ``""`` when none.
    comparisons:
        Key comparisons.  The disk itself never fills this (comparisons
        are charged on the :class:`~repro.em.machine.Machine`); it is
        populated by :meth:`Machine.measure
        <repro.em.machine.Machine.measure>` so one object carries a
        measurement window's full model cost.
    """

    reads: int = 0
    writes: int = 0
    by_phase: dict[str, tuple[int, int]] = field(default_factory=dict)
    comparisons: int = 0

    @property
    def total(self) -> int:
        """Total I/Os (reads + writes), the paper's cost measure."""
        return self.reads + self.writes

    def __sub__(self, other: "IOCounters") -> "IOCounters":
        phases: dict[str, tuple[int, int]] = {}
        labels = set(self.by_phase) | set(other.by_phase)
        for label in labels:
            r1, w1 = self.by_phase.get(label, (0, 0))
            r0, w0 = other.by_phase.get(label, (0, 0))
            if (r1 - r0, w1 - w0) != (0, 0):
                phases[label] = (r1 - r0, w1 - w0)
        return IOCounters(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            by_phase=phases,
            comparisons=self.comparisons - other.comparisons,
        )

    def copy(self) -> "IOCounters":
        return IOCounters(
            self.reads, self.writes, dict(self.by_phase), self.comparisons
        )


class Disk:
    """An array of blocks, each holding up to ``block_size`` records.

    Blocks are allocated with :meth:`allocate` and addressed by integer ids.
    A block read returns a *copy* of the stored records so algorithms cannot
    mutate disk state without paying a write.
    """

    def __init__(
        self,
        block_size: int,
        *,
        sanitize: bool = False,
        kernel: "KernelBackend | None" = None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._B = int(block_size)
        # Data-movement backend for the batched paths.  Accounting never
        # moves into the kernel: the disk validates, charges, and traces,
        # then hands the pure byte-shuffling to the backend.
        from .kernels import get_kernel

        self._kernel = get_kernel(kernel)
        # Strict sanitizer mode: track freed / written block ids so
        # use-after-free, double-free, and reads of never-written blocks
        # raise specific SanitizerErrors instead of the generic (or no)
        # error.  Off by default — the sets are only populated when on,
        # so lenient mode pays nothing.
        self._sanitize = bool(sanitize)
        self._freed_ids: set[int] = set()
        self._written_ids: set[int] = set()
        self._blocks: dict[int, np.ndarray] = {}
        # Physical layout hints for the batched fast path: block id ->
        # (arena array, record offset).  Blocks written in one
        # write_many batch share an arena and sit at consecutive
        # offsets, so read_many can move whole runs with a single numpy
        # slice copy.  Purely an optimization — never affects counters.
        self._origin: dict[int, tuple[np.ndarray, int]] = {}
        self._next_id = 0
        self._counters = IOCounters()
        # Cumulative reads/writes over the disk's whole life, *never*
        # cleared by :meth:`reset_counters` — experiments reset the live
        # counters per sweep point, so harness-level resource reporting
        # (the runner's per-experiment records) reads these instead.
        # Only the totals are tracked; ``by_phase`` stays empty.
        self._lifetime = IOCounters()
        self._phase_stack: list[str] = []
        # Joined stack path ("a/b/c"), cached so _charge never re-joins.
        self._phase_path = ""
        self._counting = True
        # Observer objects notified of phases, counted I/Os, and
        # live-block changes (see add_observer).  Empty in the common
        # case, so the hot paths pay one falsy check.
        self._observers: list = []
        # Lifetime high-water mark of live blocks, for space accounting.
        self._peak_blocks = 0
        # Ids of blocks ever read while counting was on — lets the
        # adversary-style experiments check "the algorithm saw every input
        # block" (§3's right-grounded argument).
        self._read_ids: set[int] = set()
        # Optional access trace: (op, block_id) per counted I/O, for
        # sequentiality / fragmentation analysis (off by default).
        self._trace: list[tuple[str, int]] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the model's ``B``)."""
        return self._B

    @property
    def sanitize(self) -> bool:
        """True when the strict runtime sanitizer is enabled."""
        return self._sanitize

    @property
    def kernel(self) -> "KernelBackend":
        """The data-movement backend serving the batched paths."""
        return self._kernel

    def _check_block(self, block_id: int, *, for_read: bool) -> None:
        """Sanitize-mode block validation (no-op when the block exists
        and, for reads, has been written at least once)."""
        if block_id in self._freed_ids:
            raise UseAfterFreeError(
                f"block {block_id} was freed and must not be "
                f"{'read' if for_read else 'written'} again"
            )
        if block_id not in self._blocks:
            raise BadBlockError(f"block {block_id} is not allocated")
        if for_read and block_id not in self._written_ids:
            raise UninitializedReadError(
                f"block {block_id} was allocated but never written; "
                f"reading it would return garbage"
            )

    @property
    def counters(self) -> IOCounters:
        """Live counters (mutating snapshot; use ``.copy()`` to freeze)."""
        return self._counters

    @property
    def live_blocks(self) -> int:
        """Number of currently allocated blocks."""
        return len(self._blocks)

    @property
    def peak_blocks(self) -> int:
        """High-water mark of allocated blocks (disk-space usage)."""
        return self._peak_blocks

    @property
    def lifetime(self) -> IOCounters:
        """Cumulative I/O counters over the disk's whole life.

        Unlike :attr:`counters`, these survive :meth:`reset_counters`
        (only totals are tracked; ``by_phase`` stays empty).  The
        experiment runner sums them across every machine an experiment
        builds to report true per-run I/O totals.
        """
        return self._lifetime

    @property
    def tracing(self) -> bool:
        """True while an access trace is being recorded (between
        :meth:`start_trace` and :meth:`stop_trace`)."""
        return self._trace is not None

    def snapshot(self) -> IOCounters:
        """Return a frozen copy of the counters."""
        return self._counters.copy()

    @property
    def phase_path(self) -> str:
        """The active phase stack joined with ``"/"`` (``""`` outside
        any phase) — the label every counted I/O is charged to."""
        return self._phase_path

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register an observer of this disk's model-visible activity.

        ``observer`` must provide four methods (the
        :class:`repro.obs.Tracer` machine hook is the canonical
        implementation):

        * ``on_phase_push(label, path)`` / ``on_phase_pop(label, path)``
          — a :meth:`phase` context was entered / exited (``path`` is
          the joined stack path including ``label``);
        * ``on_io(read: bool, count: int)`` — ``count`` I/Os were
          charged (only *counted* I/Os; :meth:`uncounted` work is
          invisible to observers, exactly as it is to the counters);
        * ``on_blocks(live: int)`` — the live-block count changed.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister an observer added with :meth:`add_observer`."""
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    # Phase tagging / counting control
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute I/Os inside the ``with`` body to ``label``.

        Phases nest: I/Os are charged to the joined stack path
        (``"outer/inner"``), so a composed algorithm's cost can be
        rolled up to any ancestor.  ``label`` must not contain ``"/"``
        (it would corrupt the path structure).
        """
        if "/" in label:
            raise ValueError(f"phase label {label!r} must not contain '/'")
        self._phase_stack.append(label)
        self._phase_path = "/".join(self._phase_stack)
        path = self._phase_path
        for obs in self._observers:
            obs.on_phase_push(label, path)
        try:
            yield
        finally:
            self._phase_stack.pop()
            self._phase_path = "/".join(self._phase_stack)
            for obs in self._observers:
                obs.on_phase_pop(label, path)

    @contextmanager
    def uncounted(self) -> Iterator[None]:
        """Suspend I/O counting (for input loading / verification only)."""
        prev = self._counting
        self._counting = False
        try:
            yield
        finally:
            self._counting = prev

    @property
    def read_block_ids(self) -> frozenset[int]:
        """Ids of blocks read (while counting) since the last reset."""
        return frozenset(self._read_ids)

    def start_trace(self) -> None:
        """Begin recording the (op, block_id) access sequence.

        Only counted I/Os are traced.  See
        :mod:`repro.analysis.access` for sequentiality analysis.
        """
        self._trace = []

    def stop_trace(self) -> list[tuple[str, int]]:
        """Stop tracing and return the recorded access sequence."""
        trace = self._trace or []
        self._trace = None
        return trace

    def reset_counters(self) -> None:
        """Zero all counters (does not touch stored blocks or the
        :attr:`lifetime` totals).

        If an access trace is active it is cleared as well, so a
        subsequent :meth:`stop_trace` returns only post-reset accesses —
        one measurement window, never a mix of two.
        """
        self._counters = IOCounters()
        self._read_ids = set()
        if self._trace is not None:
            self._trace = []

    def _charge(self, *, read: bool, count: int = 1) -> None:
        if not self._counting or count == 0:
            return
        label = self._phase_path
        r, w = self._counters.by_phase.get(label, (0, 0))
        if read:
            self._counters.reads += count
            self._lifetime.reads += count
            self._counters.by_phase[label] = (r + count, w)
        else:
            self._counters.writes += count
            self._lifetime.writes += count
            self._counters.by_phase[label] = (r, w + count)
        for obs in self._observers:
            obs.on_io(read, count)

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def allocate(self, nblocks: int = 1) -> list[int]:
        """Allocate ``nblocks`` empty blocks; returns their ids.

        Allocation itself is free (the model charges only transfers).
        """
        if nblocks < 0:
            raise ValueError("nblocks must be >= 0")
        ids = list(range(self._next_id, self._next_id + nblocks))
        self._next_id += nblocks
        empty = np.empty(0, dtype=RECORD_DTYPE)
        for bid in ids:
            self._blocks[bid] = empty
        self._peak_blocks = max(self._peak_blocks, len(self._blocks))
        for obs in self._observers:
            obs.on_blocks(len(self._blocks))
        return ids

    def free(self, block_ids: list[int]) -> None:
        """Release blocks (re-reading them afterwards is an error).

        Atomic: every id is validated (allocated, no duplicates) before
        any block is deleted, so a bad id leaves the disk unchanged.
        """
        seen: set[int] = set()
        for bid in block_ids:
            if bid not in self._blocks:
                if self._sanitize and bid in self._freed_ids:
                    raise DoubleFreeError(
                        f"block {bid} has already been freed"
                    )
                raise BadBlockError(f"block {bid} is not allocated")
            if bid in seen:
                raise BadBlockError(f"block {bid} appears twice in free list")
            seen.add(bid)
        for bid in block_ids:
            del self._blocks[bid]
            self._origin.pop(bid, None)
        if self._sanitize:
            self._freed_ids.update(seen)
            self._written_ids.difference_update(seen)
        for obs in self._observers:
            obs.on_blocks(len(self._blocks))

    def read(self, block_id: int) -> np.ndarray:
        """Read one block; counts one read I/O.  Returns a copy."""
        if self._sanitize:
            self._check_block(block_id, for_read=True)
        try:
            data = self._blocks[block_id]
        except KeyError:
            raise BadBlockError(f"block {block_id} is not allocated") from None
        self._charge(read=True)
        if self._counting:
            self._read_ids.add(block_id)
            if self._trace is not None:
                self._trace.append(("r", block_id))
        return data.copy()

    def write(self, block_id: int, data: np.ndarray) -> None:
        """Write one block; counts one write I/O.  Stores a copy."""
        if block_id not in self._blocks:
            if self._sanitize:
                self._check_block(block_id, for_read=False)
            raise BadBlockError(f"block {block_id} is not allocated")
        if data.dtype != RECORD_DTYPE:
            raise BlockSizeError("block payload must be a record array")
        if len(data) > self._B:
            raise BlockSizeError(
                f"payload of {len(data)} records exceeds block size {self._B}"
            )
        self._charge(read=False)
        if self._counting and self._trace is not None:
            self._trace.append(("w", block_id))
        stored = data.copy()
        self._blocks[block_id] = stored
        self._origin[block_id] = (stored, 0)
        if self._sanitize:
            self._written_ids.add(block_id)

    # ------------------------------------------------------------------
    # Batched block operations
    # ------------------------------------------------------------------
    def read_many(self, block_ids: Sequence[int]) -> np.ndarray:
        """Read ``k`` blocks in one call; counts ``k`` read I/Os.

        Returns one freshly allocated array holding the blocks'
        records concatenated in the given order.  The model cost and
        every piece of accounting — counters, phase attribution,
        :attr:`read_block_ids`, trace entries — are *identical* to ``k``
        successive :meth:`read` calls; only the Python-level overhead
        differs.  The byte shuffling itself is delegated to the
        machine's :attr:`kernel` backend once validation and charging
        are done.

        All ids are validated before any accounting happens, so a bad id
        raises without charging anything.  ``block_ids`` may be any
        sequence of ids, including a numpy integer array.
        """
        if len(block_ids) == 0:
            return np.empty(0, dtype=RECORD_DTYPE)
        # Validation pass: no state is touched (and nothing is charged)
        # until every id has validated (atomic).
        bmap = self._blocks
        sanitize = self._sanitize
        for bid in block_ids:
            if sanitize:
                self._check_block(bid, for_read=True)
            elif bid not in bmap:
                raise BadBlockError(f"block {bid} is not allocated")
        self._charge(read=True, count=len(block_ids))
        if self._counting:
            self._read_ids.update(int(bid) for bid in block_ids)
            if self._trace is not None:
                self._trace.extend(("r", int(bid)) for bid in block_ids)
        return self._kernel.gather_blocks(bmap, self._origin, block_ids)

    def write_many(self, block_ids: Sequence[int], data: np.ndarray) -> None:
        """Write ``k`` blocks in one call; counts ``k`` write I/Os.

        ``data`` is the concatenated payload: blocks ``0..k-2`` receive
        exactly ``B`` records each and the last block the (non-empty)
        remainder — the :class:`~repro.em.file.EMFile` layout.  Cost and
        accounting are identical to ``k`` successive :meth:`write`
        calls; the stores themselves go through the :attr:`kernel`
        backend.  All ids and the payload shape are validated before any
        block is touched or charged (atomic, like :meth:`free`).
        ``block_ids`` may be any sequence of ids, including a numpy
        integer array.
        """
        k = len(block_ids)
        if data.dtype != RECORD_DTYPE:
            raise BlockSizeError("block payload must be a record array")
        if k == 0:
            if len(data):
                raise BlockSizeError("non-empty payload with no target blocks")
            return
        B = self._B
        if len(data) > k * B:
            raise BlockSizeError(
                f"payload of {len(data)} records exceeds {k} blocks of size {B}"
            )
        if len(data) <= (k - 1) * B:
            raise BlockSizeError(
                f"payload of {len(data)} records leaves trailing blocks empty "
                f"(need more than {(k - 1) * B} records for {k} blocks)"
            )
        seen: set[int] = set()
        for bid in block_ids:
            if bid not in self._blocks:
                if self._sanitize:
                    self._check_block(bid, for_read=False)
                raise BadBlockError(f"block {bid} is not allocated")
            if bid in seen:
                raise BadBlockError(f"block {bid} appears twice in write batch")
            seen.add(int(bid))
        self._charge(read=False, count=k)
        if self._counting and self._trace is not None:
            self._trace.extend(("w", int(bid)) for bid in block_ids)
        self._kernel.scatter_blocks(
            self._blocks, self._origin, block_ids, data, B
        )
        if self._sanitize:
            self._written_ids.update(seen)

    def peek(self, block_id: int) -> np.ndarray:
        """Read a block *without* charging an I/O.

        Strictly for test/verification code; algorithms must use
        :meth:`read`.  Sanitize mode still rejects peeks of freed blocks
        (use-after-free is a data hazard even for verification reads),
        but allows peeking never-written blocks (they are simply empty).
        """
        if self._sanitize and block_id in self._freed_ids:
            raise UseAfterFreeError(
                f"block {block_id} was freed and must not be peeked"
            )
        try:
            return self._blocks[block_id].copy()
        except KeyError:
            raise BadBlockError(f"block {block_id} is not allocated") from None

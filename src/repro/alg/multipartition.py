"""Exact multi-partition in ``O((N/B)·lg_{M/B} K)`` I/Os (Aggarwal–Vitter).

Given prescribed sizes ``σ_1, ..., σ_K`` summing to ``N``, produce ordered
partitions ``P_1, ..., P_K`` with ``|P_i| = σ_i`` and every element of
``P_i`` smaller than every element of ``P_j`` for ``i < j``.

Structure (distribution sort specialized to prescribed ranks):

* Always distribute with full fanout ``f = Θ(M/B)`` using approximate
  quantile pivots (one ``O(n/B)`` sampling pass + one distribution pass).
* Recurse **only** into buckets that contain an *interior* target rank —
  buckets without one already lie entirely inside a single output
  partition and are emitted as finished segments.
* A bucket that fits in memory is cut exactly at its local ranks in one
  load.

Cost: at level ℓ the active buckets number at most ``min(K-1, f^ℓ)`` and
shrink by ``Θ(f)`` per level, so total work is
``O((N/B)·log_f K + N/B) = O((N/B)·lg_{M/B} K)`` — for small ``K`` the
recursion narrows to the rank-containing buckets and the cost telescopes
to ``O(N/B)``, matching the paper's Table 1 usage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.streams import copy_file
from .distribute import distribute_by_pivots
from .inmemory import partition_at_ranks
from .partitioned import PartitionedFile
from .sampling import approx_quantile_pivots, max_distribution_fanout
from .selection import select_rank

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["multi_partition", "multi_partition_at_ranks"]


def multi_partition(machine: "Machine", file: EMFile, sizes: list[int]) -> PartitionedFile:
    """Partition ``file`` into partitions of exactly the given ``sizes``.

    ``sizes`` may contain zeros.  The input file is left intact.
    """
    sizes = [int(s) for s in sizes]
    if any(s < 0 for s in sizes):
        raise SpecError("partition sizes must be non-negative")
    if sum(sizes) != len(file):
        raise SpecError(
            f"sizes sum to {sum(sizes)} but the file holds {len(file)} records"
        )
    boundaries = np.cumsum(sizes)[:-1] if len(sizes) > 1 else np.empty(0, dtype=int)
    with machine.phase("multipartition"):
        segments = _solve(machine, file, _interior(boundaries, len(file)), owned=False)
        return _assemble(machine, segments, sizes)


def multi_partition_at_ranks(
    machine: "Machine", file: EMFile, boundary_ranks: list[int]
) -> PartitionedFile:
    """Partition ``file`` at cumulative boundary ranks.

    ``boundary_ranks`` are the prefix sizes ``σ_1, σ_1+σ_2, ...`` —
    i.e. partition ``i`` ends after rank ``boundary_ranks[i]``.  Must be
    non-decreasing and within ``[0, N]``; a final partition covering the
    remainder is always added.
    """
    n = len(file)
    ranks = [int(r) for r in boundary_ranks]
    if any(r < 0 or r > n for r in ranks) or ranks != sorted(ranks):
        raise SpecError("boundary ranks must be non-decreasing within [0, N]")
    sizes = []
    prev = 0
    for r in ranks:
        sizes.append(r - prev)
        prev = r
    sizes.append(n - prev)
    return multi_partition(machine, file, sizes)


def _interior(boundaries: np.ndarray, n: int) -> np.ndarray:
    """Keep distinct boundary ranks strictly inside (0, n)."""
    b = np.unique(np.asarray(boundaries, dtype=np.int64))
    return b[(b > 0) & (b < n)]


def _solve(
    machine: "Machine", file: EMFile, ranks: np.ndarray, owned: bool
) -> list[EMFile]:
    """Return ordered segments such that every rank in ``ranks`` falls on a
    boundary between consecutive segments.  Frees ``file`` iff ``owned``."""
    n = len(file)
    if len(ranks) == 0:
        return [file if owned else copy_file(machine, file, "mp-copy")]

    limit = machine.load_limit
    if n <= limit:
        with machine.phase("base"):
            with machine.memory.lease(n, "mp-base"):
                # The base case only needs the rank *cuts*, not a full sort:
                # one multi-pivot partition pass, Θ(n·lg k) comparisons [7].
                data = partition_at_ranks(
                    machine, file.to_numpy(counted=True), ranks
                )
            if owned:
                file.free()
            pieces: list[EMFile] = []
            prev = 0
            for r in list(ranks) + [n]:
                pieces.append(EMFile.from_records(machine, data[prev:r], counted=True))
                prev = int(r)
            return pieces

    f = max_distribution_fanout(machine)
    with machine.phase("sample"):
        pivots = approx_quantile_pivots(machine, file, f - 1)
        if len(pivots) == 0:
            # Degenerate (cannot happen for n > limit, but stay safe): exact
            # median split via selection guarantees progress.
            pivots = np.array([select_rank(machine, file, (n + 1) // 2)])
    with machine.phase("distribute"):
        buckets = distribute_by_pivots(machine, file, pivots, "mp")
        if max(len(b) for b in buckets) >= n:
            # Pivots failed to split (all-equal composites cannot occur, so
            # this is purely defensive): force an exact median split.
            for b in buckets:
                b.free()
            mid = select_rank(machine, file, (n + 1) // 2)
            buckets = distribute_by_pivots(machine, file, np.array([mid]), "mp-med")
    if owned:
        file.free()

    segments: list[EMFile] = []
    offset = 0
    with machine.phase("recurse"):
        for bucket in buckets:
            size = len(bucket)
            if size == 0:
                bucket.free()
                continue
            local = ranks[(ranks > offset) & (ranks < offset + size)] - offset
            segments.extend(_solve(machine, bucket, local, owned=True))
            offset += size
    return segments


def _assemble(
    machine: "Machine", segments: list[EMFile], sizes: list[int]
) -> PartitionedFile:
    """Assign ordered segments to partitions with the prescribed sizes."""
    segment_partition: list[int] = []
    part = 0
    remaining = sizes[part] if sizes else 0
    for seg in segments:
        while remaining == 0 and part < len(sizes) - 1:
            part += 1
            remaining = sizes[part]
        if len(seg) > remaining:
            raise AssertionError(
                "segment straddles a partition boundary — recursion failed "
                f"to cut at a target rank (segment={len(seg)}, remaining={remaining})"
            )
        segment_partition.append(part)
        remaining -= len(seg)
    return PartitionedFile(machine, segments, segment_partition, sizes)

"""Single-rank selection in ``O(N/B)`` I/Os (external BFPRT).

The external-memory version of the Blum–Floyd–Pratt–Rivest–Tarjan
median-of-medians algorithm [3]: one scan collects the medians of groups of
five into a file Σ, a recursive call finds the median-of-medians μ, one
more scan partitions around μ, and the recursion continues on the side
containing the target rank.  ``T(n) = T(n/5) + T(7n/10 + O(1)) + O(n/B)
= O(n/B)``.

This is the ``L = 1`` special case of §4.1's intermixed selection, kept
standalone both as a substrate (the two-sided splitters algorithm uses a
single selection to split off ``S_low``) and as an independent
cross-check of the general algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_median5
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import composite, composite_of, sort_records
from ..em.streams import BlockReader, BlockWriter, scan_chunks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["select_rank", "select_rank_fast", "median_of_five_file"]


def _group_medians(chunk: np.ndarray) -> np.ndarray:
    """Medians of consecutive groups of 5 (lower median for the remainder)."""
    full = (len(chunk) // 5) * 5
    parts = []
    if full:
        groups = chunk[:full].reshape(-1, 5)
        # Pure helper: callers charge cmp_median5 (dataflow: callers-charge).
        order = np.argsort(composite(groups), axis=1)
        med = groups[np.arange(len(groups)), order[:, 2]]
        parts.append(med)
    rest = chunk[full:]
    if len(rest):
        rest = sort_records(rest)  # emlint: disable=R6 — no machine in scope for a kernel call; ≤4 records (R3 cleared by dataflow: callers charge cmp_median5)
        parts.append(rest[(len(rest) - 1) // 2 : (len(rest) - 1) // 2 + 1])
    if not parts:
        return chunk[:0]
    return np.concatenate(parts)


def median_of_five_file(machine: "Machine", file: EMFile) -> EMFile:
    """One pass: write the medians of groups of 5 to a new file (|Σ| ≈ n/5)."""
    chunk_records = machine.load_limit
    with BlockWriter(machine, "sigma") as writer:
        with scan_chunks(file, chunk_records, "mo5-chunk") as chunks:
            for chunk in chunks:
                cmp_median5(machine, len(chunk))
                writer.write(_group_medians(chunk))
        return writer.close()


def select_rank(machine: "Machine", file: EMFile, rank: int) -> np.void:
    """Return the record of (1-based) ``rank`` in the composite order.

    ``O(n/B)`` I/Os; does not modify the input file.
    """
    n = len(file)
    if not 1 <= rank <= n:
        raise SpecError(f"rank {rank} out of range for n={n}")
    with machine.phase("select"):
        return _select(machine, file, rank, owned=False)


def _select(machine: "Machine", file: EMFile, rank: int, owned: bool) -> np.void:
    n = len(file)
    limit = machine.load_limit
    if n <= limit:
        from .inmemory import select_at_ranks

        with machine.memory.lease(n, "select-base"):
            result = select_at_ranks(
                machine, file.to_numpy(counted=True), [rank]
            )[0]
        if owned:
            file.free()
        return result

    sigma = median_of_five_file(machine, file)
    mu = _select(machine, sigma, (len(sigma) + 1) // 2, owned=True)
    mu_comp = composite_of(int(mu["key"]), int(mu["uid"]))

    # Partition pass around mu; count theta = |{e <= mu}|.
    low_writer = BlockWriter(machine, "select-low")
    high_writer = BlockWriter(machine, "select-high")
    try:
        with scan_chunks(file, machine.load_limit, "select-scan") as chunks:
            for chunk in chunks:
                cmp_linear(machine, len(chunk))
                mask = composite(chunk) <= mu_comp
                low_writer.write(chunk[mask])
                high_writer.write(chunk[~mask])
    except BaseException:
        low_writer.abort()
        high_writer.abort()
        raise
    low = low_writer.close()
    high = high_writer.close()
    if owned:
        file.free()

    theta = len(low)
    if rank <= theta:
        high.free()
        return _select(machine, low, rank, owned=True)
    low.free()
    return _select(machine, high, rank - theta, owned=True)


# ----------------------------------------------------------------------
# Fast deterministic selection via bracket pivots
# ----------------------------------------------------------------------
def select_rank_fast(machine: "Machine", file: EMFile, rank: int) -> np.void:
    """Single-rank selection with a smaller constant than BFPRT.

    Still deterministic ``O(n/B)``: the sampling cascade of
    :func:`~repro.alg.sampling.approx_quantile_pivots` yields pivots with
    a *provable* rank-error bound, so two pivots whose estimated quantile
    positions straddle ``rank`` by more than that bound bracket the
    answer.  One scan then counts the records below the bracket and
    extracts the bracket zone (a small fraction of the file), and the
    recursion continues inside the zone.  Total ≈ 2.5 scans versus
    BFPRT's ≈ 8 (both linear).  Falls back to :func:`select_rank` if the
    bracket ever misses (the error bound is conservative, so this is a
    safety net, not an expected path).
    """
    n = len(file)
    if not 1 <= rank <= n:
        raise SpecError(f"rank {rank} out of range for n={n}")
    with machine.phase("select-fast"):
        return _select_fast(machine, file, rank, owned=False)


def _select_fast(machine: "Machine", file: EMFile, rank: int, owned: bool) -> np.void:
    from .sampling import approx_quantile_pivots, pivot_rank_error_bound

    n = len(file)
    limit = machine.load_limit
    if n <= limit:
        from .inmemory import select_at_ranks

        with machine.memory.lease(n, "fselect-base"):
            result = select_at_ranks(
                machine, file.to_numpy(counted=True), [rank]
            )[0]
        if owned:
            file.free()
        return result

    n_piv = 64
    oversample = 16
    err = pivot_rank_error_bound(n, n_piv, machine, oversample)
    pivots = approx_quantile_pivots(machine, file, n_piv, oversample)
    p = len(pivots)
    est = ((np.arange(1, p + 1) * n) // (p + 1)).astype(np.int64)

    lo_candidates = np.flatnonzero(est + err < rank)
    hi_candidates = np.flatnonzero(est - err >= rank)
    lo_comp = (
        composite(pivots[lo_candidates[-1] : lo_candidates[-1] + 1])[0]
        if len(lo_candidates)
        else None
    )
    hi_comp = (
        composite(pivots[hi_candidates[0] : hi_candidates[0] + 1])[0]
        if len(hi_candidates)
        else None
    )

    # One scan: count records <= lo and extract the (lo, hi] zone.
    below = 0
    zone_writer = BlockWriter(machine, "fselect-zone")
    try:
        with scan_chunks(file, machine.load_limit, "fselect-scan") as chunks:
            for chunk in chunks:
                cmp_linear(machine, 2 * len(chunk))
                comps = composite(chunk)
                if lo_comp is not None:
                    le_lo = comps <= lo_comp
                    below += int(le_lo.sum())
                else:
                    le_lo = np.zeros(len(chunk), dtype=bool)
                in_zone = ~le_lo
                if hi_comp is not None:
                    in_zone &= comps <= hi_comp
                zone_writer.write(chunk[in_zone])
    except BaseException:
        zone_writer.abort()
        raise
    zone = zone_writer.close()

    if not (below < rank <= below + len(zone)) or len(zone) >= n:
        # Bracket missed (error bound too optimistic) — fall back to BFPRT.
        zone.free()
        return _select(machine, file, rank, owned=owned)
    result = _select_fast(machine, zone, rank - below, owned=True)
    if owned:
        file.free()
    return result

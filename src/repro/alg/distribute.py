"""Multi-way distribution of a file by pivot elements.

One distribution pass reads the input once and appends every record to the
bucket determined by the pivots — the workhorse of distribution sort,
multi-partition and the memory-splitters routine.  Bucket ``i`` receives
the records in ``(p_{i-1}, p_i]`` (composite total order, with
``p_{-1} = -inf`` and ``p_{f-1} = +inf``), matching the paper's partition
convention ``P_i = S ∩ (s_{i-1}, s_i]``.

Memory: one reader block plus one writer block per bucket, all leased —
``(f+1)·B <= M`` is required and enforced by the accountant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_search
from ..em.file import EMFile
from ..em.records import composite
from ..em.streams import BlockWriter, scan_chunks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["bucket_indices", "distribute_by_pivots"]


def bucket_indices(records: np.ndarray, pivot_composites: np.ndarray) -> np.ndarray:
    """Bucket index of each record: ``#{pivots < record}``.

    ``pivot_composites`` must be sorted ascending.  A record equal to pivot
    ``p_i`` lands in bucket ``i`` (the half-open convention ``(p_{i-1}, p_i]``).
    """
    # Exported API with no in-package callers (tests and kernel backends
    # use it directly), so caller-side charging is invisible to the call
    # graph; each caller pairs it with cmp_search.
    return np.searchsorted(pivot_composites, composite(records), side="left")  # emlint: disable=R3


def distribute_by_pivots(
    machine: "Machine", file: EMFile, pivots: np.ndarray, label: str = "distribute"
) -> list[EMFile]:
    """Distribute ``file`` into ``len(pivots)+1`` bucket files in one pass.

    ``pivots`` is a record array sorted by composite order with distinct
    composites.  Returns the bucket files in order; their concatenation is
    a permutation of the input and every record of bucket ``i`` precedes
    (in the total order) every record of bucket ``i+1``.

    I/O: ``N/B`` reads plus one write per output block
    (``<= N/B + f`` writes).
    """
    pivot_comps = composite(pivots)
    if len(pivot_comps) > 1 and not np.all(np.diff(pivot_comps) > 0):
        raise ValueError("pivots must be sorted with distinct composites")
    f = len(pivots) + 1
    writers: list[BlockWriter] = []
    try:
        for i in range(f):
            writers.append(BlockWriter(machine, f"{label}-bucket{i}"))
        # Scan in memory-sized chunks (same I/O count as block-at-a-time;
        # the grouping work then runs once per chunk instead of per block).
        kernel = machine.kernel
        with scan_chunks(file, machine.load_limit, f"{label}-in") as chunks:
            for chunk in chunks:
                if len(chunk) == 0:
                    continue
                idx = kernel.bucket_of(chunk, pivot_comps)
                cmp_search(machine, len(chunk), len(pivot_comps))
                for b, group in kernel.group_by_bucket(chunk, idx):
                    writers[b].write(group)
    except BaseException:
        for w in writers:
            w.abort()
        raise
    return [w.close() for w in writers]

"""Classic external-memory algorithm substrates.

Everything the paper's contributions build on: deterministic sampling and
approximate quantile pivots, multi-way distribution, external merge sort,
linear-I/O single-rank selection (external BFPRT), and Aggarwal–Vitter
exact multi-partition.
"""

from .distribute import bucket_indices, distribute_by_pivots
from .inmemory import partition_at_ranks, select_at_ranks
from .randomized import block_sample, randomized_splitters, reservoir_sample
from .multipartition import multi_partition, multi_partition_at_ranks
from .partitioned import PartitionedFile
from .sampling import (
    OVERSAMPLE,
    approx_quantile_pivots,
    chunk_samples_to_disk,
    max_distribution_fanout,
    pick_pivots_from_sorted,
    pivot_rank_error_bound,
)
from .selection import median_of_five_file, select_rank, select_rank_fast
from .sort import external_sort, form_runs, merge_fanout, merge_runs

__all__ = [
    "bucket_indices",
    "distribute_by_pivots",
    "partition_at_ranks",
    "select_at_ranks",
    "block_sample",
    "randomized_splitters",
    "reservoir_sample",
    "multi_partition",
    "multi_partition_at_ranks",
    "PartitionedFile",
    "OVERSAMPLE",
    "approx_quantile_pivots",
    "chunk_samples_to_disk",
    "max_distribution_fanout",
    "pick_pivots_from_sorted",
    "pivot_rank_error_bound",
    "median_of_five_file",
    "select_rank",
    "select_rank_fast",
    "external_sort",
    "form_runs",
    "merge_fanout",
    "merge_runs",
]

"""Randomized sampling and Las Vegas splitters — the practical comparator.

The paper's algorithms are deterministic; production systems usually
sample.  This module implements the randomized route honestly inside the
model, so the ABL5 ablation can measure the trade:

* :func:`reservoir_sample` — an exactly-uniform sample in one scan
  (Vitter's reservoir, ``O(N/B)`` I/Os, ``s`` leased records);
* :func:`block_sample` — the cheap variant: read ``ceil(s/B)`` random
  blocks (``O(s/B)`` I/Os, but samples are *clustered by block*, which
  is exactly the bias the deterministic machinery avoids);
* :func:`randomized_splitters` — Las Vegas approximate K-splitters:
  sample (Chernoff-sized via
  :func:`~repro.bounds.probabilistic.sample_size_for_window`), take the
  sample's quantiles, then *verify* the induced bucket sizes with one
  counting scan and resample on failure.  The output is therefore always
  correct; only the cost is random (expected ``O(N/B)`` for ``δ < 1/2``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_search, cmp_sort
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import composite, empty_records
from ..em.streams import BlockReader
from ..bounds.probabilistic import sample_size_for_window
from .inmemory import select_at_ranks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["reservoir_sample", "block_sample", "randomized_splitters"]


def reservoir_sample(
    machine: "Machine", file: EMFile, size: int, seed: int = 0
) -> np.ndarray:
    """Uniform sample without replacement, one scan (Vitter's reservoir)."""
    n = len(file)
    if not 1 <= size <= n:
        raise SpecError(f"need 1 <= size <= {n}")
    rng = np.random.default_rng(seed)
    from ..em.records import RECORD_DTYPE

    with machine.memory.lease(size, "reservoir"):
        reservoir = np.empty(size, dtype=RECORD_DTYPE)
        filled = 0
        seen = 0
        with BlockReader(file, "reservoir-scan") as reader:
            for block in reader:
                start = 0
                if filled < size:
                    take = min(size - filled, len(block))
                    reservoir[filled : filled + take] = block[:take]
                    filled += take
                    seen += take
                    start = take
                rest = block[start:]
                # Algorithm R: record with global index `seen + i`
                # (0-based) replaces a uniform slot with probability
                # size / (seen + i + 1).
                m = len(rest)
                if m:
                    positions = seen + 1 + np.arange(m)
                    draws = rng.integers(0, positions)
                    hits = np.flatnonzero(draws < size)
                    for h in hits:  # sequential by definition of the process
                        reservoir[draws[h]] = rest[h]
                    seen += m
        return reservoir.copy()


def block_sample(
    machine: "Machine", file: EMFile, size: int, seed: int = 0
) -> np.ndarray:
    """Cheap clustered sample: ``ceil(size/B)`` random whole blocks.

    Costs only ``O(size/B)`` I/Os but the sample is *not* uniform over
    subsets — records in one block are perfectly correlated.  Fine for
    randomly ordered inputs, badly biased for sorted/clustered ones
    (the ABL5 ablation shows this).
    """
    n = len(file)
    if not 1 <= size <= n:
        raise SpecError(f"need 1 <= size <= {n}")
    rng = np.random.default_rng(seed)
    n_blocks = -(-size // machine.B)
    chosen = rng.choice(file.num_blocks, size=min(n_blocks, file.num_blocks),
                        replace=False)
    with machine.memory.lease(n_blocks * machine.B, "block-sample"):
        parts = [file.read_block(int(i)) for i in chosen]
        sample = machine.kernel.concat(parts)
    idx = rng.permutation(len(sample))[:size]
    return sample[idx]


def randomized_splitters(
    machine: "Machine",
    file: EMFile,
    k: int,
    a: int,
    b: int,
    delta: float = 0.05,
    seed: int = 0,
    max_attempts: int = 20,
    sampler=None,
) -> tuple[np.ndarray, int]:
    """Las Vegas approximate K-splitters via random sampling.

    Returns ``(splitters, attempts)``.  Each attempt samples
    ``sample_size_for_window(N, K, a, b, delta)`` records, takes the
    sample's ``1/K``-quantiles as candidate splitters, and *verifies*
    the induced bucket sizes in one counting scan; failures resample
    with a fresh seed.  Output correctness is unconditional; ``delta``
    only tunes the expected number of attempts.
    """
    if sampler is None:
        sampler = reservoir_sample
    n = len(file)
    if k == 1:
        return empty_records(0), 1
    # The δ-calibrated sample must be memory-resident; cap it at M/2.
    # Correctness is unaffected (the verification scan rejects bad
    # draws) — a capped sample only raises the expected attempt count.
    s = min(n, machine.M // 2, sample_size_for_window(n, k, a, b, delta))
    for attempt in range(1, max_attempts + 1):
        sample = sampler(machine, file, s, seed=seed + attempt)
        with machine.memory.lease(len(sample) + k, "rand-splitters"):
            cmp_sort(machine, len(sample))
            srt = machine.kernel.sort_by_composite(sample)
            positions = np.unique(
                np.clip(
                    np.round(np.arange(1, k) * len(srt) / k).astype(np.int64),
                    1,
                    len(srt),
                )
            )
            candidates = select_at_ranks(machine, srt, positions)
            candidates = machine.kernel.sort_by_composite(candidates)
            if len(candidates) != k - 1:
                continue  # duplicate positions from a tiny sample
            # Verification scan: exact induced bucket sizes.
            cand_comps = composite(candidates)
            sizes = np.zeros(k, dtype=np.int64)
            with BlockReader(file, "rand-verify") as reader:
                for block in reader:
                    cmp_search(machine, len(block), k)
                    j = machine.kernel.bucket_of(block, cand_comps)
                    np.add.at(sizes, j, 1)
            if sizes.min() >= a and sizes.max() <= b:
                return candidates, attempt
    raise SpecError(
        f"no valid splitters after {max_attempts} attempts — window "
        f"[{a}, {b}] too tight for sampling (use the deterministic "
        "algorithms)"
    )

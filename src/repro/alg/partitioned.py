"""Result type for materialized partitionings.

The approximate K-partitioning problem asks for the partitions "in a
linked list, where the elements of P_1 precede those of P_2, ..." with
arbitrary order inside a partition.  :class:`PartitionedFile` is the
simulator analogue: an ordered list of disk-resident *segments* whose
concatenation lists the partitions front to back, plus the assignment of
segments to partitions.  Keeping segments (rather than one contiguous
file) matches the linked-list output convention and avoids charging a
gratuitous ``O(N/B)`` concatenation; :meth:`materialize` performs that
concatenation when a consumer needs contiguity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import FileError
from ..em.file import EMFile
from ..em.records import empty_records
from ..em.streams import BlockReader, BlockWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["PartitionedFile"]


class PartitionedFile:
    """An ordered sequence of record segments grouped into partitions.

    Parameters
    ----------
    machine:
        The owning machine.
    segments:
        Disk files, in output order.  Ownership transfers to this object
        (``free()`` releases them).
    segment_partition:
        For each segment, the (0-based) index of the partition it belongs
        to; must be non-decreasing.
    partition_sizes:
        Size of every partition (zero-size partitions allowed; they simply
        have no segments).
    """

    def __init__(
        self,
        machine: "Machine",
        segments: list[EMFile],
        segment_partition: list[int],
        partition_sizes: list[int],
    ) -> None:
        if len(segments) != len(segment_partition):
            raise FileError("segments and segment_partition must be parallel")
        if any(s < 0 for s in partition_sizes):
            raise FileError("partition sizes must be non-negative")
        if segment_partition != sorted(segment_partition):
            raise FileError("segment_partition must be non-decreasing")
        sums = [0] * len(partition_sizes)
        for seg, p in zip(segments, segment_partition):
            if not 0 <= p < len(partition_sizes):
                raise FileError(f"segment assigned to invalid partition {p}")
            sums[p] += len(seg)
        if sums != list(partition_sizes):
            raise FileError(
                f"segment lengths {sums} do not match partition sizes "
                f"{list(partition_sizes)}"
            )
        self.machine = machine
        self.segments = segments
        self.segment_partition = list(segment_partition)
        self.partition_sizes = list(partition_sizes)

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partition_sizes)

    def __len__(self) -> int:
        """Total number of records across all partitions."""
        return sum(self.partition_sizes)

    def segments_of(self, partition: int) -> list[EMFile]:
        """The segments making up one partition (possibly empty)."""
        return [
            seg
            for seg, p in zip(self.segments, self.segment_partition)
            if p == partition
        ]

    # ------------------------------------------------------------------
    def to_numpy_partitions(self) -> list[np.ndarray]:
        """Materialize every partition as a numpy array — *uncounted*;
        verification use only."""
        out: list[np.ndarray] = []
        for p in range(self.num_partitions):
            parts = [seg.to_numpy(counted=False) for seg in self.segments_of(p)]  # emlint: disable=R2 — verification-only, documented uncounted
            out.append(
                self.machine.kernel.concat(parts) if parts else empty_records(0)
            )
        return out

    def materialize(self) -> tuple[EMFile, list[int]]:
        """Concatenate all segments into one contiguous file (counted,
        ``O(N/B + #segments)`` I/Os).  Returns ``(file, partition_sizes)``.
        The segments themselves are left intact."""
        with BlockWriter(self.machine, "materialize") as writer:
            for seg in self.segments:
                with BlockReader(seg, "materialize-in") as reader:
                    for block in reader:
                        writer.write(block)
            out = writer.close()
        return out, list(self.partition_sizes)

    def free(self) -> None:
        """Release every segment's disk blocks."""
        for seg in self.segments:
            seg.free()
        self.segments = []
        self.segment_partition = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedFile({self.num_partitions} partitions, "
            f"{len(self)} records, {len(self.segments)} segments)"
        )

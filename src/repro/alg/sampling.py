"""Deterministic sampling and approximate quantile pivots.

The distribution-based algorithms (external distribution of a file into
``f`` buckets, Aggarwal–Vitter-style multi-partition, the memory-splitters
routine) all need *approximate quantile pivots*: ``f-1`` elements whose
ranks are within ``O(n/f)`` of the exact ``i·n/f`` quantiles, computed in
``O(n/B)`` I/Os.

We use the classic deterministic chunk-sampling scheme:

1. scan the file in memory-sized chunks, sort each chunk in memory, and
   keep every ``q``-th element (``q = chunk//per_chunk``) — the kept
   element of local rank ``j·q`` represents the ``q`` elements below it, so
   reconstructing ranks from the union of chunk samples incurs additive
   error at most ``q`` per chunk, i.e. ``n/per_chunk`` overall;
2. if the union of samples does not fit in memory, it is staged on disk and
   the procedure recurses on the (geometrically smaller) sample file.

With ``per_chunk = OVERSAMPLE * f`` the total rank error of the returned
pivots is ``O(n/f)`` (a geometric series over the recursion levels), which
is exactly what the distribution step needs: every bucket then has size at
most ``c·n/f`` for a small constant ``c``.  The error bound is exported as
:func:`pivot_rank_error_bound` and property-tested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_sort
from ..em.file import EMFile
from ..em.streams import BlockWriter, scan_chunks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "OVERSAMPLE",
    "chunk_samples_to_disk",
    "pick_pivots_from_sorted",
    "approx_quantile_pivots",
    "pivot_rank_error_bound",
    "max_distribution_fanout",
]

#: Samples kept per chunk, as a multiple of the requested pivot count.
#: Larger values tighten the rank-error bound at the cost of a bigger
#: sample file (still a lower-order term).
OVERSAMPLE = 4


def max_distribution_fanout(machine: "Machine") -> int:
    """Largest bucket count ``f`` usable for one distribution pass.

    A distribution pass holds one reader block plus ``f`` writer blocks,
    and pivot finding needs chunks to shrink geometrically
    (``OVERSAMPLE*f <= chunk/2``), so we take the minimum of both
    constraints.  Always at least 2.
    """
    by_buffers = machine.M // (2 * machine.B) - 2
    by_sampling = machine.M // (4 * OVERSAMPLE)
    return max(2, min(by_buffers, by_sampling))


def _memory_load_limit(machine: "Machine") -> int:
    """Records an in-memory base case may load (leave room for 2 buffers)."""
    return machine.load_limit


def chunk_samples_to_disk(
    machine: "Machine", file: EMFile, per_chunk: int
) -> tuple[EMFile, int]:
    """One sampling pass: sorted every-``q``-th samples of each chunk.

    Returns ``(sample_file, q)`` where ``q`` is the uniform sampling
    spacing (each sample stands for exactly ``q`` input records; the
    per-chunk rank uncertainty).  Costs one scan of ``file`` plus writing
    the (much smaller) sample file.
    """
    if per_chunk < 1:
        raise ValueError("per_chunk must be >= 1")
    chunk_records = _memory_load_limit(machine)
    # One spacing for every chunk (derived from the full chunk size, not
    # each chunk's length): all samples then carry the same weight q, so
    # sample-space quantiles map linearly to original ranks.  A shorter
    # trailing chunk simply contributes fewer samples.
    q = max(1, min(chunk_records, len(file)) // per_chunk)
    with BlockWriter(machine, "samples") as writer:
        with scan_chunks(file, chunk_records, "sample-chunk") as chunks:
            for chunk in chunks:
                cmp_sort(machine, len(chunk))
                chunk = machine.kernel.sort_by_composite(chunk)
                # Local ranks q, 2q, ... (0-based indices q-1, 2q-1, ...).
                idx = np.arange(q - 1, len(chunk), q)
                writer.write(chunk[idx])
        sample_file = writer.close()
    return sample_file, q


def pick_pivots_from_sorted(sorted_records: np.ndarray, n_pivots: int) -> np.ndarray:
    """Pick ``n_pivots`` evenly spaced elements from a sorted array.

    Returns the elements of (1-based) rank ``round(i*n/(n_pivots+1))``;
    duplicates of *positions* are collapsed, so fewer than ``n_pivots``
    may be returned when the array is short.
    """
    n = len(sorted_records)
    if n == 0 or n_pivots <= 0:
        return sorted_records[:0]
    positions = np.round(np.arange(1, n_pivots + 1) * n / (n_pivots + 1)).astype(int)
    positions = np.clip(positions, 1, n) - 1
    positions = np.unique(positions)
    return sorted_records[positions]


def approx_quantile_pivots(
    machine: "Machine", file: EMFile, n_pivots: int, oversample: int = OVERSAMPLE
) -> np.ndarray:
    """Find ``<= n_pivots`` approximate quantile pivots of ``file``.

    I/O cost ``O(n/B)`` (a geometric series of sampling passes); the
    returned pivots are elements of the file, sorted, with rank error
    bounded by :func:`pivot_rank_error_bound`.  A larger ``oversample``
    tightens the error at the cost of slower sample-file shrinkage
    (still geometric as long as ``oversample·n_pivots ≤ chunk/2``).
    """
    n = len(file)
    limit = _memory_load_limit(machine)
    if n <= limit:
        from .inmemory import select_at_ranks

        with machine.memory.lease(n, "pivot-base"):
            positions = np.round(
                np.arange(1, n_pivots + 1) * n / (n_pivots + 1)
            ).astype(np.int64)
            positions = np.unique(np.clip(positions, 1, n))
            pivots = select_at_ranks(
                machine, file.to_numpy(counted=True), positions
            )
            cmp_sort(machine, len(pivots))
            return machine.kernel.sort_by_composite(pivots)
    per_chunk = oversample * n_pivots
    # Geometric shrinkage guard: the sample file must be at most half the
    # input, otherwise the recursion would not terminate in O(n/B).
    per_chunk = min(per_chunk, max(1, limit // 2))
    sample_file, _ = chunk_samples_to_disk(machine, file, per_chunk)
    try:
        return approx_quantile_pivots(machine, sample_file, n_pivots, oversample)
    finally:
        sample_file.free()


def pivot_rank_error_bound(
    n: int, n_pivots: int, machine: "Machine", oversample: int = OVERSAMPLE
) -> int:
    """Additive rank-error bound for :func:`approx_quantile_pivots`.

    At each sampling level the union of chunk samples reconstructs ranks
    with additive error at most (number of chunks) * (spacing q) which is
    about ``n_level / per_chunk`` in that level's units; translated back to
    original ranks every level contributes roughly ``n / per_chunk``, so the
    total is ``O(L * n / per_chunk)`` for ``L = O(log(n/M))`` levels.  We
    simulate the recursion's sizes and return a safety-factor-2 bound,
    which the property tests check empirically.
    """
    limit = _memory_load_limit(machine)
    if n <= limit:
        return 0
    per_chunk = min(oversample * n_pivots, max(1, limit // 2))
    err = 0.0
    scale = 1.0  # product of spacings of the levels above the current one
    m = n
    while m > limit:
        chunks = -(-m // limit)
        q = max(1, limit // per_chunk)
        err += scale * (chunks + 1) * q
        scale *= q
        m = m // q + chunks  # samples kept this level (upper bound)
    return int(np.ceil(2 * err)) + 1

"""External merge sort: ``O((N/B)·lg_{M/B}(N/B))`` I/Os.

The baseline both problems are measured against (§1.2: "all the above
problems can be trivially solved by sorting"), and a substrate for the
sort-based baselines.

Standard two-stage structure:

1. *Run formation* — scan the input in memory loads of ``M - 2B`` records,
   sort each in memory, write it back as a sorted run.
2. *Merge passes* — repeatedly merge groups of ``f`` runs with the
   block-frontier k-way merge until one run remains, with merge fanout
   ``f = Θ(M/B)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..em.comparisons import cmp_sort
from ..em.file import EMFile
from ..em.streams import BlockWriter, merge_sorted_files, scan_chunks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["external_sort", "form_runs", "merge_runs", "merge_fanout"]


def merge_fanout(machine: "Machine") -> int:
    """Largest merge fanout ``k``: the merge leases ``2kB`` (buffers plus
    gather workspace) and the output writer one more block."""
    return max(2, (machine.M - machine.B) // (2 * machine.B))


def form_runs(machine: "Machine", file: EMFile) -> list[EMFile]:
    """Stage 1: produce sorted runs of up to ``M - 2B`` records each."""
    run_records = machine.load_limit
    runs: list[EMFile] = []
    with machine.phase("run-formation"):
        with scan_chunks(file, run_records, "run-formation") as chunks:
            for chunk in chunks:
                cmp_sort(machine, len(chunk))
                with BlockWriter(machine, "run") as writer:
                    writer.write(machine.kernel.sort_by_composite(chunk))
                    runs.append(writer.close())
    return runs


def merge_runs(machine: "Machine", runs: list[EMFile], fanout: int | None = None) -> EMFile:
    """Stage 2: merge ``runs`` (each sorted) into a single sorted file.

    Frees the input runs.  ``fanout`` defaults to :func:`merge_fanout` and
    is clamped to it.
    """
    f = merge_fanout(machine) if fanout is None else max(2, min(fanout, merge_fanout(machine)))
    if not runs:
        with BlockWriter(machine, "empty-sort") as writer:
            return writer.close()
    current = list(runs)
    while len(current) > 1:
        nxt: list[EMFile] = []
        with machine.phase("merge-pass"):
            for start in range(0, len(current), f):
                group = current[start : start + f]
                if len(group) == 1:
                    nxt.append(group[0])
                    continue
                with BlockWriter(machine, "merge-out") as writer:
                    merge_sorted_files(machine, group, writer)
                    nxt.append(writer.close())
                for g in group:
                    g.free()
        current = nxt
    return current[0]


def external_sort(machine: "Machine", file: EMFile, fanout: int | None = None) -> EMFile:
    """Sort ``file`` by the composite total order into a new file.

    Does not modify or free the input.  Cost
    ``Θ((N/B)·(1 + ⌈log_f(N/M)⌉))`` I/Os with ``f = Θ(M/B)``, i.e. the
    model's sorting bound.
    """
    with machine.phase("sort"):
        runs = form_runs(machine, file)
        return merge_runs(machine, runs, fanout)

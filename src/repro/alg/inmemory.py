"""In-memory multiple selection — the internal-memory engine (§1.2, [7]).

Kaligosi, Mehlhorn, Munro and Sanders (ICALP 2005) showed multiple
selection takes ``Θ(N·lg K)`` comparisons in internal memory — no full
``N·lg N`` sort is needed to cut a memory load at ``K`` ranks.  The EM
algorithms' base cases only ever need rank cuts, so they run on these
helpers instead of sorting:

* :func:`partition_at_ranks` — rearrange a record array so the elements
  of each rank range ``(r_{i-1}, r_i]`` are contiguous and in global
  range order (``numpy.argpartition`` with a sorted ``kth`` list — the
  introselect multi-pivot pass);
* :func:`select_at_ranks` — the elements at the given 1-based ranks.

Both charge the model's ``N·lg K`` comparisons (see
:mod:`repro.em.comparisons`), keeping the CPU counters aligned with the
internal-memory optimum rather than the sort bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_search

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["partition_at_ranks", "select_at_ranks"]


def partition_at_ranks(
    machine: "Machine", records: np.ndarray, ranks
) -> np.ndarray:
    """Return a copy of ``records`` grouped at the given boundary ranks.

    ``ranks`` are cumulative boundaries (``0 < r < n``, any order,
    duplicates tolerated): in the result, positions ``[0, r_1)`` hold the
    ``r_1`` smallest records, ``[r_1, r_2)`` the next ``r_2 - r_1``
    smallest, and so on — each range unordered internally (exactly what a
    base-case cut needs).  ``Θ(n·lg k)`` comparisons, charged.
    """
    n = len(records)
    kth = np.unique(np.asarray(ranks, dtype=np.int64))
    kth = kth[(kth > 0) & (kth < n)]
    if n == 0 or len(kth) == 0:
        return records.copy()
    cmp_search(machine, n, len(kth) + 1)
    return machine.kernel.partition_at(records, kth - 1)


def select_at_ranks(
    machine: "Machine", records: np.ndarray, ranks
) -> np.ndarray:
    """Return the records at the given 1-based ``ranks`` (aligned with the
    input order of ``ranks``; duplicates allowed).

    ``Θ(n·lg k)`` comparisons via one multi-pivot partition pass.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(records)
    if np.any(ranks < 1) or np.any(ranks > n):
        raise ValueError(f"ranks must lie in [1, {n}]")
    if len(ranks) == 0:
        return records[:0]
    kth = np.unique(ranks) - 1
    order = machine.kernel.rank_order(records, kth)
    cmp_search(machine, n, len(kth))
    # order[kth[i]] is the element of rank kth[i]+1; map back to inputs.
    position = {int(r): int(order[r - 1]) for r in np.unique(ranks)}
    idx = np.fromiter((position[int(r)] for r in ranks), dtype=np.int64)
    return records[idx]

"""Lemma 6: L-intermixed selection runs in O(|D|/B) I/Os.

Two sweeps on the wide machine:

* fix ``L`` and grow ``|D|`` — cost per input block must stay flat
  (linearity in ``|D|``);
* fix ``|D|`` and grow ``L`` up to the supported ``m = cM`` — cost must
  *not* grow with ``L`` (the whole point of sharing scans across the L
  selection threads: a naive per-thread buffer would force ``O(M/B)``
  threads at a time).
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import ratio_stats
from ..bounds.formulas import intermixed_io
from ..core.intermixed import intermixed_select, max_groups
from ..em.records import composite, make_records
from ..workloads.generators import load_input
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []


def _instance(n: int, L: int, seed: int):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**30, size=n)
    grps = rng.integers(0, L, size=n)
    grps[:L] = np.arange(L)  # every group non-empty
    records = make_records(keys, grps=grps)
    sizes = np.bincount(grps, minlength=L)
    t = rng.integers(1, sizes + 1)
    return records, t


def _truth_check(records: np.ndarray, t: np.ndarray, answers: np.ndarray) -> bool:
    comps = composite(records)
    for i in range(len(t)):
        g = comps[records["grp"] == i]
        want = int(np.sort(g)[t[i] - 1])
        got = int(composite(answers[i : i + 1])[0])
        if got != want:
            return False
    return True


@register("LEM6", "L-intermixed selection: O(|D|/B), independent of L")
def lem6(quick: bool = False) -> ExperimentResult:
    sweep_n = [10_000, 40_000] if quick else [10_000, 20_000, 40_000, 80_000, 160_000]
    fixed_l = 64
    fixed_n = 20_000 if quick else 80_000
    sweep_l = [8, 64] if quick else [8, 16, 32, 64, 128]

    headers = ["sweep", "|D|", "L", "io", "|D|/B", "io per block"]
    rows, correct = [], []
    size_costs = []
    for n in sweep_n:
        records, t = _instance(n, fixed_l, seed=100 + n)
        mach = wide_machine()
        d = load_input(mach, records)
        ans, cost = measure_io(mach, lambda: intermixed_select(mach, d, t))
        correct.append(_truth_check(records, t, ans))
        per_block = cost / intermixed_io(n, mach.B)
        rows.append(("|D|", n, fixed_l, cost, n // mach.B, per_block))
        size_costs.append(cost)

    l_costs = []
    for L in sweep_l:
        if L > max_groups(wide_machine()):
            continue
        records, t = _instance(fixed_n, L, seed=200 + L)
        mach = wide_machine()
        d = load_input(mach, records)
        ans, cost = measure_io(mach, lambda: intermixed_select(mach, d, t))
        correct.append(_truth_check(records, t, ans))
        per_block = cost / intermixed_io(fixed_n, mach.B)
        rows.append(("L", fixed_n, L, cost, fixed_n // mach.B, per_block))
        l_costs.append(cost)

    size_stats = ratio_stats(size_costs, [n for n in sweep_n])
    checks = [
        ("all answers correct", all(correct)),
        ("linear in |D| (per-element cost flat, spread <= 2)", size_stats.spread <= 2.0),
        (
            "independent of L (max/min cost <= 1.5 across L sweep)",
            max(l_costs) / min(l_costs) <= 1.5,
        ),
    ]
    return ExperimentResult(
        exp_id="LEM6",
        title="L-intermixed selection (Lemma 6)",
        claim="the algorithm solves L-intermixed selection in O(|D|/B) I/Os",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"per-|D| linearity: {size_stats}",
            f"supported m = M/32 = {max_groups(wide_machine())} groups on the wide machine",
        ],
    )

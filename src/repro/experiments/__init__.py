"""Experiment registry: one experiment per paper claim (see DESIGN.md §5).

Importing this package registers every experiment; use
:func:`get_experiment`/:func:`all_experiments` to run them.
"""

from .base import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    measure_io,
    narrow_machine,
    register,
    wide_machine,
)
from .runner import (
    RunRecord,
    run_experiments,
    run_one,
    source_tree_hash,
    write_results_json,
)

# Import for side effect: experiment registration.
from . import (  # noqa: F401  (registration imports)
    ablations,
    hu6,
    lem5,
    lem6,
    resources,
    sec3,
    service,
    shards,
    substrate,
    t1_partitioning,
    t1_splitters,
    thm4,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "RunRecord",
    "all_experiments",
    "get_experiment",
    "measure_io",
    "narrow_machine",
    "wide_machine",
    "register",
    "run_experiments",
    "run_one",
    "source_tree_hash",
    "write_results_json",
]

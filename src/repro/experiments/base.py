"""Experiment framework shared by the CLI and the benchmark suite.

An *experiment* reproduces one claim of the paper (a Table 1 row, a
theorem, a lemma, or an ablation DESIGN.md calls out).  Running one
returns an :class:`ExperimentResult`: the sweep table (the "rows/series
the paper reports"), a set of named boolean *shape checks* (who wins, is
the measured/bound ratio flat, does the sublinear regime appear, ...)
and free-form notes.  Benchmarks assert ``result.passed``; the CLI just
prints.

Experiments accept ``quick=True`` to shrink the sweep for CI-speed runs;
the full runs are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..em.machine import Machine
from ..analysis.report import render_kv, render_table

__all__ = [
    "ExperimentResult",
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
    "wide_machine",
    "narrow_machine",
    "measure_io",
]

#: Registry of experiment id -> Experiment.
_REGISTRY: dict[str, "Experiment"] = {}


def _plain(value):
    """Coerce one table cell to a plain JSON-serializable Python scalar.

    Numpy scalars (``np.float64``, ``np.int64``, ``np.bool_``) leak into
    sweep rows naturally; coercing here makes ``to_dict`` output stable
    so a result renders byte-identically whether it came straight from
    the experiment, through a worker process, or out of the JSON cache.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    return str(value)


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    exp_id: str
    title: str
    claim: str
    headers: list[str]
    rows: list[tuple]
    checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every shape check holds."""
        return all(ok for _, ok in self.checks)

    def to_dict(self) -> dict:
        """Plain JSON-serializable dict; inverse of :meth:`from_dict`.

        Cell values are coerced to plain Python scalars so the same
        result renders byte-identically before and after a JSON
        round-trip (workers, the result cache, and ``results.json`` all
        share this format).
        """
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "claim": self.claim,
            "headers": list(self.headers),
            "rows": [[_plain(v) for v in row] for row in self.rows],
            "checks": [[name, bool(ok)] for name, ok in self.checks],
            "notes": list(self.notes),
            "passed": self.passed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (JSON-safe)."""
        return cls(
            exp_id=d["exp_id"],
            title=d["title"],
            claim=d["claim"],
            headers=list(d["headers"]),
            rows=[tuple(row) for row in d["rows"]],
            checks=[(name, bool(ok)) for name, ok in d["checks"]],
            notes=list(d["notes"]),
        )

    def render(self) -> str:
        out = [
            render_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}"),
            "",
            f"claim: {self.claim}",
        ]
        if self.checks:
            out.append("checks:")
            out.append(
                render_kv([(name, "PASS" if ok else "FAIL") for name, ok in self.checks])
            )
        for note in self.notes:
            out.append(f"note: {note}")
        out.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(out)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, description, and its runner.

    The call convention is *positional*: ``run`` is invoked as
    ``run(quick)`` everywhere (the CLI, the benchmarks, and the
    process-pool workers of :mod:`repro.experiments.runner` all go
    through :meth:`__call__`), so registered functions must accept
    ``quick`` as their first positional parameter.
    """

    exp_id: str
    title: str
    run: Callable[[bool], ExperimentResult]

    def __call__(self, quick: bool = False) -> ExperimentResult:
        return self.run(quick)


def register(exp_id: str, title: str):
    """Decorator registering ``fn(quick: bool) -> ExperimentResult``."""

    def deco(fn: Callable[[bool], ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = Experiment(exp_id, title, fn)
        return fn

    return deco


def get_experiment(exp_id: str) -> Experiment:
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def all_experiments() -> list[Experiment]:
    return [(_REGISTRY[k]) for k in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Standard machine shapes
# ----------------------------------------------------------------------
def wide_machine() -> Machine:
    """Single-pass regime: ``M/B = 64`` (``M = 4096``, ``B = 64``) —
    tall-cache (``M = B²``), large fanout, logs mostly saturate at 1."""
    return Machine(memory=4096, block=64)


def narrow_machine() -> Machine:
    """Multi-pass regime: ``M/B = 32`` with tiny blocks (``M = 512``,
    ``B = 16``) — the ``lg_{M/B}`` factors move visibly across sweeps."""
    return Machine(memory=512, block=16)


def measure_io(machine: Machine, fn: Callable[[], object]) -> tuple[object, int]:
    """Reset counters, run ``fn``, return ``(result, total I/Os)``."""
    machine.reset_counters()
    out = fn()
    return out, machine.io.total

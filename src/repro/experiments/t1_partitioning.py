"""Table 1, rows 4-6: approximate K-partitioning (right / left / two-sided).

* **T1.R4** — right-grounded: the lower bound is just Ω(N/B) (every
  element must be seen — checked literally via the touched-block set),
  the upper bound ``O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})``.
* **T1.R5** — left-grounded: ``Θ((N/B)·lg_{M/B} min{N/b, N/B})``,
  measured on the *narrow* machine so the log factor actually moves
  across the ``b`` sweep.
* **T1.R6** — two-sided: upper
  ``O((aK/B)·lg min{K, aK/B} + (N/B)·lg min{N/b, N/B})``.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant, ratio_stats
from ..analysis.verify import check_partitioned
from ..baselines.sort_based import sort_based_partition
from ..bounds.formulas import (
    partition_left_bound,
    partition_right_lower,
    partition_right_upper,
    partition_two_sided_upper,
)
from ..core.partitioning import (
    left_grounded_partition,
    right_grounded_partition,
    two_sided_partition,
)
from ..workloads.generators import load_input, random_permutation
from .base import (
    ExperimentResult,
    measure_io,
    narrow_machine,
    register,
    wide_machine,
)

__all__ = []


@register("T1.R4", "right-grounded K-partitioning: Ω(N/B), O(N/B + (aK/B)lg·)")
def t1_r4(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    records = random_permutation(n, seed=45)
    sweep = [(16, 64), (256, 16)] if quick else [(16, 64), (64, 64), (256, 64), (64, 512)]

    headers = ["K", "a", "io", "lower N/B", "upper", "io/upper", "all blocks seen"]
    rows, measured, uppers, seen_all, above_lower = [], [], [], [], []
    for k, a in sweep:
        mach = wide_machine()
        f = load_input(mach, records)
        pf, cost = measure_io(mach, lambda: right_grounded_partition(mach, f, k, a))
        check_partitioned(records, pf, a, n, k)
        pf.free()
        lower = partition_right_lower(n, mach.B)
        upper = partition_right_upper(n, k, a, mach.M, mach.B)
        saw_all = set(f.block_ids) <= mach.disk.read_block_ids
        rows.append((k, a, cost, lower, upper, cost / upper, saw_all))
        measured.append(cost)
        uppers.append(upper)
        seen_all.append(saw_all)
        above_lower.append(cost >= lower)

    stats = ratio_stats(measured, uppers)
    checks = [
        ("theta-match vs upper (spread <= 4)", stats.spread <= 4.0),
        ("measured >= Ω(N/B) lower bound", all(above_lower)),
        ("§3 adversary: every input block read", all(seen_all)),
    ]
    return ExperimentResult(
        exp_id="T1.R4",
        title="right-grounded K-partitioning",
        claim="Ω(N/B) lower; O(N/B + (aK/B)·lg_{M/B} min{K, aK/B}) upper (Sec 3, Thm 6)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"fitted constant c = {fit_constant(measured, uppers):.2f}; {stats}"],
    )


@register("T1.R5", "left-grounded K-partitioning: Θ((N/B)·lg_{M/B} min{N/b, N/B})")
def t1_r5(quick: bool = False) -> ExperimentResult:
    # Narrow machine (M/B = 32, B = 16): lg_{M/B}(N/b) moves from ~1 to >2
    # over the b sweep, so curvature mismatches would show.
    n = 16_384 if quick else 65_536
    records = random_permutation(n, seed=46)
    sweep_b = [n // 512, n // 16] if quick else [n // 2048, n // 512, n // 128, n // 16, n // 4]

    headers = ["b", "K'=⌈N/b⌉", "io", "bound", "io/bound"]
    rows, measured, bounds = [], [], []
    for bb in sweep_b:
        k = max(2, -(-n // bb))
        mach = narrow_machine()
        f = load_input(mach, records)
        pf, cost = measure_io(mach, lambda: left_grounded_partition(mach, f, k, bb))
        check_partitioned(records, pf, 0, bb, k)
        pf.free()
        bound = partition_left_bound(n, k, bb, mach.M, mach.B)
        rows.append((bb, -(-n // bb), cost, bound, cost / bound))
        measured.append(cost)
        bounds.append(bound)

    stats = ratio_stats(measured, bounds)
    checks = [
        ("theta-match (ratio spread <= 4)", stats.spread <= 4.0),
        (
            "cost decreases as b grows (more slack, fewer passes)",
            measured[0] > measured[-1],
        ),
    ]
    return ExperimentResult(
        exp_id="T1.R5",
        title="left-grounded K-partitioning",
        claim="Θ((N/B)·lg_{M/B} min{N/b, N/B}) I/Os (Thms 3, 6)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"fitted constant c = {fit_constant(measured, bounds):.2f}; {stats}",
            f"N = {n}, narrow machine M=512 B=16 (N/B = {n // 16})",
        ],
    )


@register("T1.R6", "two-sided K-partitioning: O((aK/B)lg· + (N/B)lg·)")
def t1_r6(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    records = random_permutation(n, seed=47)
    k = 64
    n_over_k = n // k
    sweep = [
        (n_over_k // 8, 8 * n_over_k),
        (n_over_k // 16, 4 * n_over_k),
        (n_over_k // 2, 8 * n_over_k),   # quantile fallback
    ]
    if quick:
        sweep = sweep[:2]

    headers = ["a", "b", "io", "upper", "io/upper", "sort io"]
    rows, measured, uppers = [], [], []
    sort_cost = None
    for a, bb in sweep:
        mach = wide_machine()
        f = load_input(mach, records)
        if sort_cost is None:
            _, sort_cost = measure_io(
                mach, lambda: sort_based_partition(mach, f, k, a, bb)
            )
            mach = wide_machine()
            f = load_input(mach, records)
        pf, cost = measure_io(mach, lambda: two_sided_partition(mach, f, k, a, bb))
        check_partitioned(records, pf, a, bb, k)
        pf.free()
        upper = partition_two_sided_upper(n, k, a, bb, mach.M, mach.B)
        rows.append((a, bb, cost, upper, cost / upper, sort_cost))
        measured.append(cost)
        uppers.append(upper)

    stats = ratio_stats(measured, uppers)
    checks = [
        ("theta-match vs upper (spread <= 4)", stats.spread <= 4.0),
        ("never slower than 2x sort baseline", max(measured) <= 2 * sort_cost),
    ]
    return ExperimentResult(
        exp_id="T1.R6",
        title="two-sided K-partitioning",
        claim="O((aK/B)·lg min{K, aK/B} + (N/B)·lg min{N/b, N/B}) I/Os (Thm 6)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"fitted constant c = {fit_constant(measured, uppers):.2f}; {stats}"],
    )

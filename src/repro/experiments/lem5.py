"""Lemma 5 and the multi-partition substrate.

Lemma 5 (proved in the paper's appendix via machine-state counting):
precise K-partitioning needs ``Ω((N/B)·lg_{M/B} min{K, N/B})`` I/Os when
``lg N ≤ B·lg(M/B)``.  We evaluate the *exact* counting bound
(``(2N lgN · C(M,B))^H ≥ N!/((N/K)!)^K``, Lemmas 7+8) for every sweep
point and check the measured cost of our Aggarwal–Vitter-style
multi-partition sits between that bound and a flat multiple of the
``O((N/B)·lg_{M/B} K)`` upper formula — i.e. the implementation is
optimal and the lower bound is not violated.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant, ratio_stats
from ..analysis.verify import check_partitioned
from ..alg.multipartition import multi_partition
from ..bounds.counting import lemma5_min_ios
from ..bounds.formulas import lemma5_condition, multipartition_io
from ..workloads.generators import load_input, random_permutation
from .base import ExperimentResult, measure_io, narrow_machine, register

__all__ = []


@register("LEM5", "precise K-partitioning: counting lower bound vs measured")
def lem5(quick: bool = False) -> ExperimentResult:
    n = 16_384 if quick else 65_536
    records = random_permutation(n, seed=49)
    sweep_k = [8, 256] if quick else [2, 8, 64, 512, 4096]

    headers = ["K", "io", "counting LB", "io/LB", "upper", "io/upper"]
    rows, measured, uppers, above_lb = [], [], [], []
    for k in sweep_k:
        mach = narrow_machine()
        f = load_input(mach, records)
        sizes = [n // k] * k
        pf, cost = measure_io(mach, lambda: multi_partition(mach, f, sizes))
        check_partitioned(records, pf, n // k, n // k, k)
        pf.free()
        lb = lemma5_min_ios(n, k, mach.M, mach.B)
        upper = multipartition_io(n, k, mach.M, mach.B)
        rows.append((k, cost, lb, cost / lb, upper, cost / upper))
        measured.append(cost)
        uppers.append(upper)
        above_lb.append(cost >= lb)

    stats = ratio_stats(measured, uppers)
    mach = narrow_machine()
    checks = [
        ("Lemma 5 precondition lgN <= B·lg(M/B)", lemma5_condition(n, mach.M, mach.B)),
        ("measured >= exact counting lower bound", all(above_lb)),
        ("theta-match vs O((N/B)·lg_{M/B} K) (spread <= 4)", stats.spread <= 4.0),
        ("cost grows with K", measured[0] < measured[-1]),
    ]
    return ExperimentResult(
        exp_id="LEM5",
        title="precise K-partitioning (Lemma 5 + Aggarwal–Vitter upper)",
        claim=(
            "Ω((N/B)·lg_{M/B} min{K, N/B}) when lgN ≤ B·lg(M/B); "
            "our distribution-based multi-partition matches the upper bound"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"fitted constant vs upper c = {fit_constant(measured, uppers):.2f}; {stats}",
            f"N = {n}, narrow machine M=512 B=16",
        ],
    )

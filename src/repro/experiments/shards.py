"""SHARDS — the coordinator/worker sharded service against one machine.

The sharded service splits the record file across ``W`` shard workers
by a sampled top-level splitter set and routes every query through the
:class:`~repro.shard.router.ShardRouter`, with all coordinator↔worker
traffic charged as block I/O on both endpoints.  Select and
range-count answers are determined by the input multiset, so sharding
must not change them: one sweep row per ``W``, each answering the same
zipfian trace as a single-machine :class:`LazyPartitionIndex` and
asserting element-identical answers.

Checks: answers identical to the single machine at every ``W``; no
record lost in distribution (shard sizes sum to ``N``); communication
is *visible* — the coordinator pays charged message I/O in both the
build and the trace phase, and the message count grows with ``W``;
the sampled splitters keep shard sizes within 2x of the mean.
"""

from __future__ import annotations

import numpy as np

from ..em.records import composite
from ..obs.metrics import MetricsRegistry, metrics_scope
from ..service import LazyPartitionIndex, Query, QueryFrontend
from ..shard import build_sharded_service
from ..workloads.generators import load_input, random_permutation
from ..workloads.queries import QUERY_TRACES
from .base import ExperimentResult, register, wide_machine

__all__ = []

_SEED = 7
_BATCH = 64
_SWEEP = [1, 2, 4, 8]


def _comm_totals(registry: MetricsRegistry) -> tuple[int, int]:
    """Total charged messages and bytes across shards and directions."""
    families = registry.to_dict()
    msgs = sum(
        c["value"]
        for c in families["svc_shard_msgs"]["children"].values()
    )
    nbytes = sum(
        c["value"]
        for c in families["svc_shard_bytes"]["children"].values()
    )
    return int(msgs), int(nbytes)


@register("SHARDS", "sharded coordinator/worker service")
def shards(quick: bool = False) -> ExperimentResult:
    n, k, q = (16_384, 32, 64) if quick else (2**18, 128, 256)
    records = random_permutation(n, seed=_SEED)
    trace = QUERY_TRACES["zipfian"](q, n, seed=_SEED, alpha=1.1)
    queries = [Query.select(int(r)) for r in trace]

    # Single-machine reference: same trace, same flush batch.
    mach = wide_machine()
    f = load_input(mach, records)
    mach.reset_counters()
    with LazyPartitionIndex(mach, f, k=k) as engine:
        single = QueryFrontend(mach, engine).run(queries, batch=_BATCH)
        single_io = mach.io.total
    f.free()
    mach.close()
    single_c = composite(np.array(single, dtype=records.dtype))

    headers = [
        "W", "coord io", "build", "trace", "msgs", "comm bytes",
        "io bal", "size bal", "identical",
    ]
    rows = []
    identity_ok = True
    conserved_ok = True
    charged_ok = True
    balance_ok = True
    msgs_by_w = []
    for w in _SWEEP:
        coord = wide_machine()
        fw = load_input(coord, records)
        coord.reset_counters()
        registry = MetricsRegistry()
        with metrics_scope(registry):
            with build_sharded_service(coord, fw, shards=w, k=k) as router:
                build_io = coord.io.total
                answers = QueryFrontend(coord, router).run(
                    queries, batch=_BATCH
                )
                trace_io = coord.io.total - build_io
                # Snapshot communication totals before the io_stats
                # round: its reply payload includes the kernel's *name*,
                # whose charged word count varies by backend and would
                # break cross-kernel result identity.
                msgs, nbytes = _comm_totals(registry)
                stats = router.shard_io_stats()
                sizes = [int(s) for s in router.shard_sizes]
        total_io = coord.io.total
        fw.free()
        coord.close()

        identical = bool(np.array_equal(
            composite(np.array(answers, dtype=records.dtype)), single_c
        ))
        shard_io = [
            int(s["lifetime_reads"] + s["lifetime_writes"]) for s in stats
        ]
        io_bal = max(shard_io) / max(1.0, float(np.mean(shard_io)))
        size_bal = max(sizes) / max(1.0, float(np.mean(sizes)))
        msgs_by_w.append(msgs)
        identity_ok &= identical
        conserved_ok &= sum(sizes) == n
        charged_ok &= msgs > 0 and build_io > 0 and trace_io > 0
        balance_ok &= size_bal <= 2.0
        rows.append((
            w, total_io, build_io, trace_io, msgs, nbytes,
            round(io_bal, 3), round(size_bal, 3),
            "yes" if identical else "NO",
        ))

    checks = [
        (
            "sharded answers identical to the single machine at every W",
            identity_ok,
        ),
        ("no record lost in distribution (shard sizes sum to N)",
         conserved_ok),
        (
            "communication charged on the coordinator in build and trace",
            charged_ok,
        ),
        (
            "charged message count grows with W",
            all(a <= b for a, b in zip(msgs_by_w, msgs_by_w[1:]))
            and msgs_by_w[-1] > msgs_by_w[0],
        ),
        ("sampled splitters keep shard sizes within 2x of the mean",
         balance_ok),
    ]
    notes = [
        f"seed = {_SEED}, zipfian-1.1 trace, flush batch = {_BATCH}, "
        f"in-process workers, wide machine",
        f"single-machine reference: {single_io:,} I/Os on the same trace",
        "coord io counts only the coordinator: splitter sampling, the "
        "distribution pass, and charged sends/receives; per-shard engine "
        "work runs on each worker's own counters",
    ]
    return ExperimentResult(
        exp_id="SHARDS",
        title="sharded coordinator/worker service",
        claim=(
            "splitter-based sharding preserves every select answer "
            "element-for-element while making all coordinator-worker "
            "communication a visible, charged I/O cost"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=notes,
    )

"""Parallel, cached, observable experiment runner.

The 20 registered experiments are embarrassingly parallel: each is a
pure function of ``(exp_id, quick)`` that builds its own
:class:`~repro.em.machine.Machine` instances.  This module fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`, captures a
structured, JSON-serializable :class:`RunRecord` per experiment (result
tables, shape checks, wall-clock, simulated I/O and comparison totals,
memory/disk peaks), and memoizes records in a content-addressed cache
keyed on ``(exp_id, quick, hash of the repro source tree)`` — so a
report regenerated after a doc-only change reruns zero experiments,
while any source edit invalidates every cached entry at once.

``repro report --jobs N [--no-cache] [--json PATH]`` and
``repro run --jobs N`` are thin CLI wrappers around
:func:`run_experiments`; ``results.json`` (see
:func:`write_results_json`) is the machine-readable companion to
EXPERIMENTS.md, so CI and benchmark trajectories can diff numbers
instead of prose.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from .base import ExperimentResult, get_experiment

__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "RunRecord",
    "default_out_dir",
    "run_experiments",
    "run_one",
    "source_tree_hash",
    "write_results_json",
]

#: Version tag embedded in every record, cache entry and results.json —
#: bump when the record format changes (stale cache entries are ignored).
RESULTS_SCHEMA_VERSION = 3


@dataclass
class RunRecord:
    """One experiment run: its result plus run-level observability.

    ``result`` is ``None`` exactly when ``error`` is set (the experiment
    raised instead of returning).  ``resources`` aggregates *lifetime*
    counters over every machine the experiment constructed (reads,
    writes, io_total, comparisons, peak_memory_records,
    peak_disk_blocks, machines) — lifetime, because experiments reset
    the live counters per sweep point.  ``spans`` is the span-path
    rollup recorded by a :class:`repro.obs.Tracer` over the same
    machines (see :func:`repro.obs.span_rollup`): ``{path: metrics}``
    with exclusive reads/writes/comparisons per joined phase path.
    """

    exp_id: str
    quick: bool
    wall_s: float
    cached: bool = False
    error: str | None = None
    result: ExperimentResult | None = None
    resources: dict | None = None
    spans: dict | None = None

    @property
    def passed(self) -> bool:
        """True iff the experiment ran and every shape check holds."""
        return self.error is None and self.result is not None and self.result.passed

    def to_result(self) -> ExperimentResult:
        """The experiment's result, or a synthetic failing one on error.

        Crashed experiments still get a section (and a FAIL verdict) in
        the generated document instead of silently disappearing.
        """
        if self.result is not None:
            return self.result
        return ExperimentResult(
            exp_id=self.exp_id,
            title="experiment crashed",
            claim="the experiment raised instead of returning a result",
            headers=["error"],
            rows=[(self.error or "unknown error",)],
            checks=[("ran to completion", False)],
        )

    def to_dict(self) -> dict:
        return {
            "schema": RESULTS_SCHEMA_VERSION,
            "exp_id": self.exp_id,
            "quick": self.quick,
            "wall_s": round(self.wall_s, 6),
            "cached": self.cached,
            "error": self.error,
            "passed": self.passed,
            "resources": self.resources,
            "spans": self.spans,
            "result": None if self.result is None else self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunRecord":
        result = d.get("result")
        return cls(
            exp_id=d["exp_id"],
            quick=bool(d["quick"]),
            wall_s=float(d["wall_s"]),
            cached=bool(d.get("cached", False)),
            error=d.get("error"),
            result=None if result is None else ExperimentResult.from_dict(result),
            resources=d.get("resources"),
            spans=d.get("spans"),
        )


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def run_one(exp_id: str, quick: bool) -> dict:
    """Run one experiment and return its record as a plain dict.

    This is the process-pool worker: it takes and returns only
    picklable/JSON-safe values.  Machines constructed by the experiment
    are collected via :func:`repro.em.machine.observe_machines` and
    their lifetime counters aggregated into the record's resources; a
    :class:`repro.obs.Tracer` installs alongside (the hook is
    reentrant) and its span-path rollup rides in the record's ``spans``.
    """
    # Ensure the registry is populated in freshly spawned workers.
    importlib.import_module("repro.experiments")
    from ..em.machine import observe_machines
    from ..obs import Tracer, span_rollup

    machines: list = []
    tracer = Tracer()
    t0 = time.perf_counter()
    result: ExperimentResult | None = None
    error: str | None = None
    try:
        with observe_machines(machines.append), tracer.install():
            result = get_experiment(exp_id)(quick)
    except Exception as exc:  # noqa: BLE001 — workers must not die
        error = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - t0
    resources = {
        "machines": len(machines),
        "reads": sum(m.disk.lifetime.reads for m in machines),
        "writes": sum(m.disk.lifetime.writes for m in machines),
        "io_total": sum(m.disk.lifetime.total for m in machines),
        "comparisons": sum(m.lifetime_comparisons for m in machines),
        "peak_memory_records": max((m.memory.peak for m in machines), default=0),
        "peak_disk_blocks": max((m.disk.peak_blocks for m in machines), default=0),
        "kernels": sorted({m.kernel.name for m in machines}),
    }
    return RunRecord(
        exp_id=exp_id,
        quick=quick,
        wall_s=wall,
        error=error,
        result=result,
        resources=resources,
        spans=span_rollup(tracer.traces),
    ).to_dict()


# ----------------------------------------------------------------------
# Content-addressed cache
# ----------------------------------------------------------------------
def source_tree_hash() -> str:
    """SHA-256 over every ``*.py`` file of the installed ``repro`` package.

    This is the cache invalidation rule: any source change — even one
    that could not affect a given experiment — invalidates every cached
    record.  Coarse but sound; doc/README/test edits leave it unchanged.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def default_out_dir() -> Path:
    """``benchmarks/out`` of the repository checkout when recognizable,
    else relative to the current directory."""
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "out"
    return Path("benchmarks") / "out"


def _active_kernel_name() -> str:
    """The kernel backend a fresh Machine would select right now."""
    from ..em.kernels import get_kernel

    return get_kernel(None).name


def _cache_key(exp_id: str, quick: bool, src_hash: str) -> str:
    # The kernel backend is part of the key: backends are byte-identical
    # by contract, but the record is *stamped* with the backend that
    # produced it, and a cache hit must not mislabel the provenance.
    raw = f"{exp_id}\0{int(quick)}\0{src_hash}\0{_active_kernel_name()}".encode()
    return hashlib.sha256(raw).hexdigest()[:32]


def _cache_path(cache_dir: Path, exp_id: str, quick: bool, src_hash: str) -> Path:
    safe_id = exp_id.replace(".", "_")
    return cache_dir / f"{safe_id}-{_cache_key(exp_id, quick, src_hash)}.json"


def _cache_load(path: Path, exp_id: str, quick: bool) -> RunRecord | None:
    try:
        d = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if (
        d.get("schema") != RESULTS_SCHEMA_VERSION
        or d.get("exp_id") != exp_id
        or bool(d.get("quick")) != quick
        or d.get("error") is not None
    ):
        return None
    record = RunRecord.from_dict(d)
    record.cached = True
    return record


def _cache_store(path: Path, record: RunRecord) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    d = record.to_dict()
    d["cached"] = False  # a stored record is, by definition, a fresh run
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(d, indent=2) + "\n")
    tmp.replace(path)


# ----------------------------------------------------------------------
# Fan-out
# ----------------------------------------------------------------------
def run_experiments(
    ids: Sequence[str],
    quick: bool = False,
    jobs: int = 1,
    *,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    progress: Callable[[RunRecord], None] | None = None,
) -> list[RunRecord]:
    """Run experiments, in parallel, with caching; returns records in
    the order of ``ids``.

    ``jobs <= 1`` runs inline (no subprocesses); otherwise experiments
    not served from cache are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor` of ``jobs``
    workers.  ``progress`` (if given) is called with each
    :class:`RunRecord` as it completes — completion order, not ``ids``
    order.  Unknown ids raise ``KeyError`` before anything runs.
    Experiments that *raise* produce an ``error`` record (never cached)
    instead of aborting the batch.
    """
    ids = list(ids)
    for exp_id in ids:  # eager validation, and a cheap duplicate guard
        get_experiment(exp_id)
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate experiment ids in {ids!r}")

    src_hash = source_tree_hash() if cache else ""
    cache_root = Path(cache_dir) if cache_dir is not None else default_out_dir() / "cache"

    records: dict[str, RunRecord] = {}
    to_run: list[str] = []
    for exp_id in ids:
        hit = None
        if cache:
            hit = _cache_load(
                _cache_path(cache_root, exp_id, quick, src_hash), exp_id, quick
            )
        if hit is not None:
            records[exp_id] = hit
            if progress is not None:
                progress(hit)
        else:
            to_run.append(exp_id)

    def finish(record: RunRecord) -> None:
        records[record.exp_id] = record
        if cache and record.error is None:
            _cache_store(
                _cache_path(cache_root, record.exp_id, quick, src_hash), record
            )
        if progress is not None:
            progress(record)

    if jobs <= 1 or len(to_run) <= 1:
        for exp_id in to_run:
            finish(RunRecord.from_dict(run_one(exp_id, quick)))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(to_run))) as pool:
            pending = {pool.submit(run_one, exp_id, quick) for exp_id in to_run}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(RunRecord.from_dict(future.result()))

    return [records[exp_id] for exp_id in ids]


def write_results_json(
    records: Sequence[RunRecord],
    path: str | Path,
    *,
    jobs: int = 1,
) -> Path:
    """Write the machine-readable results file for a batch of records.

    Schema (version :data:`RESULTS_SCHEMA_VERSION`): a top-level object
    with ``schema``, ``src_hash`` (cache key component), ``kernel`` (the
    active kernel backend), ``jobs``, ``quick``, ``total_wall_s``,
    ``passed``, and ``experiments`` — one
    :meth:`RunRecord.to_dict` per experiment, in document order.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": RESULTS_SCHEMA_VERSION,
        "src_hash": source_tree_hash(),
        "kernel": _active_kernel_name(),
        "jobs": jobs,
        "quick": all(r.quick for r in records),
        "total_wall_s": round(sum(r.wall_s for r in records), 6),
        "passed": all(r.passed for r in records),
        "experiments": [r.to_dict() for r in records],
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out

"""HU6: the memory-splitters building block (substituted Hu et al. [6]).

The multi-selection base case consumes [6] through a three-part
interface: linear I/O, Θ(M) splitters, every induced partition of size
``Θ(N/M)``.  This experiment validates exactly that interface across an
``N`` sweep and several workloads (including heavy duplication), so the
substitution argument in DESIGN.md rests on measured evidence.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import ratio_stats
from ..analysis.verify import induced_partition_sizes
from ..bounds.formulas import scan_io
from ..core.memory_splitters import (
    SIZE_LOWER_FACTOR,
    SIZE_UPPER_FACTOR,
    memory_splitters,
)
from ..workloads.generators import few_distinct, load_input, random_permutation, zipf_like
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []


@register("HU6", "memory-splitters: Θ(M) splitters in O(N/B), sizes Θ(N/M)")
def hu6(quick: bool = False) -> ExperimentResult:
    sweep_n = [20_000, 80_000] if quick else [20_000, 40_000, 80_000, 160_000]
    workloads = [("perm", random_permutation)]
    if not quick:
        workloads += [("zipf", zipf_like), ("few-distinct", few_distinct)]

    headers = ["workload", "N", "io", "io/(N/B)", "splitters", "min/avg", "max/avg"]
    rows, per_block, factors_ok = [], [], []
    for wname, gen in workloads:
        for n in sweep_n:
            records = gen(n, seed=300 + n)
            mach = wide_machine()
            f = load_input(mach, records)
            splitters, cost = measure_io(mach, lambda: memory_splitters(mach, f))
            sizes = induced_partition_sizes(records, splitters)
            p = len(splitters) + 1
            avg = n / p
            lo, hi = sizes.min() / avg, sizes.max() / avg
            pb = cost / scan_io(n, mach.B)
            rows.append((wname, n, cost, pb, len(splitters), lo, hi))
            per_block.append(pb)
            factors_ok.append(
                lo >= SIZE_LOWER_FACTOR and hi <= SIZE_UPPER_FACTOR
            )

    stats = ratio_stats(per_block, np.ones(len(per_block)))
    checks = [
        ("linear I/O (per-block cost flat, spread <= 2)", stats.spread <= 2.0),
        (
            f"partition sizes within [{SIZE_LOWER_FACTOR:.3f}, "
            f"{SIZE_UPPER_FACTOR:.1f}] x N/P",
            all(factors_ok),
        ),
    ]
    return ExperimentResult(
        exp_id="HU6",
        title="memory-splitters building block",
        claim=(
            "Θ(M) approximate splitters with partition sizes Θ(N/M) in "
            "O(N/B) I/Os — the interface the multi-selection base case "
            "borrows from Hu et al. [6]"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"per-block cost: {stats}; wide machine, P = M/8 = 512 target buckets"],
    )

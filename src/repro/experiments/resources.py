"""CMP and SPACE: the model's secondary resources.

The paper's cost measure is block I/Os, but its arguments live in the
*comparison-based* model (Lemma 1 counts comparisons' outcomes) and its
algorithms implicitly use O(N/B) working disk space.  These experiments
report both secondary resources for every major algorithm:

* **CMP** — comparisons performed (charged at the operation granularity,
  see :mod:`repro.em.comparisons`).  Shows the CPU/I-O trade the model
  allows: BFPRT selection is comparison-lean, the bracket variant spends
  comparisons (free in the model) to save I/Os, Theorem 4's
  multi-selection does O(log M) comparisons per element rather than the
  O(log N) of sorting.
* **SPACE** — peak disk blocks allocated (input + working files),
  checked to be a flat small multiple of N/B.
"""

from __future__ import annotations

import math

import numpy as np

from ..alg.multipartition import multi_partition
from ..alg.selection import select_rank, select_rank_fast
from ..alg.sort import external_sort
from ..core.multiselect import multi_select
from ..workloads.generators import load_input, random_permutation
from .base import ExperimentResult, register, wide_machine

__all__ = []


def _algorithms(n: int):
    ranks = np.linspace(1, n, 8).astype(np.int64)
    return [
        ("external-sort", lambda mach, f: external_sort(mach, f)),
        ("select-bfprt", lambda mach, f: select_rank(mach, f, n // 2)),
        ("select-fast", lambda mach, f: select_rank_fast(mach, f, n // 2)),
        ("multiselect-K8", lambda mach, f: multi_select(mach, f, ranks)),
        (
            "multipartition-K8",
            lambda mach, f: multi_partition(mach, f, [n // 8] * 8),
        ),
    ]


@register("CMP", "comparison counts: the model's free CPU, measured")
def cmp_experiment(quick: bool = False) -> ExperimentResult:
    n = 20_000 if quick else 80_000
    records = random_permutation(n, seed=70)

    headers = ["algorithm", "io", "comparisons", "cmp per element", "cmp / N·lgN"]
    rows = {}
    for name, fn in _algorithms(n):
        mach = wide_machine()
        f = load_input(mach, records)
        mach.reset_counters()
        out = fn(mach, f)
        if hasattr(out, "free"):
            out.free()
        rows[name] = (
            name,
            mach.io.total,
            mach.comparisons,
            mach.comparisons / n,
            mach.comparisons / (n * math.log2(n)),
        )

    # Per-element comparison scaling of multi-selection: O(log M), so flat
    # in N at fixed M (unlike sorting's log N growth).
    per_elem = []
    for nn in ([8_000, 32_000] if quick else [20_000, 80_000]):
        mach = wide_machine()
        f = load_input(mach, random_permutation(nn, seed=71))
        mach.reset_counters()
        multi_select(mach, f, np.linspace(1, nn, 8).astype(np.int64))
        per_elem.append(mach.comparisons / nn)

    checks = [
        (
            "BFPRT selection is comparison-lean (below sorting)",
            rows["select-bfprt"][2] < rows["external-sort"][2],
        ),
        (
            "fast selection trades comparisons for I/O (fewer I/Os than BFPRT)",
            rows["select-fast"][1] < rows["select-bfprt"][1],
        ),
        (
            "selection comparisons are O(N) (<= 30 per element)",
            rows["select-bfprt"][3] <= 30,
        ),
        (
            "multiselect comparisons per element flat in N (O(log M))",
            per_elem[1] <= 1.5 * per_elem[0],
        ),
    ]
    return ExperimentResult(
        exp_id="CMP",
        title="comparison counts (the comparison-based model's CPU side)",
        claim=(
            "CPU is free in the EM model; the counters make the trade "
            "visible — selection is O(N) comparisons, multi-selection "
            "O(N·log M), sorting Θ(N·log N)"
        ),
        headers=headers,
        rows=list(rows.values()),
        checks=checks,
        notes=[
            f"N = {n}, wide machine; multiselect per-element comparisons "
            f"across N sweep: {per_elem[0]:.1f} -> {per_elem[1]:.1f}",
        ],
    )


@register("SEQ", "access patterns: how many of the model's I/Os are seeks")
def seq_experiment(quick: bool = False) -> ExperimentResult:
    """Sequential vs random access per algorithm.

    The EM model prices all transfers equally; on real storage the
    *pattern* matters.  The simulated disk allocates log-structured
    (writes always append, so write sequentiality is ~1 by construction);
    fragmentation therefore shows up on the **read** side: a pure scan is
    fully sequential, the k-way merge alternates across runs, and the
    distribution recursion re-reads interleaved bucket files.
    """
    from ..analysis.access import access_stats

    n = 20_000 if quick else 80_000
    records = random_permutation(n, seed=73)

    def run_traced(fn):
        mach = wide_machine()
        f = load_input(mach, records)
        mach.disk.start_trace()
        if fn is None:
            for i in range(f.num_blocks):
                f.read_block(i)
        else:
            out = fn(mach, f)
            if hasattr(out, "free"):
                out.free()
        return access_stats(mach.disk.stop_trace())

    headers = [
        "algorithm", "reads", "read seq", "read mean run",
        "writes", "write seq",
    ]
    rows = {}
    rows["scan"] = run_traced(None)
    for name, fn in _algorithms(n):
        rows[name] = run_traced(fn)

    table = [
        (
            name, s.reads, s.read_sequentiality, s.read_mean_run,
            s.writes, s.write_sequentiality,
        )
        for name, s in rows.items()
    ]
    checks = [
        ("a pure scan is fully sequential", rows["scan"].read_sequentiality >= 0.999),
        (
            "merge-sort reads alternate across runs (seq < 0.9)",
            rows["external-sort"].read_sequentiality < 0.9,
        ),
        (
            "selection stays mostly sequential (seq >= 0.9)",
            rows["select-fast"].read_sequentiality >= 0.9,
        ),
        (
            "log-structured writes are sequential everywhere",
            all(s.write_sequentiality >= 0.95 for s in rows.values() if s.writes),
        ),
    ]
    return ExperimentResult(
        exp_id="SEQ",
        title="access patterns (seeks vs scans)",
        claim=(
            "the model's I/Os differ in kind: scans and selections stream, "
            "merges and distribution recursions seek — relevant when "
            "mapping the bounds onto real storage"
        ),
        headers=headers,
        rows=table,
        checks=checks,
        notes=[
            f"N = {n}, wide machine; writes append (log-structured "
            "allocation), so fragmentation shows on the read side",
        ],
    )


@register("SPACE", "working disk space: O(N/B) blocks for every algorithm")
def space_experiment(quick: bool = False) -> ExperimentResult:
    sweep_n = [10_000, 40_000] if quick else [10_000, 40_000, 160_000]

    headers = ["algorithm", "N", "peak blocks", "input blocks", "peak/(N/B)"]
    rows, factors = [], {}
    for n in sweep_n:
        records = random_permutation(n, seed=72)
        for name, fn in _algorithms(n):
            mach = wide_machine()
            f = load_input(mach, records)
            out = fn(mach, f)
            if hasattr(out, "free"):
                out.free()
            factor = mach.disk.peak_blocks / f.num_blocks
            rows.append((name, n, mach.disk.peak_blocks, f.num_blocks, factor))
            factors.setdefault(name, []).append(factor)

    checks = [
        (
            "every algorithm uses O(N/B) disk space (peak <= 5x input)",
            all(max(v) <= 5.0 for v in factors.values()),
        ),
        (
            "space factor flat across N (spread <= 1.7 per algorithm)",
            all(max(v) <= 1.7 * min(v) for v in factors.values()),
        ),
    ]
    return ExperimentResult(
        exp_id="SPACE",
        title="working disk space",
        claim="all algorithms run in O(N/B) blocks of disk space",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=["peak includes the input's own N/B blocks"],
    )

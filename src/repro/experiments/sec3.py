"""§3 reduction: precise partitioning from approximate partitioning.

The left-grounded partitioning lower bound rests on the reduction
"approximate K-partitioning (sizes ≤ b) + O(N/B) sweep = precise
(N/b)-partitioning".  We run the reduction end to end and check its two
quantitative ingredients:

* the sweep's own cost is ``O(N/B)`` — flat per-block across ``b``;
* the reduction's total cost tracks the precise-(N/b)-partitioning
  bound, i.e. approximate partitioning really is as hard as precise
  partitioning at granularity ``b`` (Theorem 3's message).

The sweep is exercised with both our real left-grounded solver and a
deliberately *unbalanced* approximate solver (all partitions as uneven
as legality allows) to show the residue-buffer argument does not depend
on balance.
"""

from __future__ import annotations

from ..analysis.fit import ratio_stats
from ..analysis.trace import phase_total
from ..analysis.verify import check_partitioned
from ..alg.multipartition import multi_partition
from ..bounds.formulas import partition_left_bound, scan_io
from ..core.reduction import precise_partition_via_approx
from ..em.errors import SpecError
from ..workloads.generators import load_input, random_permutation
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []


def _unbalanced_solver(machine, file, k, b):
    """A legal but maximally uneven approximate partitioner: alternating
    full-b and tiny partitions (sizes ≤ b, left-grounded)."""
    n = len(file)
    sizes = []
    remaining = n
    while remaining > 0:
        take = min(b, remaining)
        sizes.append(take)
        remaining -= take
        if remaining > 0:
            small = min(max(1, b // 8), remaining)
            sizes.append(small)
            remaining -= small
    return multi_partition(machine, file, sizes)


@register("SEC3", "reduction: approx partitioning + O(N/B) sweep = precise partitioning")
def sec3(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    records = random_permutation(n, seed=50)
    # The last point has 2b > M, exercising the disk-resident residue path.
    sweep_b = [n // 96, n // 6] if quick else [n // 384, n // 96, n // 24, n // 6]

    headers = [
        "solver", "b", "residue", "total io", "sweep io",
        "sweep io/(N/B)", "bound", "io/bound",
    ]
    rows, total = [], []
    mem_sweep, ext_sweep = [], []
    for solver_name, solver in [("ours", None), ("unbalanced", _unbalanced_solver)]:
        for bb in sweep_b:
            mach = wide_machine()
            f = load_input(mach, records)
            pf, cost = measure_io(
                mach,
                lambda: precise_partition_via_approx(
                    mach, f, bb, approx_solver=solver
                ),
            )
            check_partitioned(records, pf, bb, bb, n // bb)
            pf.free()
            sweep_io = phase_total(mach.io, "reduction-sweep")
            per_block = sweep_io / scan_io(n, mach.B)
            in_memory = 2 * bb + 3 * mach.B <= mach.M
            (mem_sweep if in_memory else ext_sweep).append(per_block)
            bound = partition_left_bound(n, n // bb, bb, mach.M, mach.B)
            rows.append(
                (
                    solver_name, bb, "memory" if in_memory else "disk",
                    cost, sweep_io, per_block, bound, cost / bound,
                )
            )
            total.append((cost, bound, in_memory))

    # Judge Θ-flatness per residue regime: the disk-resident path has a
    # legitimately larger (but still flat) constant.
    mem_pts = [(c, b) for c, b, m in total if m]
    disk_pts = [(c, b) for c, b, m in total if not m]
    mem_stats = ratio_stats([c for c, _ in mem_pts], [b for _, b in mem_pts])
    checks = [
        (
            "memory-residue sweep <= 4 block-passes",
            bool(mem_sweep) and max(mem_sweep) <= 4.0,
        ),
        (
            "disk-residue sweep still O(N/B) (<= 25 block-passes; each of "
            "the N/b rounds moves <= 2b records a constant number of times)",
            not ext_sweep or max(ext_sweep) <= 25.0,
        ),
        (
            "memory-regime totals track the bound (spread <= 4)",
            mem_stats.spread <= 4.0,
        ),
        ("output partitions exactly b (validated)", True),
    ]
    if disk_pts:
        disk_stats = ratio_stats(
            [c for c, _ in disk_pts], [b for _, b in disk_pts]
        )
        checks.append(
            (
                "disk-regime totals track the bound (spread <= 4)",
                disk_stats.spread <= 4.0,
            )
        )
    stats = mem_stats
    return ExperimentResult(
        exp_id="SEC3",
        title="§3 reduction to precise partitioning",
        claim=(
            "any approximate K-partitioning solver with sizes ≤ b yields "
            "precise (N/b)-partitioning with O(N/B) extra I/Os — hence "
            "Theorem 3's lower bound"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"total-cost ratio: {stats}; N = {n}, wide machine"],
    )

"""Generate EXPERIMENTS.md from a full harness run.

``python -m repro report [--quick] [--out EXPERIMENTS.md]`` runs every
registered experiment and writes the measured-vs-bound document — the
same file checked into the repository, so the recorded results are
reproducible by one command.

Experiments execute through :mod:`repro.experiments.runner` (parallel
fan-out and result caching); this module owns only the presentation —
ordering, commentary, and rendering.  The document is a pure function of
the results, so a parallel run renders byte-identically to a serial one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from .base import ExperimentResult, all_experiments

__all__ = [
    "COMMENTARY",
    "DEFAULT_ORDER",
    "generate_experiments_md",
    "write_experiments_md",
]

#: Per-experiment "paper claim vs what we measured" commentary, keyed by
#: experiment id.  Experiments without an entry get a generic header.
COMMENTARY: dict[str, str] = {
    "T1.R1": """**Paper claim.** Theorems 1 and 5: right-grounded K-splitters cost
`Θ((1 + aK/B)·lg_{M/B}(K/B))` — *sublinear* in N when `aK ≪ N` (all prior
EM lower-bound machinery was inherently linear; §1.3 highlights this).

**Measured.** The measured/bound ratio is flat where the full algorithm
runs (`aK > M`); every point with `aK ≤ N/16` costs less than one scan
and touches a minority of input blocks; the measured cost respects
Theorem 1's *exact* counting lower bound (no asymptotics) and the
seen-elements argument (≥ aK/B blocks read) on every run.""",
    "T1.R2": """**Paper claim.** Theorems 2 and 5: left-grounded K-splitters cost
`Θ((N/B)·lg_{M/B}(N/(bB)))`, falling toward one scan as `b` grows; the
lower bound is proved on the Π_hard permutation family (§2.1).

**Measured.** Cost is monotone non-increasing in `b` with a flat
measured/bound ratio; Π_hard inputs cost the same as random ones
(worst-case algorithm); measured I/O respects Theorem 2's exact counting
lower bound; the largest-b point beats the sort baseline outright.""",
    "T1.R3": """**Paper claim.** Two-sided splitters cost the sum
`Θ((1+aK/B)·lg(K/B) + (N/B)·lg(N/(bB)))` (Theorems 1, 2, 5) via the
S_low/S_high split at `K' = ⌊(bK-N)/(b-a)⌋`, with a plain-quantile
fallback when `a ≥ N/2K` or `b ≤ 2N/K`.

**Measured.** Flat Θ-ratio across both regimes; both code paths
exercised; the paper's correctness assertions (`K' ∈ [1, K-1]`,
`|S_high| ∈ [a(K-K'), b(K-K')]`) hold on every run in the suite.""",
    "T1.R4": """**Paper claim.** §3 + Theorem 6: right-grounded partitioning is
Ω(N/B) — any algorithm must *see every element* — with upper bound
`O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})`.

**Measured.** The simulator's touched-block set shows every input block
read on every run (the adversary argument, checked literally); measured
cost exceeds the lower bound and is a flat multiple of the upper.""",
    "T1.R5": """**Paper claim.** Theorems 3 and 6: left-grounded partitioning is
`Θ((N/B)·lg_{M/B} min{N/b, N/B})` — K plays no role, only the
granularity `N/b` (the §3 reduction explains why).

**Measured.** On the narrow machine, where the log factor moves from
~2.3 to 1 across the sweep, measured cost falls accordingly with a flat
Θ-ratio.""",
    "T1.R6": """**Paper claim.** Theorem 6: two-sided partitioning costs
`O((aK/B)·lg min{K, aK/B} + (N/B)·lg min{N/b, N/B})`.

**Measured.** Flat ratio to the upper bound across the (a, b) sweep,
including the quantile-fallback regime.""",
    "THM4": """**Paper claim.** Theorem 4 (the paper's main algorithmic result):
multi-selection costs `Θ((N/B)·lg_{M/B}(K/B))` — optimal, closing the
Arge–Knudsen–Larsen gap — and is *separated* from multi-partition
(`Θ((N/B)·lg_{M/B} K)`) for small K, with equal hardness for large K.

**Measured.** Both implementations are flat multiples of their own
bounds; repeated selection loses ~5x already at K = 4; the two routes
stay within ~2x of each other (equal-hardness ballpark).  The separation
is reproduced at the *bound* level: at this machine shape the separation
factor tops out around 1.7x — below the ~2x constant gap between the two
implementations — so a raw measured win is out of reach at simulation
scale.  (The ratio of the two bounds is independent of N, so no N makes
it measurable here; the paper claims asymptotics in M/B and K, not
constants.)""",
    "LEM6": """**Paper claim.** Lemma 6: §4.1 solves L-intermixed selection in
`O(|D|/B)` I/Os — independent of L, because the L concurrent BFPRT
threads share scans with O(1) words of state each.

**Measured.** Per-block cost flat as |D| grows 16x; cost varies < 1.3x
as L grows 16x at fixed |D|; all answers verified per group.""",
    "LEM5": """**Paper claim.** Lemma 5: precise K-partitioning needs
`Ω((N/B)·lg_{M/B} min{K, N/B})` when `lg N ≤ B·lg(M/B)`, by machine-state
counting (`(2N·lgN·C(M,B))^H ≥ N!/((N/K)!)^K`).

**Measured.** The counting bound is evaluated exactly per sweep point;
measured multi-partition cost always sits above it and within a flat
constant of the Aggarwal–Vitter upper bound.""",
    "SEC3": """**Paper claim.** §3: any approximate partitioner with sizes ≤ b,
plus an O(N/B) residue-buffer sweep, solves *precise*
(N/b)-partitioning — the reduction behind Theorem 3.

**Measured.** The sweep costs ~2 block-passes with a memory-resident
residue and stays flat O(N/B) in the disk-resident regime; the reduction
is exercised with deliberately unbalanced and adversarially-ordered
approximate solvers; outputs are exactly-b partitions.""",
    "HU6": """**Substitution check.** The multi-selection base case consumes
Hu et al. [6] (SODA'13) as a black box: Θ(M) splitters, partition sizes
Θ(N/M), O(N/B) I/Os.  Our substitute (two-level sample-distribute-sample
plus a single-cascade fast path) must deliver exactly that interface.

**Measured.** Per-block cost flat across an 8x range of N and across
random/Zipf/heavy-duplicate workloads; every partition within
[1/8, 4]·N/P (typically within [0.85, 1.15]).""",
    "SORT": """**Substrate sanity.** Every Table 1 comparison is against "just
sort", so the sort substrate must track `Θ((N/B)·lg_{M/B}(N/B))` first.

**Measured.** Flat Θ-ratio on both machine shapes across a 16x range of
N; input order changes cost < 10%.""",
    "CMP": """**Model fidelity.** The paper's model is comparison-based with free
CPU; the simulator counts comparisons anyway (base cases run the
internal-memory multiple-selection engine of §1.2's reference [7],
Θ(n·lg k) comparisons, instead of full sorts).

**Measured.** Selection is O(N) comparisons (below sorting's Θ(N·lg N));
the fast bracket selection *spends* comparisons to save I/Os — the
model's trade made visible; multi-selection does O(log M) comparisons
per element, flat in N at fixed M.""",
    "SEQ": """**Beyond the model.** The EM model prices every transfer
equally; real storage does not.  The traced access patterns show which
of the model's I/Os would be seeks: scans and selections stream
(sequentiality ~1), the k-way merge alternates across runs, the
distribution recursion re-reads interleaved buckets; writes append
(log-structured allocation).""",
    "SPACE": """**Model fidelity.** The algorithms implicitly promise O(N/B)
working disk space.

**Measured.** Peak allocated blocks stay within 3x the input's N/B for
every algorithm, flat across N.""",
    "ABL1": """**Design choice.** Every `lg_{M/B}` is a pass count; sweeping the
merge fanout from 2 to M/B shows passes collapsing exactly as the log
base grows.""",
    "ABL2": """**Design choice.** The multi-selection base case's splitter
granularity P trades resident state against the intermixed instance size
|D| ≈ K·N/P; the sweep shows both sides and motivates the default
P = min(max(64, 8K), M/8).""",
    "ABL3": """**Design choice.** The §5.1 threshold `a ≥ N/2K` (or `b ≤ 2N/K`)
switches the two-sided algorithms to the plain 1/K-quantile; the sweep
shows the switch firing exactly at the threshold with cost within the
two-sided bound on both sides.""",
    "ABL5": """**Design choice.** Las Vegas randomized splitters (Chernoff
sample + verification scan) against the paper's deterministic route:
sampling wins on slack windows (~2 scans), the deterministic machinery
is what makes tight windows and worst-case bounds possible.""",
    "ABL4": """**Design choice.** The deterministic sampling cascade pays O(N/B)
to make bucket sizes a worst-case guarantee; naive random sampling is
far cheaper but only probabilistic — measured side by side.""",
    "SVC": """**Beyond the paper (application).** The online partition service
answers selection-query *traces* through a lazily refined pivot tree
(Barbay–Gupta over this paper's partitioning substrate): each query
refines only the tree path it touches, refinements persist, and answers
are cached.

**Measured.** Online answers are element-for-element identical to an
offline multi-selection; the headline zipfian trace costs well under
25 % of the per-query offline baseline (the acceptance bar, also pinned
by the `service-online` I/O budget); amortized I/O per query falls as
the trace grows and the second half of the trace is cheaper than the
first (the laziness actually amortizes); even the adversarial trace —
designed to force every refinement — stays within a small constant of
sorting everything up front.""",
    "SHARDS": """**Beyond the paper (application).** The sharded service splits the
record file across `W` worker machines by a sampled top-level splitter
set — the paper's splitters used as a *routing* structure — with a
coordinator that owns only routing state.  The EM model has no free
network, so every coordinator↔worker message is charged as block I/O on
both endpoints (writes to send, reads to receive), making communication
a first-class, traceable cost next to computation.

**Measured.** Sharded select answers are element-for-element identical
to the single-machine engine at every `W` (selects are determined by
the input multiset, so sharding must not change them); no record is
lost in distribution; the coordinator visibly pays charged message I/O
in both the build and query phases, growing with `W`; and the sampled
splitters keep shard sizes within 2x of the mean.""",
}

_HEADER = """# EXPERIMENTS — paper vs. measured

Full-sweep results of every experiment in the reproduction harness
(regenerate with ``python -m repro report``; the same runs as
``REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only``).  All numbers
are **simulated I/O counts** — exact costs in the Aggarwal–Vitter model,
deterministic and machine-independent (seeds fixed).  Wall-clock timings
of the simulation itself are what pytest-benchmark reports.

Machine shapes: **wide** = M 4096 records, B 64 (tall-cache, fanout 64);
**narrow** = M 512, B 16 (multi-pass regime, the `lg_{M/B}` factors move).

Because the venue reports asymptotic bounds rather than absolute numbers
(the paper has no experimental section), reproduction means: the
measured series is a *flat multiple* of each claimed Θ-formula across
its sweep, and every qualitative claim — who wins, sublinearity, where
regimes switch, exact counting lower bounds never violated — holds.
The implementation's constants are reported with every table
("fitted constant").
"""

_FOOTER = """## Reading guide

* *io/bound* columns are measured-I/O over the Θ-formula value; a flat
  column (small "spread") is a Θ-match.  Constants between 2 and 14 are
  expected — each formula counts abstract "passes" while the
  implementation pays reads+writes and lower-order terms per pass.
* Lower-bound rows (T1.R1, T1.R2, T1.R4, LEM5) compare against *exact*
  counting bounds, not asymptotic shapes: those are hard inequalities
  and hold on every run.
* Where a measured head-to-head is not decided by the asymptotics at
  simulation scale (two-sided splitters vs sorting; the
  multi-selection/multi-partition separation), the tables say so
  explicitly and the claim is verified at the bound level — the paper
  makes no constant-factor claims.
"""


def _ordered(
    items: list, ids: list[str], order: Sequence[str] | None, what: str
) -> list:
    """Reorder ``items`` (parallel to ``ids``) by ``order``; unknown ids
    in ``order`` raise so a typo can't silently drop an experiment from
    the document."""
    if not order:
        return items
    by_id = dict(zip(ids, items))
    unknown = [i for i in order if i not in by_id]
    if unknown:
        raise KeyError(
            f"order names unknown {what}: {', '.join(unknown)}; "
            f"known: {', '.join(ids)}"
        )
    return [by_id[i] for i in order] + [
        item for item, exp_id in zip(items, ids) if exp_id not in set(order)
    ]


def generate_experiments_md(
    quick: bool = False,
    order: list[str] | None = None,
    *,
    results: Sequence[ExperimentResult] | None = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | Path | None = None,
    progress: Callable | None = None,
) -> tuple[str, bool]:
    """Render the document and return ``(markdown, all_passed)``.

    With ``results`` given, this is a pure rendering step (reordered by
    ``order``); otherwise every registered experiment is executed via
    :func:`repro.experiments.runner.run_experiments` with the given
    ``jobs``/``use_cache``/``progress``.  Ids in ``order`` that don't
    exist raise ``KeyError`` rather than being silently dropped.
    """
    if results is None:
        from .runner import run_experiments

        all_ids = [e.exp_id for e in all_experiments()]
        ids = _ordered(all_ids, all_ids, order, "experiments")
        records = run_experiments(
            ids,
            quick=quick,
            jobs=jobs,
            cache=use_cache,
            cache_dir=cache_dir,
            progress=progress,
        )
        results = [rec.to_result() for rec in records]
    else:
        results = _ordered(
            list(results), [r.exp_id for r in results], order, "results"
        )
    chunks = [_HEADER]
    all_ok = all(r.passed for r in results)
    chunks.append(
        f"**Verdict: {sum(r.passed for r in results)}/{len(results)} "
        "experiments PASS** (every shape check below).\n\n---\n"
    )
    for result in results:
        commentary = COMMENTARY.get(
            result.exp_id, f"**{result.title}.**"
        )
        chunks.append(commentary)
        chunks.append("")
        chunks.append("```")
        chunks.append(result.render())
        chunks.append("```")
        chunks.append("\n---\n")
    chunks.append(_FOOTER)
    return "\n".join(chunks), all_ok


#: Presentation order: Table 1 rows, theorems/lemmas, substrate, ablations.
DEFAULT_ORDER = [
    "T1.R1", "T1.R2", "T1.R3", "T1.R4", "T1.R5", "T1.R6",
    "THM4", "LEM6", "LEM5", "SEC3", "HU6", "SORT", "CMP", "SPACE", "SEQ",
    "ABL1", "ABL2", "ABL3", "ABL4", "ABL5", "SVC", "SHARDS",
]


def write_experiments_md(
    path: str | Path,
    quick: bool = False,
    *,
    results: Sequence[ExperimentResult] | None = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | Path | None = None,
    progress: Callable | None = None,
) -> tuple[Path, bool]:
    """Generate and write the document; returns ``(path, all_passed)``.

    When ``results`` is supplied their given order is kept; otherwise
    the registry is run and presented in :data:`DEFAULT_ORDER`.
    """
    text, ok = generate_experiments_md(
        quick=quick,
        order=None if results is not None else DEFAULT_ORDER,
        results=results,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        progress=progress,
    )
    out = Path(path)
    out.write_text(text + "\n")
    return out, ok

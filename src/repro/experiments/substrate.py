"""SORT: substrate sanity — external merge sort matches the sorting bound.

Every Table 1 comparison is "algorithm vs the trivial sort route", so the
sort substrate itself must track ``Θ((N/B)·lg_{M/B}(N/B))`` before any
other number means anything.  Swept on both machine shapes.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant, ratio_stats
from ..analysis.verify import check_sorted
from ..alg.sort import external_sort
from ..bounds.formulas import sort_io
from ..workloads.generators import load_input, random_permutation, reverse_sorted, sorted_keys
from .base import (
    ExperimentResult,
    measure_io,
    narrow_machine,
    register,
    wide_machine,
)

__all__ = []


@register("SORT", "external merge sort: Θ((N/B)·lg_{M/B}(N/B))")
def sort_exp(quick: bool = False) -> ExperimentResult:
    sweep_n = [8_192, 32_768] if quick else [8_192, 16_384, 32_768, 65_536, 131_072]
    machines = [("wide", wide_machine), ("narrow", narrow_machine)]

    headers = ["machine", "N", "io", "bound", "io/bound"]
    rows, ratios = [], {name: ([], []) for name, _ in machines}
    for mname, mk in machines:
        for n in sweep_n:
            records = random_permutation(n, seed=400 + n)
            mach = mk()
            f = load_input(mach, records)
            out, cost = measure_io(mach, lambda: external_sort(mach, f))
            check_sorted(records, out.to_numpy())
            out.free()
            bound = sort_io(n, mach.M, mach.B)
            rows.append((mname, n, cost, bound, cost / bound))
            ratios[mname][0].append(cost)
            ratios[mname][1].append(bound)

    checks, notes = [], []
    for mname, _ in machines:
        stats = ratio_stats(*ratios[mname])
        checks.append((f"{mname}: theta-match (spread <= 3)", stats.spread <= 3.0))
        notes.append(
            f"{mname}: fitted constant c = "
            f"{fit_constant(*ratios[mname]):.2f}; {stats}"
        )

    # Presortedness sanity: sorted / reverse inputs cost the same Θ
    # (comparison-based merge sort is oblivious to input order).
    n = sweep_n[-1]
    extremes = []
    for gen in (sorted_keys, reverse_sorted, random_permutation):
        mach = wide_machine()
        f = load_input(mach, gen(n, seed=7))
        out, cost = measure_io(mach, lambda: external_sort(mach, f))
        out.free()
        extremes.append(cost)
    checks.append(
        (
            "input order does not change cost (within 10%)",
            max(extremes) <= 1.1 * min(extremes),
        )
    )
    return ExperimentResult(
        exp_id="SORT",
        title="external merge sort substrate",
        claim="the sort substrate achieves the Aggarwal–Vitter sorting bound",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=notes,
    )

"""SVC — the online partition service against its offline baselines.

The service claim (Barbay–Gupta, applied over this paper's partitioning
substrate): answering a *trace* of selection queries through the lazy
pivot tree costs far less than answering each query with an offline
multi-selection, and on skewed traces it even undercuts sorting once —
repeats hit refined subtrees (and the answer cache) for near-zero
incremental I/O.

One sweep row per (trace kind, N, K, Q) configuration, measuring

* the **online engine** (:class:`~repro.service.online.LazyPartitionIndex`
  behind the batching :class:`~repro.service.frontend.QueryFrontend`),
* the **per-query offline** baseline — one Theorem 4 ``multi_select``
  per query (estimated as Q × the measured cost of a single-rank
  multi-selection; that cost is rank-independent to within ±0.1 %, and
  the note on each run records the sampled spread),
* the **sort-everything** baseline — one measured external sort plus one
  block read per query.

Checks: online answers are element-for-element identical to one offline
multi-selection over the trace's distinct ranks; the headline zipfian
row lands under 25 % of the per-query offline baseline (the ISSUE 4
acceptance bar); amortized I/O per query *falls* as the zipfian trace
grows (the online-learning effect); the second half of the headline
trace is cheaper per query than the first half; and even the
adversarial trace — built to force maximal refinement — stays within a
small constant of sort-everything.
"""

from __future__ import annotations

import numpy as np

from ..alg.sort import external_sort
from ..core import multi_select
from ..em.records import composite
from ..obs.metrics import MetricsRegistry, metrics_scope
from ..service import LazyPartitionIndex, Query, QueryFrontend
from ..workloads.generators import load_input, random_permutation
from ..workloads.queries import QUERY_TRACES
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []

#: (trace, alpha, N, K, Q); the (zipfian-1.1, 2^20, 256, 512) row is the
#: ISSUE 4 acceptance point, mirrored by the ``service-online`` budget.
_FULL = [
    ("zipfian", 1.1, 2**20, 256, 64),
    ("zipfian", 1.1, 2**20, 256, 512),
    ("zipfian", 1.1, 2**20, 256, 2048),
    ("zipfian", 1.5, 2**20, 256, 512),
    ("uniform", None, 2**18, 128, 256),
    ("adversarial", None, 2**18, 128, 256),
]
_QUICK = [
    ("zipfian", 1.1, 16_384, 32, 24),
    ("zipfian", 1.1, 16_384, 32, 96),
    ("uniform", None, 16_384, 32, 64),
    ("adversarial", None, 16_384, 32, 64),
]

_SEED = 7
_BATCH = 64  # the budget entry's flush size; kept identical here


def _make_trace(name: str, alpha, q: int, n: int) -> np.ndarray:
    fn = QUERY_TRACES[name]
    if name == "zipfian":
        return fn(q, n, seed=_SEED, alpha=alpha)
    return fn(q, n, seed=_SEED)


def _offline_per_query(records: np.ndarray, n: int) -> tuple[float, float]:
    """Measured I/O of one single-rank offline multi-selection.

    Returns ``(mean, spread)`` over three ranks spanning the file; the
    cost is rank-independent, so ``mean × Q`` estimates the per-query
    offline baseline without running Q full multi-selections.
    """
    mach = wide_machine()
    f = load_input(mach, records)
    costs = []
    for r in np.linspace(1, n, 3).astype(np.int64):
        _, cost = measure_io(
            mach, lambda r=r: multi_select(mach, f, np.array([r]))
        )
        costs.append(cost)
    f.free()
    return float(np.mean(costs)), float(np.ptp(costs))


def _sort_once(records: np.ndarray) -> int:
    """Measured I/O of sorting the input once (the prepay baseline)."""
    mach = wide_machine()
    f = load_input(mach, records)
    out, cost = measure_io(mach, lambda: external_sort(mach, f))
    out.free()
    f.free()
    return cost


@register("SVC", "online partition service vs offline baselines")
def svc(quick: bool = False) -> ExperimentResult:
    configs = _QUICK if quick else _FULL

    records_of: dict[int, np.ndarray] = {}
    per_query_of: dict[int, tuple[float, float]] = {}
    sort_io_of: dict[int, int] = {}
    for _, _, n, _, _ in configs:
        if n not in records_of:
            records_of[n] = random_permutation(n, seed=_SEED)
            per_query_of[n] = _offline_per_query(records_of[n], n)
            sort_io_of[n] = _sort_once(records_of[n])

    headers = [
        "trace", "N", "K", "Q", "distinct", "online io", "io/query",
        "io p50", "io p99", "offline est", "sorted est", "online/offline",
        "refine", "cached",
    ]
    rows = []
    identity_ok = True
    zipf11 = []  # (Q, amortized, online_io, offline_est, flushes)
    adversarial_ratio = None
    for name, alpha, n, k, q in configs:
        trace = _make_trace(name, alpha, q, n)
        label = f"{name}-{alpha}" if alpha is not None else name

        mach = wide_machine()
        f = load_input(mach, records_of[n])
        # Per-config registry: the engine/frontend pick it up ambiently
        # at construction and fill the per-query I/O histogram.
        registry = MetricsRegistry()
        with metrics_scope(registry):
            engine = LazyPartitionIndex(mach, f, k=k)
            frontend = QueryFrontend(mach, engine)
            answers, online_io = measure_io(
                mach,
                lambda: frontend.run(
                    [Query.select(int(r)) for r in trace], batch=_BATCH
                ),
            )
        hist = registry.histogram(
            "svc_query_io", labels=("engine",)
        ).labels(engine="lazy")
        stats = dict(engine.stats)
        flushes = list(frontend.flushes)
        engine.close()
        f.free()

        # Differential identity: one offline multi-selection over the
        # trace's distinct ranks must return the same records.
        unique, inverse = np.unique(trace, return_inverse=True)
        mach2 = wide_machine()
        f2 = load_input(mach2, records_of[n])
        offline = multi_select(mach2, f2, unique)
        f2.free()
        expected = offline[inverse]
        got = np.array([rec for rec in answers], dtype=expected.dtype)
        identity_ok &= bool(
            np.array_equal(composite(got), composite(expected))
        )

        per_q, _spread = per_query_of[n]
        offline_est = per_q * q
        sorted_est = sort_io_of[n] + q  # one block read per query
        frac = online_io / offline_est
        amortized = online_io / q
        rows.append((
            label, n, k, q, len(unique), online_io, round(amortized, 1),
            round(float(hist.quantile(0.5)), 1),
            round(float(hist.quantile(0.99)), 1),
            int(offline_est), sorted_est, round(frac, 4),
            stats["refinements"], stats["cache_hits"],
        ))
        if name == "zipfian" and alpha == 1.1:
            zipf11.append((q, amortized, online_io, offline_est, flushes))
        if name == "adversarial":
            adversarial_ratio = online_io / sorted_est

    zipf11.sort()
    amortized_seq = [a for _, a, *_ in zipf11]
    head_q, _, head_io, head_offline, head_flushes = zipf11[-1]
    half = len(head_flushes) // 2
    first = [fl.amortized_io for fl in head_flushes[:half]]
    second = [fl.amortized_io for fl in head_flushes[half:]]

    checks = [
        ("online answers identical to offline multi-selection", identity_ok),
        (
            f"acceptance: zipfian-1.1 Q={head_q} online < 25% of offline",
            head_io < 0.25 * head_offline,
        ),
        (
            "amortized I/O/query falls as the zipfian trace grows",
            all(x >= y for x, y in zip(amortized_seq, amortized_seq[1:]))
            and amortized_seq[-1] < amortized_seq[0],
        ),
        (
            "second half of the headline trace cheaper than the first",
            float(np.mean(second)) < float(np.mean(first)),
        ),
        (
            "adversarial trace within 3x of sort-everything",
            adversarial_ratio is not None and adversarial_ratio <= 3.0,
        ),
    ]
    notes = [
        f"seed = {_SEED}, flush batch = {_BATCH}, wide machine",
        "offline est = Q x measured single-rank multi_select "
        + ", ".join(
            f"(N=2^{int(np.log2(n))}: {pq:.0f} +/- {sp:.0f} I/Os)"
            for n, (pq, sp) in sorted(per_query_of.items())
        ),
        "sorted est = one measured external sort + one block read per query",
        f"adversarial online / sort-everything = {adversarial_ratio:.2f}",
    ]
    return ExperimentResult(
        exp_id="SVC",
        title="online partition service",
        claim=(
            "lazy online multiselection answers query traces for a small "
            "fraction of the per-query offline cost, amortizing toward "
            "zero marginal I/O on skewed traces"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=notes,
    )

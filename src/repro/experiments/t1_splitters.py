"""Table 1, rows 1-3: approximate K-splitters (right / left / two-sided).

Every experiment sweeps the row's governing parameter, measures the
simulated I/O of the §5.1 algorithm, and reports it next to the row's
Θ-bound and the sort-based baseline.  Shape checks encode the paper's
qualitative claims:

* **T1.R1** — cost tracks ``(1 + aK/B)·lg_{M/B}(K/B)`` and is *sublinear*
  (beats even one scan) when ``aK ≪ N``; the algorithm provably cannot
  have seen most of the input, which we verify via the disk's
  touched-block set.
* **T1.R2** — cost tracks ``(N/B)·lg_{M/B}(N/(bB))``, decreasing toward
  one scan as ``b`` grows; the hard-permutation family of §2.1 does not
  help the algorithm.
* **T1.R3** — cost tracks the sum of the two terms; the quantile-fallback
  regime (``a ≥ N/2K`` or ``b ≤ 2N/K``) is exercised alongside the
  general regime.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import fit_constant, ratio_stats
from ..analysis.verify import check_splitters
from ..baselines.sort_based import sort_based_splitters
from ..bounds.counting import theorem1_min_ios_exact, theorem2_min_ios_exact
from ..bounds.formulas import (
    splitters_left_bound,
    splitters_right_bound,
    splitters_two_sided_bound,
)
from ..core.splitters import (
    left_grounded_splitters,
    right_grounded_splitters,
    two_sided_splitters,
)
from ..workloads.generators import hard_permutation, load_input, random_permutation
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []


def _sort_baseline_io(records, k: int, a: int, b: int) -> int:
    mach = wide_machine()
    f = load_input(mach, records)
    _, cost = measure_io(mach, lambda: sort_based_splitters(mach, f, k, a, b))
    return cost


@register("T1.R1", "right-grounded K-splitters: Θ((1+aK/B)·lg_{M/B}(K/B))")
def t1_r1(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    records = random_permutation(n, seed=42)
    sweep_k = [16, 128] if quick else [16, 64, 256, 1024]
    sweep_a = [4, 64, 192] if quick else [4, 16, 64, 256]

    headers = [
        "K", "a", "aK/N", "io", "bound", "io/bound",
        "blocks seen", "of", "sublinear",
    ]
    rows, subl_ok, seen_frac = [], [], []
    big, big_bounds = [], []  # points where the full machinery runs (aK > M)
    measured, bounds = [], []
    above_exact_lb, seen_enough = [], []
    sort_cost = _sort_baseline_io(records, sweep_k[0], sweep_a[0], n)
    for k in sweep_k:
        for a in sweep_a:
            if a * k > n:
                continue
            mach = wide_machine()
            f = load_input(mach, records)
            res, cost = measure_io(
                mach, lambda: right_grounded_splitters(mach, f, k, a)
            )
            check_splitters(records, res.splitters, a, n, k)
            bound = splitters_right_bound(n, k, a, mach.M, mach.B)
            seen = len(mach.disk.read_block_ids & set(f.block_ids))
            nb = f.num_blocks
            sub = cost < n / mach.B
            rows.append(
                (k, a, a * k / n, cost, bound, cost / bound, seen, nb, sub)
            )
            measured.append(cost)
            bounds.append(bound)
            # Theorem 1's exact counting chain is a hard lower bound; the
            # seen-elements part also forces >= ceil(aK/B) distinct blocks.
            lb = theorem1_min_ios_exact(n, k, a, mach.M, mach.B)
            above_exact_lb.append(cost >= lb)
            seen_enough.append(seen >= a * k // mach.B)
            if a * k > mach.M:
                big.append(cost)
                big_bounds.append(bound)
            if a * k <= n // 16:
                subl_ok.append(sub)
                seen_frac.append(seen / nb)

    # Θ-flatness is judged where the full algorithm actually runs
    # (aK > M); below that the prefix S' fits in memory and the constant
    # is legitimately smaller (a different — cheaper — code path within
    # the same O(1 + aK/B) class).
    stats = ratio_stats(big, big_bounds)
    checks = [
        ("theta-match where aK > M (ratio spread <= 4)", stats.spread <= 4.0),
        ("sublinear whenever aK <= N/16", all(subl_ok) and len(subl_ok) > 0),
        (
            "small-aK runs touch a minority of input blocks",
            all(fr < 0.5 for fr in seen_frac),
        ),
        (
            "measured >= Theorem 1's exact counting lower bound",
            all(above_exact_lb),
        ),
        (
            "seen-elements argument: >= floor(aK/B) input blocks read",
            all(seen_enough),
        ),
        ("beats sort baseline at smallest point", measured[0] < sort_cost),
    ]
    return ExperimentResult(
        exp_id="T1.R1",
        title="right-grounded K-splitters",
        claim="Θ((1+aK/B)·lg_{M/B}(K/B)) I/Os; sublinear when aK ≪ N (Thms 1, 5)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"fitted constant c = {fit_constant(measured, bounds):.2f}; {stats}",
            f"sort baseline at (K={sweep_k[0]}, a={sweep_a[0]}): {sort_cost} I/Os",
            f"N = {n}, machine M=4096 B=64 (N/B = {n // 64})",
        ],
    )


@register("T1.R2", "left-grounded K-splitters: Θ((N/B)·lg_{M/B}(N/(bB)))")
def t1_r2(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    perm = random_permutation(n, seed=43)
    hard = hard_permutation(n, 64, seed=43)
    sweep_b = (
        [n // 64, n // 4] if quick else [n // 256, n // 64, n // 16, n // 4, n // 2]
    )

    headers = ["workload", "b", "K'=⌈N/b⌉", "io", "bound", "io/bound", "exact LB"]
    rows, measured, bounds, above_lb = [], [], [], []
    per_workload: dict[str, list[int]] = {"perm": [], "hard": []}
    for name, records in [("perm", perm), ("hard", hard)]:
        for bb in sweep_b:
            k = max(2, -(-n // bb))
            mach = wide_machine()
            f = load_input(mach, records)
            res, cost = measure_io(
                mach, lambda: left_grounded_splitters(mach, f, k, bb)
            )
            check_splitters(records, res.splitters, 0, bb, k)
            bound = splitters_left_bound(n, k, bb, mach.M, mach.B)
            lb = theorem2_min_ios_exact(n, k, bb, mach.M, mach.B)
            rows.append((name, bb, -(-n // bb), cost, bound, cost / bound, lb))
            measured.append(cost)
            bounds.append(bound)
            above_lb.append(cost >= lb)
            per_workload[name].append(cost)

    stats = ratio_stats(measured, bounds)
    sort_cost = _sort_baseline_io(perm, max(2, n // sweep_b[0]), 0, sweep_b[0])
    big_b_cost = per_workload["perm"][-1]
    checks = [
        ("theta-match (ratio spread <= 4)", stats.spread <= 4.0),
        (
            "cost non-increasing in b (random workload)",
            all(
                x >= y * 0.95
                for x, y in zip(per_workload["perm"], per_workload["perm"][1:])
            ),
        ),
        (
            "hard permutations no harder than Θ allows",
            max(per_workload["hard"]) <= 4.0 * max(per_workload["perm"]),
        ),
        (
            "measured >= Theorem 2's exact counting lower bound",
            all(above_lb),
        ),
        ("beats sort baseline at largest b", big_b_cost < sort_cost),
    ]
    return ExperimentResult(
        exp_id="T1.R2",
        title="left-grounded K-splitters",
        claim="Θ((N/B)·lg_{M/B}(N/(bB))) I/Os, decreasing toward one scan as b grows (Thms 2, 5)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"fitted constant c = {fit_constant(measured, bounds):.2f}; {stats}",
            f"sort baseline: {sort_cost} I/Os; N = {n}",
        ],
    )


@register("T1.R3", "two-sided K-splitters: Θ((1+aK/B)lg(K/B) + (N/B)lg(N/(bB)))")
def t1_r3(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    records = random_permutation(n, seed=44)
    k = 64
    # (a, b) pairs spanning the general regime and both fallback triggers.
    n_over_k = n // k
    sweep = [
        (n_over_k // 8, 8 * n_over_k),   # general regime
        (n_over_k // 16, 4 * n_over_k),  # general regime
        (n_over_k // 2, 8 * n_over_k),   # fallback: a >= N/2K
        (n_over_k // 8, 2 * n_over_k),   # fallback: b <= 2N/K
    ]
    if quick:
        sweep = sweep[:2]

    headers = ["a", "b", "variant", "io", "bound", "io/bound"]
    rows, measured, bounds = [], [], []
    for a, bb in sweep:
        mach = wide_machine()
        f = load_input(mach, records)
        res, cost = measure_io(mach, lambda: two_sided_splitters(mach, f, k, a, bb))
        check_splitters(records, res.splitters, a, bb, k)
        bound = splitters_two_sided_bound(n, k, a, bb, mach.M, mach.B)
        rows.append((a, bb, res.variant, cost, bound, cost / bound))
        measured.append(cost)
        bounds.append(bound)

    stats = ratio_stats(measured, bounds)
    sort_cost = _sort_baseline_io(records, k, sweep[0][0], sweep[0][1])
    checks = [
        ("theta-match (ratio spread <= 5)", stats.spread <= 5.0),
        (
            "same ballpark as sort at this scale (<= 3.5x)",
            max(measured) <= 3.5 * sort_cost,
        ),
    ]
    if not quick:
        variants = {row[2] for row in rows}
        checks.append(
            (
                "both regimes exercised",
                "two-sided" in variants
                and "two-sided/quantile-fallback" in variants,
            )
        )
    return ExperimentResult(
        exp_id="T1.R3",
        title="two-sided K-splitters",
        claim="Θ((1+aK/B)·lg_{M/B}(K/B) + (N/B)·lg_{M/B}(N/(bB))) I/Os (Thms 1, 2, 5)",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"fitted constant c = {fit_constant(measured, bounds):.2f}; {stats}",
            f"sort baseline: {sort_cost} I/Os; N = {n}, K = {k}",
            "the asymptotic win over sorting needs lg_{M/B}(N/B) to exceed "
            "this implementation's ~8-10x constant over the two-sided bound; "
            "at simulation scale sorting's constant (~4 passes) is smaller, "
            "so the comparison is reported at the bound level",
        ],
    )

"""Theorem 4: optimal multi-selection, and its separation from
multi-partition.

The paper's headline algorithmic result: multi-selection costs
``Θ((N/B)·lg_{M/B}(K/B))``, strictly below multi-partition's
``Θ((N/B)·lg_{M/B} K)`` when ``K`` is small (the two coincide for large
``K``).  We sweep ``K`` on the narrow machine (where log factors move),
measuring:

* Theorem 4's algorithm (:func:`repro.core.multi_select`);
* the pre-paper route (multi-partition + per-partition max);
* repeated single selection (``O(K·N/B)``, small ``K`` only);
* the sort-everything baseline.

Shape checks: the Theorem 4 cost is a flat multiple of its bound; it
never loses to the multi-partition route; the gap is widest in the
separation regime (``B < K ≤ m``) and closes as ``K`` grows, matching
"the separation occurs only for small K".
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import fit_constant, ratio_stats
from ..analysis.verify import check_multiselect
from ..baselines.multipartition_based import multiselect_via_multipartition
from ..baselines.repeated_selection import multiselect_via_repeated_selection
from ..baselines.sort_based import sort_based_multiselect
from ..bounds.formulas import multipartition_io, multiselect_io, sort_io
from ..core.multiselect import multi_select
from ..workloads.generators import load_input, random_permutation
from .base import ExperimentResult, measure_io, narrow_machine, register

__all__ = []


def _ranks(n: int, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(np.arange(1, n + 1), size=k, replace=False))


@register("THM4", "multi-selection: Θ((N/B)·lg_{M/B}(K/B)); separation from multi-partition")
def thm4(quick: bool = False) -> ExperimentResult:
    # K is capped at M/2: the rank list is memory-resident control state
    # in our implementation (see DESIGN.md limitations).
    n = 16_384 if quick else 65_536
    records = random_permutation(n, seed=48)
    sweep_k = [4, 64] if quick else [4, 16, 64, 128, 256]

    headers = [
        "K", "multiselect io", "bound", "io/bound",
        "mp-based io", "repeated io", "sort io", "mp/ms gap",
    ]
    rows, measured, bounds, gaps = [], [], [], []
    mp_measured, mp_bounds, rep_costs = [], [], []
    for k in sweep_k:
        ranks = _ranks(n, k, seed=1000 + k)

        mach = narrow_machine()
        f = load_input(mach, records)
        ans, ms_cost = measure_io(mach, lambda: multi_select(mach, f, ranks))
        check_multiselect(records, ranks, ans)

        mach = narrow_machine()
        f = load_input(mach, records)
        ans2, mp_cost = measure_io(
            mach, lambda: multiselect_via_multipartition(mach, f, ranks)
        )
        check_multiselect(records, ranks, ans2)

        rep_cost: object = "-"
        if k <= 16:
            mach = narrow_machine()
            f = load_input(mach, records)
            ans3, rep_cost = measure_io(
                mach, lambda: multiselect_via_repeated_selection(mach, f, ranks)
            )
            check_multiselect(records, ranks, ans3)

        mach = narrow_machine()
        f = load_input(mach, records)
        ans4, sort_cost = measure_io(
            mach, lambda: sort_based_multiselect(mach, f, ranks)
        )
        check_multiselect(records, ranks, ans4)

        bound = multiselect_io(n, k, mach.M, mach.B)
        mp_bound = multipartition_io(n, k, mach.M, mach.B)
        gap = mp_cost / ms_cost
        rows.append(
            (k, ms_cost, bound, ms_cost / bound, mp_cost, rep_cost, sort_cost, gap)
        )
        measured.append(ms_cost)
        bounds.append(bound)
        mp_measured.append(mp_cost)
        mp_bounds.append(mp_bound)
        rep_costs.append((k, rep_cost, ms_cost))
        gaps.append(gap)

    stats = ratio_stats(measured, bounds)
    mp_stats = ratio_stats(mp_measured, mp_bounds)
    # Bound-level separation window: K where lg_{M/B}(K) > lg_{M/B}(K/B).
    mach = narrow_machine()
    sep_window = [
        k for k in sweep_k
        if multipartition_io(n, k, mach.M, mach.B)
        > multiselect_io(n, k, mach.M, mach.B) * 1.05
    ]
    checks = [
        ("multi-select theta-match vs Thm 4 bound (spread <= 4)", stats.spread <= 4.0),
        (
            "mp-based route theta-match vs its own lg_{M/B}K bound (spread <= 4)",
            mp_stats.spread <= 4.0,
        ),
        (
            "repeated selection loses >= 3x by K = 4",
            all(rc >= 3 * mc for k, rc, mc in rep_costs if rc != "-" and k >= 4),
        ),
        (
            "same hardness ballpark: multi-select within 2.5x of mp route",
            all(row[1] <= 2.5 * row[4] for row in rows),
        ),
        (
            "bound-level separation window is non-empty",
            len(sep_window) > 0,
        ),
    ]
    return ExperimentResult(
        exp_id="THM4",
        title="optimal multi-selection (Theorem 4)",
        claim=(
            "multi-selection costs Θ((N/B)·lg_{M/B}(K/B)), separated from "
            "multi-partition's Θ((N/B)·lg_{M/B} K) for small K, equal "
            "hardness for large K"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"multi-select fitted constant c = "
            f"{fit_constant(measured, bounds):.2f}; {stats}",
            f"mp-based fitted constant c = "
            f"{fit_constant(mp_measured, mp_bounds):.2f}; {mp_stats}",
            f"bound-level separation window (lg K > lg K/B): K in {sep_window}",
            "the separation factor lg_{M/B}K / lg_{M/B}(K/B) tops out at "
            f"~{max(multipartition_io(n, k, 512, 16) / multiselect_io(n, k, 512, 16) for k in sweep_k):.2f}x "
            "at this machine shape — smaller than the ~2x constant gap "
            "between the two implementations, so the separation is "
            "reproduced at the bound level (and via the flat Θ-matches), "
            "not as a raw measured win; the paper makes no constant-factor "
            "claim",
            f"N = {n}, narrow machine M=512 B=16; "
            f"sort bound: {sort_io(n, 512, 16):,.0f}",
        ],
    )

"""Ablations for the design choices DESIGN.md calls out.

* **ABL1 — merge fanout**: the ``lg_{M/B}`` in every bound comes from the
  distribution/merge fanout; sweeping the sort fanout from 2 to M/B shows
  the pass count collapsing exactly as the base of the log grows.
* **ABL2 — memory-splitters granularity**: the multi-selection base case
  trades the splitter count ``P`` (memory residency) against partition
  width ``N/P`` (the size of the intermixed instance ``|D| ≈ K·N/P``).
  Sweeping ``P`` shows both sides of the trade.
* **ABL3 — two-sided threshold**: the §5.1 two-sided algorithm switches
  to the plain 1/K-quantile when ``a ≥ N/2K`` or ``b ≤ 2N/K``; sweeping
  ``a`` across the threshold shows the variant switch and that cost
  stays within the two-sided bound on both sides.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.verify import check_multiselect, check_splitters
from ..alg.sort import external_sort, merge_fanout
from ..bounds.formulas import splitters_two_sided_bound
from ..core.memory_splitters import memory_splitters
from ..core.intermixed import intermixed_select
from ..core.splitters import two_sided_splitters
from ..em.records import composite
from ..workloads.generators import load_input, random_permutation
from .base import ExperimentResult, measure_io, register, wide_machine

__all__ = []


@register("ABL1", "ablation: merge fanout vs pass count")
def abl1(quick: bool = False) -> ExperimentResult:
    n = 16_384 if quick else 65_536
    records = random_permutation(n, seed=60)
    full = merge_fanout(wide_machine())
    sweep_f = [2, 8, full] if quick else [2, 4, 8, 16, full]

    headers = ["fanout", "io", "io/(N/B)", "expected passes"]
    rows, costs = [], []
    for fan in sweep_f:
        mach = wide_machine()
        f = load_input(mach, records)
        out, cost = measure_io(mach, lambda: external_sort(mach, f, fanout=fan))
        out.free()
        runs = -(-n // (mach.M - 2 * mach.B))
        passes = 1 + max(0, math.ceil(math.log(max(1, runs), fan)))
        rows.append((fan, cost, cost / (n / mach.B), passes))
        costs.append(cost)

    checks = [
        ("cost non-increasing in fanout", all(x >= y for x, y in zip(costs, costs[1:]))),
        ("fanout 2 strictly worse than full fanout", costs[0] > costs[-1]),
    ]
    return ExperimentResult(
        exp_id="ABL1",
        title="merge fanout ablation",
        claim="the lg_{M/B} factor is real: passes drop as the fanout grows",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"N = {n}, wide machine, full fanout = {full}"],
    )


@register("ABL2", "ablation: memory-splitters granularity P")
def abl2(quick: bool = False) -> ExperimentResult:
    n = 20_000 if quick else 80_000
    k = 32
    records = random_permutation(n, seed=61)
    rng = np.random.default_rng(62)
    ranks = np.sort(rng.choice(np.arange(1, n + 1), size=k, replace=False))
    mach0 = wide_machine()
    sweep_p = [mach0.M // 32, mach0.M // 8] if quick else [
        mach0.M // 64, mach0.M // 32, mach0.M // 8, mach0.M // 4,
    ]

    headers = ["P", "splitters io", "|D| records", "intermixed io", "total io"]
    rows, d_sizes = [], []
    for p in sweep_p:
        mach = wide_machine()
        f = load_input(mach, records)
        splitters, ms_cost = measure_io(
            mach, lambda: memory_splitters(mach, f, n_buckets=p)
        )
        # Replicate the base case's D construction analytically: group i's
        # D_i is the partition containing rank i, so |D| = Σ sizes[j(i)].
        comps = np.sort(composite(records))
        sp = composite(splitters)
        idx = np.searchsorted(comps, sp, side="right")
        sizes = np.diff(np.concatenate(([0], idx, [n])))
        prefix = np.cumsum(sizes)
        j_of = np.searchsorted(prefix, ranks, side="left")
        d_size = int(sizes[j_of].sum())

        # Measure the downstream intermixed instance directly.
        below = np.where(j_of > 0, prefix[j_of - 1], 0)
        t = ranks - below
        grp_of_rank = {int(j): [] for j in np.unique(j_of)}
        for i, j in enumerate(j_of):
            grp_of_rank[int(j)].append(i)
        rec_sorted = records[np.argsort(composite(records), kind="stable")]
        d_parts = []
        for j, group_ids in grp_of_rank.items():
            lo = 0 if j == 0 else int(prefix[j - 1])
            hi = int(prefix[j])
            for g in group_ids:
                part = rec_sorted[lo:hi].copy()
                part["grp"] = g
                d_parts.append(part)
        d_records = np.concatenate(d_parts)
        rng.shuffle(d_records)
        mach2 = wide_machine()
        d_file = load_input(mach2, d_records)
        ans, ix_cost = measure_io(
            mach2, lambda: intermixed_select(mach2, d_file, t)
        )
        check_multiselect(records, ranks, ans)
        rows.append((p, ms_cost, d_size, ix_cost, ms_cost + ix_cost))
        d_sizes.append(d_size)

    checks = [
        ("|D| shrinks as P grows", all(x >= y for x, y in zip(d_sizes, d_sizes[1:]))),
        ("all downstream answers correct", True),
    ]
    return ExperimentResult(
        exp_id="ABL2",
        title="memory-splitters granularity ablation",
        claim=(
            "finer splitters (larger P) shrink the intermixed instance "
            "|D| ≈ K·N/P at the price of more resident state"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"N = {n}, K = {k} ranks, wide machine"],
    )


@register("ABL4", "ablation: deterministic vs randomized pivot sampling")
def abl4(quick: bool = False) -> ExperimentResult:
    """The deterministic sampling cascade vs naive random-block sampling.

    Practical distribution sorts often take a random sample instead of
    the deterministic every-q-th scheme the bounds require.  This
    ablation compares both pivot sources at equal pivot counts: the
    randomized source is much cheaper (reads only the sampled blocks)
    but its bucket-size guarantee is only probabilistic, while the
    cascade's worst-case bound holds on every run — the reason the
    paper's algorithms (and ours) use the deterministic scheme.
    """
    from ..alg.sampling import (
        approx_quantile_pivots,
        pick_pivots_from_sorted,
        pivot_rank_error_bound,
    )
    from ..em.records import composite, sort_records

    n = 30_000 if quick else 120_000
    n_pivots = 31
    records = random_permutation(n, seed=64)
    sorted_comps = np.sort(composite(records))

    def max_bucket_factor(pivots):
        idx = np.searchsorted(sorted_comps, composite(pivots), side="right")
        sizes = np.diff(np.concatenate(([0], idx, [n])))
        return sizes.max() / (n / (len(pivots) + 1))

    headers = ["method", "sample", "io", "max bucket / ideal", "worst-case bound"]
    rows = []

    mach = wide_machine()
    f = load_input(mach, records)
    mach.reset_counters()
    det_pivots = approx_quantile_pivots(mach, f, n_pivots)
    det_io = mach.io.total
    det_factor = max_bucket_factor(det_pivots)
    err = pivot_rank_error_bound(n, n_pivots, mach)
    det_bound = 1 + 2 * err / (n / (n_pivots + 1))
    rows.append(("deterministic cascade", n, det_io, det_factor, det_bound))

    rand_factors = []
    for blocks in ([4, 16] if quick else [4, 16, 64]):
        mach = wide_machine()
        f = load_input(mach, records)
        rng = np.random.default_rng(65 + blocks)
        chosen = rng.choice(f.num_blocks, size=blocks, replace=False)
        mach.reset_counters()
        with mach.memory.lease(blocks * mach.B, "abl4-sample"):
            sample = np.concatenate([f.read_block(int(i)) for i in chosen])
        pivots = pick_pivots_from_sorted(sort_records(sample), n_pivots)
        factor = max_bucket_factor(pivots)
        rand_factors.append(factor)
        rows.append(
            (f"random {blocks} blocks", blocks * mach.B, mach.io.total,
             factor, "none")
        )

    checks = [
        (
            "deterministic factor within its worst-case bound",
            det_factor <= det_bound,
        ),
        (
            "random sampling is cheaper but guarantee-free "
            "(some factor exceeds the deterministic one)",
            max(rand_factors) > det_factor,
        ),
    ]
    return ExperimentResult(
        exp_id="ABL4",
        title="pivot-source ablation",
        claim=(
            "the deterministic sampling cascade pays O(N/B) to make the "
            "bucket-size guarantee worst-case; random sampling is cheap "
            "but only probabilistic"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"N = {n}, {n_pivots} pivots, wide machine"],
    )


@register("ABL5", "ablation: deterministic vs Las Vegas randomized splitters")
def abl5(quick: bool = False) -> ExperimentResult:
    """The paper's deterministic splitters vs the practical randomized
    route (Chernoff-sized uniform sample + verification scan).

    Both produce *correct* outputs (the randomized variant is Las Vegas:
    it verifies and resamples on failure); the trade is cost structure —
    the randomized route pays one reservoir scan + one verification scan
    (≈ 2 scans total) against the deterministic machinery's larger
    constant, while the deterministic route alone extends to tight
    windows (``a = b``) where sampling cannot work.
    """
    from ..alg.randomized import randomized_splitters
    from ..core.splitters import two_sided_splitters

    n = 24_576 if quick else 98_304
    k = 16
    records = random_permutation(n, seed=66)
    windows = [
        ("wide", n // (4 * k), 4 * (n // k)),
        ("medium", n // (2 * k), 2 * (n // k)),
    ]
    if not quick:
        windows.append(("narrowish", int(0.75 * n / k), int(1.5 * n / k)))

    headers = ["window", "a", "b", "method", "io", "attempts"]
    rows, det_io, rand_io = [], {}, {}
    for wname, a, bb in windows:
        mach = wide_machine()
        f = load_input(mach, records)
        res, cost = measure_io(mach, lambda: two_sided_splitters(mach, f, k, a, bb))
        check_splitters(records, res.splitters, a, bb, k)
        det_io[wname] = cost
        rows.append((wname, a, bb, "deterministic", cost, 1))

        mach = wide_machine()
        f = load_input(mach, records)
        (splitters, attempts), cost = measure_io(
            mach,
            lambda: randomized_splitters(mach, f, k, a, bb, delta=0.05, seed=67),
        )
        check_splitters(records, splitters, a, bb, k)
        rand_io[wname] = cost
        rows.append((wname, a, bb, "randomized (Las Vegas)", cost, attempts))

    checks = [
        (
            "randomized route cheaper on wide windows",
            rand_io["wide"] < det_io["wide"],
        ),
        ("both outputs verified on every window", True),
        (
            "randomized cost grows as the window tightens",
            rand_io[windows[-1][0]] >= rand_io["wide"],
        ),
    ]
    return ExperimentResult(
        exp_id="ABL5",
        title="deterministic vs randomized splitters",
        claim=(
            "random sampling + verification is the cheap practical route "
            "for slack windows; the paper's deterministic machinery is "
            "what makes tight windows (down to a = b) and worst-case "
            "guarantees possible"
        ),
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[
            f"N = {n}, K = {k}, wide machine; randomized = reservoir "
            "sample sized by Chernoff (capped at M/2) + one verification "
            "scan per attempt",
        ],
    )


@register("ABL3", "ablation: two-sided quantile-fallback threshold")
def abl3(quick: bool = False) -> ExperimentResult:
    n = 24_576 if quick else 98_304
    k = 64
    records = random_permutation(n, seed=63)
    n_over_k = n // k
    threshold = n // (2 * k)
    sweep_a = (
        [threshold // 4, threshold] if quick
        else [threshold // 8, threshold // 4, threshold // 2, threshold, n_over_k]
    )
    bb = 8 * n_over_k

    headers = ["a", "a vs N/2K", "variant", "io", "bound", "io/bound"]
    rows, variants = [], []
    for a in sweep_a:
        mach = wide_machine()
        f = load_input(mach, records)
        res, cost = measure_io(mach, lambda: two_sided_splitters(mach, f, k, a, bb))
        check_splitters(records, res.splitters, a, bb, k)
        bound = splitters_two_sided_bound(n, k, a, bb, mach.M, mach.B)
        side = "below" if 2 * a * k < n else "at/above"
        rows.append((a, side, res.variant, cost, bound, cost / bound))
        variants.append(res.variant)

    checks = [
        (
            "fallback fires exactly at a >= N/2K",
            all(
                ("fallback" in v) == (2 * row[0] * k >= n)
                for v, row in zip(variants, rows)
            ),
        ),
        ("cost within 14x of bound everywhere", all(row[5] <= 14.0 for row in rows)),
    ]
    return ExperimentResult(
        exp_id="ABL3",
        title="two-sided threshold ablation",
        claim="the a >= N/2K (and b <= 2N/K) switch keeps both regimes within the two-sided bound",
        headers=headers,
        rows=rows,
        checks=checks,
        notes=[f"N = {n}, K = {k}, b = {bb}, threshold N/2K = {threshold}"],
    )

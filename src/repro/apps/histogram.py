"""Nearly equi-depth histograms — the paper's §1 motivating application.

"The bucket boundaries of an equi-depth histogram of K buckets correspond
to the output of the approximate K-splitters problem with a = b = N/K.
If one can accept a *nearly* equi-depth histogram where each bucket
covers at least a but at most b elements, then the bucket boundaries can
be found in less — sometimes even sublinear — time."

:class:`EquiDepthHistogram` packages that: build one from an
:class:`~repro.em.file.EMFile` through the splitters algorithms, then
answer rank / selectivity estimates with the error guarantee implied by
``[a, b]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_sort
from ..em.errors import SpecError
from ..em.file import EMFile
from ..core.spec import validate_params
from ..core.splitters import approximate_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["EquiDepthHistogram", "build_histogram"]


@dataclass(frozen=True)
class EquiDepthHistogram:
    """A nearly equi-depth histogram over integer keys.

    Attributes
    ----------
    boundaries:
        Sorted key values of the ``K-1`` bucket boundaries (bucket ``i``
        covers keys in ``(boundaries[i-1], boundaries[i]]``).
    n:
        Total number of elements summarized.
    a, b:
        The bucket-size window the histogram was built with: every bucket
        holds between ``a`` and ``b`` elements, which bounds every
        estimate below.
    """

    boundaries: np.ndarray
    n: int
    a: int
    b: int

    @property
    def num_buckets(self) -> int:
        return len(self.boundaries) + 1

    def bucket_of(self, key: int) -> int:
        """Index of the *first* bucket that may contain ``key`` (0-based).

        When ``key`` equals a boundary value that occurs multiple times
        in the data, its occurrences can spill past this bucket (the
        boundaries cut the composite key/uid order, not the key values);
        :meth:`rank_bounds` accounts for that.
        """
        return int(np.searchsorted(self.boundaries, key, side="left"))

    def rank_bounds(self, key: int) -> tuple[int, int]:
        """Certain bounds on the rank of ``key``: the true number of
        elements ``<= key`` lies in the returned ``[lo, hi]``.

        With ``c`` boundaries ``<= key``, buckets ``0..c-1`` hold only
        elements ``<= key`` (each ``>= a``), and every element ``<= key``
        lies in buckets ``0..c`` (each ``<= b``).  Counting boundaries
        with ``side="right"`` is what makes both directions certain for
        keys *equal* to a boundary value: such a key's duplicates may
        spill past the boundary's own bucket, but never past the next
        one, while the boundary's bucket itself is entirely ``<= key``.
        (The former ``side="left"`` count understated ``hi`` exactly in
        that spill case.)
        """
        c = int(np.searchsorted(self.boundaries, key, side="right"))
        lo = c * self.a
        hi = min(self.n, (c + 1) * self.b)
        return lo, hi

    def rank_estimate(self, key: int) -> float:
        """Nominal point estimate of the rank of ``key``.

        Treats the boundaries as if they sat at the exact ``1/K``
        quantiles: a key in bucket ``j`` is estimated at the bucket's
        middle, ``(j + 1/2)·N/K``.  For tight windows (``a ≈ b``) this
        coincides with the midpoint of :meth:`rank_bounds`; for the
        sublinear right-grounded construction (``b = N``) the worst-case
        bounds are vacuous but the nominal estimate is accurate on
        randomly ordered inputs, where the prefix the boundaries were
        drawn from is a uniform sample.
        """
        j = self.bucket_of(key)
        return min(self.n, (j + 0.5) * self.n / self.num_buckets)

    def selectivity_estimate(self, lo_key: int, hi_key: int) -> float:
        """Nominal estimate of the fraction of keys in ``(lo_key, hi_key]``."""
        if hi_key < lo_key:
            raise SpecError("empty range: hi_key < lo_key")
        return max(
            0.0, (self.rank_estimate(hi_key) - self.rank_estimate(lo_key)) / self.n
        )

    def selectivity_bounds(self, lo_key: int, hi_key: int) -> tuple[float, float]:
        """Bounds on the fraction of elements with key in ``(lo_key, hi_key]``."""
        if hi_key < lo_key:
            raise SpecError("empty range: hi_key < lo_key")
        lo_lo, lo_hi = self.rank_bounds(lo_key)
        hi_lo, hi_hi = self.rank_bounds(hi_key)
        worst_min = max(0, hi_lo - lo_hi)
        worst_max = max(0, hi_hi - lo_lo)
        return worst_min / self.n, min(1.0, worst_max / self.n)

    def max_rank_error(self) -> float:
        """Worst-case additive rank error of :meth:`rank_estimate`.

        Half the width of :meth:`rank_bounds`, maximized over buckets:
        ``((j+1)b - ja)/2 <= (b + K(b-a))/2`` — equal to ``b/2`` for a
        perfectly equi-depth histogram (``a = b``).
        """
        k = self.num_buckets
        return max(
            (min(self.n, (j + 1) * self.b) - j * self.a) / 2 for j in range(k)
        )


def build_histogram(
    machine: "Machine",
    file: EMFile,
    k: int,
    slack: float = 0.0,
    sample_fraction: float | None = None,
) -> EquiDepthHistogram:
    """Build a nearly equi-depth ``k``-bucket histogram of ``file``.

    Two cost/accuracy modes:

    * ``slack`` (two-sided): every bucket is guaranteed within
      ``[N/(K(1+s)), (1+s)·N/K]``; ``slack = 0`` gives the exact
      equi-depth histogram (up to rounding).  Worst-case
      :meth:`~EquiDepthHistogram.rank_bounds` are meaningful.
    * ``sample_fraction`` (right-grounded, Theorem 1's *sublinear*
      regime): boundaries are the quantiles of the first
      ``sample_fraction·N`` elements, costing
      ``O((1 + aK/B)·lg(K/B))`` I/Os — far below one scan for small
      fractions.  Each bucket is guaranteed at least
      ``a = sample_fraction·N/K`` elements; upper sizes are only
      distributional (accurate for randomly ordered inputs).
    """
    n = len(file)
    if k < 1 or k > n:
        raise SpecError(f"need 1 <= k <= {n}")
    per = n / k
    if sample_fraction is not None:
        if not 0 < sample_fraction <= 1:
            raise SpecError("sample_fraction must be in (0, 1]")
        a = max(1, int(sample_fraction * per))
        b = n
    else:
        if slack < 0:
            raise SpecError("slack must be non-negative")
        a = max(1, int(per / (1 + slack)))
        b = min(n, max(int(np.ceil((1 + slack) * per)), -(-n // k)))
    validate_params(n, k, a, b)
    result = approximate_splitters(machine, file, k, a, b)
    # Some variants (e.g. right-grounded/trivial) return unsorted
    # splitters, so this sort is load-bearing and charged.
    cmp_sort(machine, len(result.splitters))
    return EquiDepthHistogram(
        boundaries=np.sort(result.splitters["key"].copy()),
        n=n,
        a=a,
        b=b,
    )

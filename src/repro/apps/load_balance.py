"""Range-sharding for parallel processing — the paper's other §1 motivation.

"Partitioning naturally arises in distributing S onto a number K of
machines for parallel processing.  Achieving a perfectly balanced load is
a special instance of approximate K-partitioning with a = b = N/K.
Interestingly, the cost of partitioning can be reduced if one is
satisfied with a roughly balanced distribution."

:func:`plan_shards` materializes the shards with the §5.2 algorithms and
reports a :class:`ShardingPlan` with balance metrics, so the
cost-vs-balance trade is a one-call experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..em.file import EMFile
from ..alg.partitioned import PartitionedFile
from ..core.partitioning import approximate_partition
from ..core.spec import validate_params

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["ShardingPlan", "plan_shards"]


@dataclass
class ShardingPlan:
    """The result of range-sharding a dataset onto ``K`` workers.

    ``partitioned`` owns the disk-resident shards (worker ``i`` reads the
    segments of partition ``i``); free it when done.
    """

    partitioned: PartitionedFile
    io_cost: int

    @property
    def num_workers(self) -> int:
        return self.partitioned.num_partitions

    @property
    def shard_sizes(self) -> list[int]:
        return list(self.partitioned.partition_sizes)

    @property
    def imbalance(self) -> float:
        """Max shard size over the ideal ``N/K`` (1.0 = perfectly even).

        The canonical makespan proxy: parallel work finishes when the
        largest shard does.
        """
        sizes = self.shard_sizes
        ideal = sum(sizes) / len(sizes)
        return max(sizes) / ideal if ideal else 1.0

    @property
    def utilization(self) -> float:
        """Mean load over max load — the fraction of worker time busy."""
        sizes = self.shard_sizes
        mx = max(sizes)
        return (sum(sizes) / len(sizes)) / mx if mx else 1.0

    def free(self) -> None:
        self.partitioned.free()


def plan_shards(
    machine: "Machine", file: EMFile, workers: int, slack: float = 0.0
) -> ShardingPlan:
    """Range-partition ``file`` onto ``workers`` shards.

    ``slack = 0`` demands perfect balance (``a = b = N/K`` up to
    rounding); ``slack = s`` allows shards in
    ``[(1-s)·N/K, (1+s)·N/K]``, which is exactly the approximate
    K-partitioning relaxation the paper shows is cheaper.  The returned
    plan records the simulated I/O spent.
    """
    n = len(file)
    if workers < 1 or workers > n:
        raise SpecError(f"need 1 <= workers <= {n}")
    if slack < 0:
        raise SpecError("slack must be non-negative")
    per = n / workers
    a = max(0, int((1 - slack) * per))
    b = min(n, max(int(np.ceil((1 + slack) * per)), -(-n // workers)))
    validate_params(n, workers, a, b)
    before = machine.snapshot().total
    partitioned = approximate_partition(machine, file, workers, a, b)
    io_cost = machine.snapshot().total - before
    return ShardingPlan(partitioned=partitioned, io_cost=io_cost)

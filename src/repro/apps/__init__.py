"""Downstream applications from the paper's introduction: nearly
equi-depth histograms and range-sharding for parallel processing."""

from .histogram import EquiDepthHistogram, build_histogram
from .load_balance import ShardingPlan, plan_shards
from .order_stats import median, percentile, percentiles, top_k, trimmed_mean

__all__ = [
    "EquiDepthHistogram",
    "build_histogram",
    "ShardingPlan",
    "plan_shards",
    "median",
    "percentile",
    "percentiles",
    "trimmed_mean",
    "top_k",
]

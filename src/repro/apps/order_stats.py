"""External-memory order statistics — composition utilities.

Everyday statistics over disk-resident data, built by composing the
library's selection primitives with single aggregation scans:

* :func:`median` / :func:`percentile` — one linear-I/O selection;
* :func:`percentiles` — many at once via Theorem 4's multi-selection;
* :func:`trimmed_mean` — two selections bracket the kept range, one scan
  aggregates it (the classic robust-mean recipe, ``O(N/B)`` I/Os);
* :func:`top_k` — the k smallest/largest records materialized
  (selection + one filter scan, ``O(N/B + k/B)``).

Each returns plain Python values / record arrays and charges the machine
exactly what the composition costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import composite, composite_of
from ..em.streams import BlockReader, BlockWriter
from ..alg.selection import select_rank_fast
from ..core.multiselect import multi_select

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "median",
    "percentile",
    "percentiles",
    "rank_of_fraction",
    "trimmed_mean",
    "top_k",
]


def rank_of_fraction(n: int, q: float) -> int:
    """1-based rank of the ``q``-quantile (nearest-rank definition).

    The single quantile→rank convention shared by every consumer
    (:func:`percentile`, :func:`percentiles`, and the online service's
    ``quantile`` queries), so their answers agree element for element.
    """
    if not 0 <= q <= 1:
        raise SpecError("quantile fraction must lie in [0, 1]")
    return min(n, max(1, int(np.ceil(q * n))))


# Backwards-compatible private alias (pre-service name).
_rank_of_fraction = rank_of_fraction


def percentile(machine: "Machine", file: EMFile, q: float) -> int:
    """The key of the ``q``-quantile record (nearest rank), ``O(N/B)``."""
    n = len(file)
    if n == 0:
        raise SpecError("cannot take a percentile of an empty file")
    rec = select_rank_fast(machine, file, rank_of_fraction(n, q))
    return int(rec["key"])


def median(machine: "Machine", file: EMFile) -> int:
    """The (lower) median key, ``O(N/B)`` I/Os."""
    return percentile(machine, file, 0.5)


def percentiles(machine: "Machine", file: EMFile, qs, index=None) -> list[int]:
    """Many quantiles at once — one batched multi-selection, never a loop.

    All requested ranks go down in a *single* :func:`multi_select` call
    (``O((N/B)·lg(k/B))`` I/Os total, not per quantile; the regression
    test pins this).  When a built
    :class:`repro.service.index.PartitionIndex` (or any engine with a
    ``batch_select``) over the same data is passed as ``index``, the
    ranks are routed through it instead, which typically costs one
    partition load per *distinct* partition touched.
    """
    if index is not None:
        n = index.n_live
        if n == 0:
            raise SpecError("cannot take percentiles of an empty file")
        ranks = np.array([rank_of_fraction(n, q) for q in qs], dtype=np.int64)
        if len(ranks) == 0:
            return []
        return [int(k) for k in index.batch_select(ranks)["key"]]
    n = len(file)
    if n == 0:
        raise SpecError("cannot take percentiles of an empty file")
    ranks = np.array([rank_of_fraction(n, q) for q in qs], dtype=np.int64)
    if len(ranks) == 0:
        return []
    answers = multi_select(machine, file, ranks)
    return [int(k) for k in answers["key"]]


def trimmed_mean(
    machine: "Machine", file: EMFile, trim: float = 0.1
) -> float:
    """Mean of the keys with the lowest and highest ``trim`` fractions
    dropped — the robust mean, in ``O(N/B)`` I/Os.

    Two selections bracket the kept range ``(lo, hi]`` by rank, then one
    scan sums the keys inside the bracket (composite order resolves
    duplicate keys at the boundaries deterministically).
    """
    n = len(file)
    if n == 0:
        raise SpecError("cannot take a mean of an empty file")
    if not 0 <= trim < 0.5:
        raise SpecError("trim must lie in [0, 0.5)")
    lo_rank = int(np.floor(trim * n))
    hi_rank = n - lo_rank
    if hi_rank <= lo_rank:
        raise SpecError("trim leaves no elements")
    lo_comp = None
    if lo_rank >= 1:
        lo_rec = select_rank_fast(machine, file, lo_rank)
        lo_comp = composite_of(int(lo_rec["key"]), int(lo_rec["uid"]))
    hi_rec = select_rank_fast(machine, file, hi_rank)
    hi_comp = composite_of(int(hi_rec["key"]), int(hi_rec["uid"]))

    total = 0
    count = 0
    with BlockReader(file, "trimmed-mean") as reader:
        for block in reader:
            cmp_linear(machine, 2 * len(block))
            comps = composite(block)
            keep = comps <= hi_comp
            if lo_comp is not None:
                keep &= comps > lo_comp
            total += int(block["key"][keep].sum())
            count += int(keep.sum())
    if count != hi_rank - lo_rank:
        raise AssertionError("trim bracket mis-sized")
    return total / count


def top_k(
    machine: "Machine", file: EMFile, k: int, largest: bool = False
) -> EMFile:
    """Materialize the ``k`` smallest (or largest) records as a new file.

    One selection finds the rank-``k`` boundary, one scan filters —
    ``O(N/B)`` I/Os regardless of ``k``.
    """
    n = len(file)
    if not 1 <= k <= n:
        raise SpecError(f"need 1 <= k <= {n}")
    boundary_rank = k if not largest else n - k + 1
    boundary = select_rank_fast(machine, file, boundary_rank)
    b_comp = composite_of(int(boundary["key"]), int(boundary["uid"]))
    with BlockWriter(machine, "topk") as writer:
        with BlockReader(file, "topk-scan") as reader:
            for block in reader:
                cmp_linear(machine, len(block))
                comps = composite(block)
                keep = comps <= b_comp if not largest else comps >= b_comp
                writer.write(block[keep])
        out = writer.close()
    if len(out) != k:
        raise AssertionError("top-k filter mis-sized")
    return out

"""The paper's contributions (§4 and §5), plus the §3 reduction.

Public API:

* :func:`intermixed_select` — §4.1 L-intermixed selection (Lemma 6);
* :func:`multi_select` — §4.2 optimal multi-selection (Theorem 4);
* :func:`memory_splitters` — the Hu et al. [6] linear-I/O Θ(M)-splitters
  building block (see DESIGN.md for the substitution notes);
* :func:`right_grounded_splitters` / :func:`left_grounded_splitters` /
  :func:`two_sided_splitters` / :func:`approximate_splitters` — §5.1
  (Theorem 5);
* :func:`right_grounded_partition` / :func:`left_grounded_partition` /
  :func:`two_sided_partition` / :func:`approximate_partition` — §5.2
  (Theorem 6);
* :func:`precise_partition_via_approx` — the §3 reduction.
"""

from .intermixed import group_sizes, intermixed_select, max_groups
from .memory_splitters import (
    SIZE_LOWER_FACTOR,
    SIZE_UPPER_FACTOR,
    default_bucket_count,
    memory_splitters,
)
from .multiselect import multi_select, multi_select_streamed
from .partitioning import (
    approximate_partition,
    left_grounded_partition,
    right_grounded_partition,
    two_sided_partition,
)
from .reduction import precise_partition_via_approx
from .spec import (
    MultiselectResult,
    ProblemParams,
    SplitterResult,
    grounding,
    validate_params,
)
from .splitters import (
    approximate_splitters,
    left_grounded_splitters,
    right_grounded_splitters,
    two_sided_splitters,
)

__all__ = [
    "intermixed_select",
    "group_sizes",
    "max_groups",
    "memory_splitters",
    "default_bucket_count",
    "SIZE_LOWER_FACTOR",
    "SIZE_UPPER_FACTOR",
    "multi_select",
    "multi_select_streamed",
    "approximate_splitters",
    "right_grounded_splitters",
    "left_grounded_splitters",
    "two_sided_splitters",
    "approximate_partition",
    "right_grounded_partition",
    "left_grounded_partition",
    "two_sided_partition",
    "precise_partition_via_approx",
    "ProblemParams",
    "SplitterResult",
    "MultiselectResult",
    "validate_params",
    "grounding",
]

"""§4.2 — multi-selection in ``O((N/B)·lg_{M/B}(K/B))`` I/Os (Theorem 4).

Report the elements of ``K`` prescribed ranks.  Two regimes:

* **Base case** ``K ≤ m = cM``:

  1. run :func:`~repro.core.memory_splitters.memory_splitters` — the
     Hu et al. [6] building block — obtaining ``P = Θ(M)`` splitters whose
     induced partitions all have size ``Θ(N/P)``, in ``O(N/B)`` I/Os;
  2. one scan computes all partition sizes (splitters stay resident);
  3. each requested rank ``r_i`` falls in a known partition ``j(i)``, so
     the answer is the element of *local* rank ``t_i`` inside ``P_{j(i)}``
     — build the K-intermixed-selection instance
     ``D_i = {(e, i) : e ∈ P_{j(i)}}`` in one more scan
     (``|D| = Σ_i |P_{j(i)}| ≤ K · O(N/M) = O(N)``), and
  4. solve it with §4.1's intermixed selection in ``O(|D|/B) = O(N/B)``.

  Total: ``O(N/B)`` — *linear*, which is what beats the pre-paper
  multi-partition route when ``K`` is small.

* **General case** ``K > m``: multi-partition ``S`` at the rank *values*
  ``r_m, r_{2m}, ...`` into ``g = ⌈K/m⌉`` partitions
  (``O((N/B)·lg_{M/B} g)`` I/Os), then run the base case inside every
  partition (``O(N/B)`` altogether).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_search
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE, composite
from ..em.streams import BlockReader, BlockWriter
from ..alg.multipartition import multi_partition_at_ranks
from .intermixed import intermixed_select, max_groups
from .memory_splitters import memory_splitters

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["multi_select", "multi_select_streamed"]


def multi_select(machine: "Machine", file: EMFile, ranks) -> np.ndarray:
    """Return the records of the given 1-based ``ranks`` (in input order).

    ``ranks`` may be unsorted and may contain duplicates.  The input file
    is left intact.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(file)
    if ranks.ndim != 1 or len(ranks) == 0:
        raise SpecError("ranks must be a non-empty 1-D array")
    if np.any(ranks < 1) or np.any(ranks > n):
        raise SpecError(f"ranks must lie in [1, {n}]")

    unique_sorted, inverse = np.unique(ranks, return_inverse=True)
    answers_sorted = _solve_sorted(machine, file, unique_sorted)
    return answers_sorted[inverse]


def _solve_sorted(machine: "Machine", file: EMFile, ranks: np.ndarray) -> np.ndarray:
    """Solve for strictly increasing ranks; answers aligned with ``ranks``."""
    n = len(file)
    k = len(ranks)
    limit = machine.load_limit
    if n <= limit:
        from ..alg.inmemory import select_at_ranks

        with machine.memory.lease(n, "msel-tiny"):
            return select_at_ranks(machine, file.to_numpy(counted=True), ranks)

    m = max_groups(machine)
    if k <= m:
        return _base_case(machine, file, ranks)

    # General case: cut S at the rank values r_m, r_{2m}, ... and recurse
    # into each partition with its ≤ m local ranks.
    boundary_ranks = [int(ranks[j]) for j in range(m - 1, k - 1, m)]
    partitioned = multi_partition_at_ranks(machine, file, boundary_ranks)
    answers = np.empty(k, dtype=RECORD_DTYPE)
    try:
        offsets = np.concatenate(([0], np.cumsum(partitioned.partition_sizes)))
        for j in range(partitioned.num_partitions):
            lo, hi = offsets[j], offsets[j + 1]
            in_part = (ranks > lo) & (ranks <= hi)
            if not np.any(in_part):
                continue
            local_ranks = ranks[in_part] - lo
            # Stitch the partition's segments into one contiguous file.
            with BlockWriter(machine, "msel-part") as writer:
                for seg in partitioned.segments_of(j):
                    with BlockReader(seg, "msel-part-in") as reader:
                        for block in reader:
                            writer.write(block)
                part_file = writer.close()
            try:
                answers[in_part] = _solve_sorted(machine, part_file, local_ranks)
            finally:
                part_file.free()
    finally:
        partitioned.free()
    return answers


def _base_case(machine: "Machine", file: EMFile, ranks: np.ndarray) -> np.ndarray:
    """K ≤ m: memory-splitters + one intermixed selection; O(N/B) I/Os."""
    k = len(ranks)
    with machine.phase("multiselect-base"):
        # Splitter granularity: enough buckets that the intermixed
        # instance |D| ≈ K·N/P stays a small fraction of N, but no more
        # resident state than M/8.
        p = min(max(64, 8 * k), machine.M // 8)
        splitters = memory_splitters(machine, file, n_buckets=p)
        n_buckets = len(splitters) + 1
        resident = machine.memory.lease(
            len(splitters) + n_buckets + 4 * k, "msel-resident"
        )
        try:
            splitter_comps = composite(splitters)

            # Scan 1: exact partition sizes.
            sizes = np.zeros(n_buckets, dtype=np.int64)
            with BlockReader(file, "msel-sizes") as reader:
                for block in reader:
                    cmp_search(machine, len(block), n_buckets)
                    np.add.at(
                        sizes,
                        machine.kernel.bucket_of(block, splitter_comps),
                        1,
                    )
            prefix = np.cumsum(sizes)

            # Locate each rank: bucket j(i) and local rank t_i.
            j_of = np.searchsorted(prefix, ranks, side="left")
            below = np.where(j_of > 0, prefix[j_of - 1], 0)
            t = ranks - below

            # Bucket -> list of group ids (groups = sorted rank indices).
            order = np.argsort(j_of, kind="stable")
            groups_flat = order.astype(np.int64)
            ngroups = np.zeros(n_buckets, dtype=np.int64)
            np.add.at(ngroups, j_of, 1)
            group_start = np.concatenate(([0], np.cumsum(ngroups)))

            # Scan 2: build the intermixed instance D.
            with BlockWriter(machine, "msel-D") as writer:
                with BlockReader(file, "msel-build") as reader:
                    for block in reader:
                        cmp_search(machine, len(block), n_buckets)
                        b = machine.kernel.bucket_of(block, splitter_comps)
                        cnt = ngroups[b]
                        total = int(cnt.sum())
                        if total == 0:
                            continue
                        rep = np.repeat(np.arange(len(block)), cnt)
                        within = np.arange(total) - np.repeat(
                            np.cumsum(cnt) - cnt, cnt
                        )
                        out = block[rep].copy()
                        out["grp"] = groups_flat[group_start[b][rep] + within]
                        writer.write(out)
                d_file = writer.close()
        finally:
            resident.release()

        try:
            answers = intermixed_select(machine, d_file, t)
        finally:
            d_file.free()
    return answers


# ----------------------------------------------------------------------
# Streaming rank list: K beyond memory
# ----------------------------------------------------------------------
def multi_select_streamed(
    machine: "Machine", file: EMFile, ranks_file: EMFile
) -> EMFile:
    """Multi-selection with the rank list itself on disk.

    :func:`multi_select` treats its rank array as memory-resident control
    state, capping ``K`` at ``O(M)``.  This variant takes the ranks as an
    :class:`EMFile` whose records' ``key`` field holds the (1-based)
    ranks, **strictly increasing**, and writes the answers to a new file
    in the same order — supporting ``K`` up to ``m·M/2 = Θ(M²)``.

    Structure mirrors §4.2's general case: the boundary ranks
    ``r_m, r_{2m}, ...`` are collected in one scan of the rank file
    (``g - 1 = ⌈K/m⌉ - 1 ≤ K/m`` values, leased), the data file is
    multi-partitioned at them, and each partition answers its ≤ m local
    ranks with the in-memory path.  Extra cost over :func:`multi_select`:
    one scan of the rank file plus one write of the answer file.
    """
    k = len(ranks_file)
    if k == 0:
        raise SpecError("ranks file must be non-empty")
    n = len(file)
    m = max_groups(machine)

    # Pass 1 over the ranks: validate monotonicity, collect boundaries.
    g = -(-k // m)
    if g - 1 > machine.M // 2:
        raise SpecError(
            f"K={k} needs {g - 1} resident boundary ranks, over M/2; "
            f"supported K is at most m*M/2 = {m * machine.M // 2}"
        )
    boundary_lease = machine.memory.lease(max(1, g - 1) + machine.B, "msf-bounds")
    try:
        boundaries: list[int] = []
        prev = 0
        index = 0
        for bi in range(ranks_file.num_blocks):
            block = ranks_file.read_block(bi)
            keys = block["key"]
            if len(keys) and (keys[0] <= prev or np.any(np.diff(keys) <= 0)):
                raise SpecError("ranks must be strictly increasing")
            if len(keys):
                prev = int(keys[-1])
                if prev > n or keys[0] < 1:
                    raise SpecError(f"ranks must lie in [1, {n}]")
            # Global indices m-1, 2m-1, ... are partition boundaries.
            local = np.arange(index, index + len(keys))
            hit = (local % m == m - 1) & (local < (g - 1) * m)
            boundaries.extend(int(v) for v in keys[hit])
            index += len(keys)
    finally:
        boundary_lease.release()

    with BlockWriter(machine, "msf-answers") as answers_writer:
        if not boundaries:
            _streamed_base(machine, file, ranks_file, 0, answers_writer)
            return answers_writer.close()

        partitioned = multi_partition_at_ranks(machine, file, boundaries)
        try:
            offsets = np.concatenate(
                ([0], np.cumsum(partitioned.partition_sizes))
            )
            for j in range(partitioned.num_partitions):
                # Rank indices [j*m, min((j+1)*m, K)) live in partition j.
                if j * m >= k:
                    break
                with BlockWriter(machine, "msf-part") as writer:
                    for seg in partitioned.segments_of(j):
                        with BlockReader(seg, "msf-part-in") as reader:
                            for block in reader:
                                writer.write(block)
                    part_file = writer.close()
                try:
                    _streamed_base(
                        machine,
                        part_file,
                        ranks_file,
                        j,
                        answers_writer,
                        first_index=j * m,
                        last_index=min((j + 1) * m, k),
                        offset=int(offsets[j]),
                    )
                finally:
                    part_file.free()
        finally:
            partitioned.free()
        return answers_writer.close()


def _streamed_base(
    machine: "Machine",
    part_file: EMFile,
    ranks_file: EMFile,
    j: int,
    answers_writer: BlockWriter,
    first_index: int = 0,
    last_index: int | None = None,
    offset: int = 0,
) -> None:
    """Answer rank indices [first_index, last_index) against one partition."""
    if last_index is None:
        last_index = len(ranks_file)
    count = last_index - first_index
    B = machine.B
    with machine.memory.lease(count, "msf-local-ranks"):
        # Read only the rank blocks covering the index slice.
        parts = []
        for bi in range(first_index // B, -(-last_index // B)):
            block = ranks_file.read_block(bi)
            lo = max(0, first_index - bi * B)
            hi = min(len(block), last_index - bi * B)
            parts.append(block["key"][lo:hi])
        local = np.concatenate(parts).astype(np.int64) - offset
        answers = _solve_sorted(machine, part_file, local)
    answers_writer.write(answers)

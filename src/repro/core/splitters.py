"""§5.1 — optimal algorithms for approximate K-splitters.

Three variants, matching the paper case for case:

* **Right-grounded** (``b = N``): take *any* ``aK`` elements ``S'`` of
  ``S`` (we read them off the front of the file), and return the
  ``1/K``-quantile of ``S'`` — the elements of ``S'``-rank ``a, 2a, ...``.
  Each induced partition of ``S`` then contains at least the ``a``
  elements of ``S'`` lying between consecutive splitters.
  Cost ``O((1 + aK/B)·lg_{M/B}(K/B))`` — *sublinear* when ``aK ≪ N``.

* **Left-grounded** (``a = 0``): with ``K' = ⌈N/b⌉``, multi-select the
  ranks ``b, 2b, ..., (K'-1)b``; every induced partition has exactly
  ``b`` elements except the last (``≤ b``).  If ``K' < K``, pad with
  arbitrary distinct elements — extra splitters only refine partitions.
  Cost ``O((N/B)·lg_{M/B}(N/(bB)))``.

* **Two-sided**: when ``a ≥ N/(2K)`` or ``b ≤ 2N/K`` the plain
  ``1/K``-quantile already satisfies both bounds and its cost
  ``O((N/B)·lg_{M/B}(K/B))`` is within the target.  Otherwise set
  ``K' = ⌊(bK - N)/(b - a)⌋``, split off the ``aK'`` smallest elements
  ``S_low`` (one selection + one filter scan), and return: the
  ``1/K'``-quantile of ``S_low`` (partitions of size exactly ``a``), its
  maximum as ``s_{K'}``, and the ``1/(K-K')``-quantile of ``S_high``.
  The paper's choice of ``K'`` guarantees
  ``|S_high| = N - aK' ∈ [a(K-K'), b(K-K')]`` (asserted at runtime).
  Cost ``O((aK/B)·lg_{M/B}(K/B) + (N/B)·lg_{M/B}(N/(bB)))``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_sort
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import composite, composite_of, empty_records
from ..em.streams import BlockReader, BlockWriter, scan_chunks
from ..alg.selection import select_rank_fast
from .multiselect import multi_select
from .spec import SplitterResult, validate_params

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "right_grounded_splitters",
    "left_grounded_splitters",
    "two_sided_splitters",
    "approximate_splitters",
]


def approximate_splitters(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> SplitterResult:
    """Dispatch to the right variant by the grounding of ``(a, b)``.

    The degenerate ``K = N`` case (§1.1: "an algorithm can simply return
    the input S directly") is handled here: every element becomes a
    singleton partition, so the splitters are the ``N-1`` smallest
    elements.
    """
    params = validate_params(len(file), k, a, b)
    if k == len(file):
        return _degenerate_all_elements(machine, file, params)
    if params.is_right_grounded:
        return right_grounded_splitters(machine, file, k, a)
    if params.is_left_grounded:
        return left_grounded_splitters(machine, file, k, b)
    return two_sided_splitters(machine, file, k, a, b)


def _degenerate_all_elements(machine, file, params) -> SplitterResult:
    """K = N: return the N-1 smallest elements (all but the maximum)."""
    from ..alg.sort import external_sort

    with machine.phase("splitters-degenerate"):
        sorted_file = external_sort(machine, file)
        try:
            splitters = sorted_file.to_numpy(counted=True)[:-1]
        finally:
            sorted_file.free()
    return SplitterResult(splitters, params, "degenerate/K=N")


# ----------------------------------------------------------------------
# Right-grounded
# ----------------------------------------------------------------------
def right_grounded_splitters(
    machine: "Machine", file: EMFile, k: int, a: int
) -> SplitterResult:
    """Solve the right-grounded instance (``b = N``)."""
    n = len(file)
    params = validate_params(n, k, a, n)
    if k == 1:
        return SplitterResult(empty_records(0), params, "right-grounded")
    if a == 0:
        # Any K-1 distinct elements work: all size constraints are vacuous.
        splitters = _arbitrary_distinct(machine, file, k - 1)
        return SplitterResult(splitters, params, "right-grounded/trivial")

    with machine.phase("splitters-right"):
        # S': the first aK elements of the file (any aK would do).
        s_prime = _take_prefix(machine, file, a * k)
        try:
            ranks = a * np.arange(1, k, dtype=np.int64)
            splitters = multi_select(machine, s_prime, ranks)
        finally:
            s_prime.free()
    return SplitterResult(_sorted(machine, splitters), params, "right-grounded")


# ----------------------------------------------------------------------
# Left-grounded
# ----------------------------------------------------------------------
def left_grounded_splitters(
    machine: "Machine", file: EMFile, k: int, b: int
) -> SplitterResult:
    """Solve the left-grounded instance (``a = 0``)."""
    n = len(file)
    params = validate_params(n, k, 0, b)
    k_prime = -(-n // b)  # ceil(N/b)
    with machine.phase("splitters-left"):
        if k_prime >= 2:
            ranks = b * np.arange(1, k_prime, dtype=np.int64)
            main = multi_select(machine, file, ranks)
        else:
            main = empty_records(0)
        if k_prime < k:
            pad = _arbitrary_distinct(
                machine, file, k - k_prime, exclude=main
            )
            main = machine.kernel.concat([main, pad])
    return SplitterResult(_sorted(machine, main), params, "left-grounded")


# ----------------------------------------------------------------------
# Two-sided
# ----------------------------------------------------------------------
def two_sided_splitters(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> SplitterResult:
    """Solve the two-sided instance (``a > 0`` and ``b < N``)."""
    n = len(file)
    params = validate_params(n, k, a, b)
    if k == 1:
        return SplitterResult(empty_records(0), params, "two-sided")

    if 2 * a * k >= n or 2 * n >= b * k:
        # Quantile fallback regime: the 1/K-quantile satisfies both bounds.
        with machine.phase("splitters-2s-quantile"):
            ranks = (np.arange(1, k, dtype=np.int64) * n) // k
            splitters = multi_select(machine, file, ranks)
        return SplitterResult(
            _sorted(machine, splitters), params, "two-sided/quantile-fallback"
        )

    k_prime = (b * k - n) // (b - a)
    if not 1 <= k_prime <= k - 1:
        raise AssertionError(
            f"K'={k_prime} out of [1, K-1] — violates the paper's §5.1 claim"
        )

    with machine.phase("splitters-2s"):
        # S_low = the aK' smallest elements; s_{K'} = max(S_low).
        x = select_rank_fast(machine, file, a * k_prime)
        low_file, high_file = _split_at(machine, file, x)
        try:
            parts: list[np.ndarray] = []
            if k_prime >= 2:
                low_ranks = a * np.arange(1, k_prime, dtype=np.int64)
                parts.append(multi_select(machine, low_file, low_ranks))
            parts.append(np.array([x]))
            k_high = k - k_prime
            n_high = len(high_file)
            if not a * k_high <= n_high <= b * k_high:
                raise AssertionError(
                    f"|S_high|={n_high} outside [a(K-K'), b(K-K')] = "
                    f"[{a * k_high}, {b * k_high}]"
                )
            if k_high >= 2:
                high_ranks = (np.arange(1, k_high, dtype=np.int64) * n_high) // k_high
                parts.append(multi_select(machine, high_file, high_ranks))
            splitters = machine.kernel.concat(parts)
        finally:
            low_file.free()
            high_file.free()
    return SplitterResult(_sorted(machine, splitters), params, "two-sided")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _sorted(machine: "Machine", records: np.ndarray) -> np.ndarray:
    """Sort the (small, memory-resident) splitter list, charged."""
    cmp_sort(machine, len(records))
    return machine.kernel.sort_by_composite(records)


def _take_prefix(machine: "Machine", file: EMFile, count: int) -> EMFile:
    """Copy the first ``count`` records into a fresh file
    (``O(1 + count/B)`` I/Os)."""
    if count > len(file):
        raise SpecError(f"cannot take {count} of {len(file)} records")
    taken = 0
    with BlockWriter(machine, "prefix") as writer:
        lease = machine.memory.lease(machine.B, "prefix-read")
        try:
            i = 0
            while taken < count:
                block = file.read_block(i)
                need = min(len(block), count - taken)
                writer.write(block[:need])
                taken += need
                i += 1
        finally:
            lease.release()
        return writer.close()


def _arbitrary_distinct(
    machine: "Machine", file: EMFile, count: int, exclude: np.ndarray | None = None
) -> np.ndarray:
    """Read ``count`` distinct elements off the front of the file, skipping
    any whose composite appears in ``exclude``.  ``O(1 + count/B)`` I/Os
    in the common case (composites are globally distinct, so every record
    qualifies unless excluded).

    The picked elements and the exclusion set are both part of the
    problem's *output* (the splitter list), which lives on the output
    tape rather than in working memory — only the scan buffer is
    charged (see DESIGN.md, "Accounting conventions")."""
    excluded = set() if exclude is None else set(composite(exclude).tolist())
    picked: list[np.ndarray] = []
    need = count
    lease = machine.memory.lease(machine.B, "arb-distinct")
    try:
        for i in range(file.num_blocks):
            if need <= 0:
                break
            block = file.read_block(i)
            comps = composite(block)
            mask = np.fromiter(
                (c not in excluded for c in comps.tolist()),
                dtype=bool,
                count=len(comps),
            )
            chosen = block[mask][:need]
            picked.append(chosen)
            need -= len(chosen)
        if need > 0:
            raise SpecError("not enough distinct elements to pad splitters")
    finally:
        lease.release()
    return machine.kernel.concat(picked)


def _split_at(
    machine: "Machine", file: EMFile, pivot: np.void
) -> tuple[EMFile, EMFile]:
    """One scan splitting the file into (≤ pivot, > pivot) files."""
    p = composite_of(int(pivot["key"]), int(pivot["uid"]))
    low_writer = BlockWriter(machine, "split-low")
    high_writer = BlockWriter(machine, "split-high")
    try:
        with scan_chunks(file, machine.load_limit, "split-scan") as chunks:
            for chunk in chunks:
                cmp_linear(machine, len(chunk))
                mask = composite(chunk) <= p
                low_writer.write(chunk[mask])
                high_writer.write(chunk[~mask])
    except BaseException:
        low_writer.abort()
        high_writer.abort()
        raise
    return low_writer.close(), high_writer.close()

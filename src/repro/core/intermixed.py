"""§4.1 — L-intermixed selection in ``O(|D|/B)`` I/Os (Lemma 6).

Input: a file ``D`` of records, each carrying a group id ``grp ∈ [0, L)``,
and target ranks ``t_0, ..., t_{L-1}`` (1-based within each group).
Output: for every group ``i``, the record with the ``t_i``-th smallest
key in ``D_i``.  Conceptually ``L`` concurrent threads of BFPRT
median-of-medians selection [3], sharing scans so each thread costs
``O(1)`` words of memory instead of a block:

* **Pass 1** — one scan splits every group into subgroups of ≤ 5 and
  collects each subgroup's median into a file Σ (with the same group id);
  the in-memory state is one ≤ 5-record carry buffer per group.
* **Recursion on Σ** — the same problem with ranks ``⌈|Σ_i|/2⌉`` yields
  the median-of-medians ``μ_i`` of every group.
* **Pass 2** — one scan counts ``θ_i = |{e ∈ D_i : e ≤ μ_i}|``.
* **Pass 3** — one scan keeps, per group, only the side of ``μ_i``
  containing the target rank, building ``D'`` and the adjusted ranks.
* **Tail recursion on D'**.

Since ``|Σ| ≤ |D|/5 + L`` and ``|D'| ≤ 7|D|/10 + 3L``, choosing
``L ≤ c·M`` for a small constant ``c`` gives
``|Σ| + |D'| ≤ (19/20)|D|`` whenever ``|D| > M/3``, so the recursion
costs ``O(|D|/B)`` I/Os in total (Lemma 6).  We use ``c = 1/32``
(:func:`max_groups`), which also leaves room for the ``O(L)`` words of
per-level state held across the Σ-recursions at practical ``|D|/M``
ratios — the memory accountant enforces this rather than trusting it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_median5, cmp_sort
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE, composite, empty_records
from ..em.streams import BlockReader, BlockWriter, scan_chunks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["intermixed_select", "max_groups", "group_sizes"]

#: The constant ``c`` of §4.1's ``m = cM``.
MEMORY_FRACTION_DENOM = 32


def max_groups(machine: "Machine") -> int:
    """Largest supported ``L`` (the paper's ``m = cM``)."""
    return max(1, machine.M // MEMORY_FRACTION_DENOM)


def group_sizes(machine: "Machine", d_file: EMFile, n_groups: int) -> np.ndarray:
    """One counted scan returning ``|D_i|`` for every group."""
    sizes = np.zeros(n_groups, dtype=np.int64)
    with machine.memory.lease(n_groups, "gs-counts"):
        with BlockReader(d_file, "gs-scan") as reader:
            for block in reader:
                np.add.at(sizes, block["grp"], 1)
    return sizes


def intermixed_select(machine: "Machine", d_file: EMFile, t: np.ndarray) -> np.ndarray:
    """Solve the L-intermixed selection instance ``(D, t)``.

    Parameters
    ----------
    d_file:
        Records whose ``grp`` field lies in ``[0, len(t))``.  Left intact.
    t:
        1-based target rank per group; ``1 <= t[i] <= |D_i|``.

    Returns
    -------
    numpy.ndarray
        ``L`` records; entry ``i`` is the answer for group ``i``.
    """
    t = np.asarray(t, dtype=np.int64)
    L = len(t)
    if L == 0:
        return empty_records(0)
    if L > max_groups(machine):
        raise SpecError(
            f"L={L} exceeds the supported m = M/{MEMORY_FRACTION_DENOM} = "
            f"{max_groups(machine)} groups (paper §4.1 requires L <= cM)"
        )
    sizes = group_sizes(machine, d_file, L)
    if np.any(sizes == 0):
        raise SpecError("every group must be non-empty")
    if np.any(t < 1) or np.any(t > sizes):
        raise SpecError("target ranks must satisfy 1 <= t_i <= |D_i|")
    with machine.phase("intermixed"):
        return _solve(machine, d_file, t, owned=False)


def _solve(machine: "Machine", file: EMFile, t: np.ndarray, owned: bool) -> np.ndarray:
    L = len(t)
    n = len(file)
    if n <= machine.M // 3:
        return _solve_in_memory(machine, file, t, owned)

    # ------------------------------------------------------------------
    # Pass 1: subgroup medians into Σ.
    # ------------------------------------------------------------------
    sigma_file, sigma_sizes = _median_pass(machine, file, L)

    # ------------------------------------------------------------------
    # Recursion on Σ: group medians μ.  Only ``t`` (O(L)) is live here.
    # ------------------------------------------------------------------
    with machine.memory.lease(L, "ix-suspended-t"):
        mu = _solve(machine, sigma_file, (sigma_sizes + 1) // 2, owned=True)

    # Live per-group state across passes 2-3: μ, θ, t, t' — 4L words.
    mu_lease = machine.memory.lease(4 * L, "ix-mu-theta")
    try:
        mu_comp = composite(mu)

        # --------------------------------------------------------------
        # Pass 2: rank θ_i of μ_i within D_i.
        # --------------------------------------------------------------
        theta = np.zeros(L, dtype=np.int64)
        with BlockReader(file, "ix-theta") as reader:
            for block in reader:
                cmp_linear(machine, len(block))
                g = block["grp"]
                le = composite(block) <= mu_comp[g]
                np.add.at(theta, g[le], 1)

        # --------------------------------------------------------------
        # Pass 3: build D' and t'.
        # --------------------------------------------------------------
        low_side = t <= theta
        t_next = np.where(low_side, t, t - theta)
        with BlockWriter(machine, "ix-dprime") as writer:
            with BlockReader(file, "ix-filter") as reader:
                for block in reader:
                    cmp_linear(machine, len(block))
                    g = block["grp"]
                    le = composite(block) <= mu_comp[g]
                    keep = np.where(low_side[g], le, ~le)
                    writer.write(block[keep])
            d_prime = writer.close()
    finally:
        mu_lease.release()
    if owned:
        file.free()

    # Tail recursion on D'.
    return _solve(machine, d_prime, t_next, owned=True)


def _solve_in_memory(
    machine: "Machine", file: EMFile, t: np.ndarray, owned: bool
) -> np.ndarray:
    """Base case: |D| ≤ M/3 — load, then select per group."""
    L = len(t)
    n = len(file)
    with machine.memory.lease(n + L, "ix-base"):
        cmp_sort(machine, n)
        data = file.to_numpy(counted=True)
        order = np.lexsort((composite(data), data["grp"]))
        data = data[order]
        starts = np.searchsorted(data["grp"], np.arange(L), side="left")
        answers = data[starts + t - 1]
    if owned:
        file.free()
    return answers


def _median_pass(
    machine: "Machine", file: EMFile, L: int
) -> tuple[EMFile, np.ndarray]:
    """One scan producing the subgroup-medians file Σ and ``|Σ_i|``.

    Fully vectorized per memory-sized chunk: carried partial subgroups
    are flattened in front of the chunk, one stable sort groups records
    by group id, per-group positions identify the complete 5-subgroups,
    and one reshape + row-wise median emits all of them at once.
    """
    carry_lease = machine.memory.lease(7 * L, "ix-carry")
    try:
        carry = np.zeros((L, 5), dtype=RECORD_DTYPE)
        carry_cnt = np.zeros(L, dtype=np.int64)
        sigma_sizes = np.zeros(L, dtype=np.int64)
        with BlockWriter(machine, "ix-sigma") as writer:
            chunk_records = machine.load_limit
            with scan_chunks(file, chunk_records, "ix-median-scan") as chunks:
                for chunk in chunks:
                    if len(chunk) == 0:
                        continue
                    cmp_median5(machine, len(chunk))
                    # Prepend the carried partials so each group's records
                    # appear in arrival order after the stable group sort.
                    carried_groups = np.flatnonzero(carry_cnt)
                    parts = [carry[g, : carry_cnt[g]] for g in carried_groups]
                    parts.append(chunk)
                    comb = np.concatenate(parts)
                    comb = comb[np.argsort(comb["grp"], kind="stable")]
                    g = comb["grp"]

                    change = np.flatnonzero(np.diff(g)) + 1
                    starts = np.concatenate(([0], change))
                    ends = np.concatenate((change, [len(comb)]))
                    counts = ends - starts
                    gids = g[starts]

                    pos = np.arange(len(comb)) - np.repeat(starts, counts)
                    keep_per_group = (counts // 5) * 5
                    keep = pos < np.repeat(keep_per_group, counts)

                    full = comb[keep]
                    if len(full):
                        groups5 = full.reshape(-1, 5)
                        med_order = np.argsort(composite(groups5), axis=1)
                        writer.write(
                            groups5[np.arange(len(groups5)), med_order[:, 2]]
                        )
                    sigma_sizes[gids] += counts // 5

                    # New carry: each present group's trailing count % 5.
                    left = comb[~keep]
                    lpos = (pos - np.repeat(keep_per_group, counts))[~keep]
                    carry_cnt[gids] = counts % 5
                    carry[left["grp"], lpos] = left
            # Flush trailing partial subgroups: their (lower) median.
            for g in np.flatnonzero(carry_cnt):
                rest = carry[g, : carry_cnt[g]]
                rest = rest[np.argsort(composite(rest), kind="stable")]
                writer.write(rest[(len(rest) - 1) // 2 : (len(rest) + 1) // 2])
                sigma_sizes[g] += 1
            sigma = writer.close()
    finally:
        carry_lease.release()
    return sigma, sigma_sizes

"""§3 — reduction: precise partitioning via approximate partitioning.

The lower-bound proof for left-grounded approximate K-partitioning rests
on this constructive reduction: given *any* solver producing ordered
partitions of size at most ``b``, precise ``(N/b)``-partitioning (all
partitions exactly ``b``) follows with only ``O(N/B)`` extra I/Os:

1. approximately partition ``S`` into ``P_1, ..., P_K``, each of size
   ``≤ b``;
2. sweep the partitions in order with a residue buffer ``R``: append
   ``P_i`` to ``R``; whenever ``|R| > b``, split off the ``b`` smallest
   elements of ``R`` as the next precise partition and carry the rest.
   Since ``|P_i| ≤ b``, the buffer never exceeds ``2b - 1`` and at most
   one split happens per step.

We implement the sweep faithfully (including the ``|R| > M`` regime,
where the rank-``b`` split uses external selection) so the reduction can
be exercised with arbitrary approximate solvers — the test suite feeds it
deliberately unbalanced ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..em.comparisons import cmp_linear
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE
from ..em.streams import BlockReader, BlockWriter
from ..alg.partitioned import PartitionedFile
from ..alg.selection import select_rank_fast
from .partitioning import left_grounded_partition
from .splitters import _split_at

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["precise_partition_via_approx"]

#: Signature of an approximate left-grounded partitioner:
#: ``solver(machine, file, k, b) -> PartitionedFile`` with all sizes ≤ b.
ApproxSolver = Callable[["Machine", EMFile, int, int], PartitionedFile]


def precise_partition_via_approx(
    machine: "Machine",
    file: EMFile,
    part_size: int,
    approx_solver: ApproxSolver | None = None,
    k: int | None = None,
) -> PartitionedFile:
    """Cut ``file`` into partitions of *exactly* ``part_size`` records.

    ``len(file)`` must be a multiple of ``part_size``.  ``approx_solver``
    defaults to :func:`~repro.core.partitioning.left_grounded_partition`;
    ``k`` is the partition count handed to the approximate solver
    (defaults to ``⌈N/part_size⌉``).
    """
    n = len(file)
    b = int(part_size)
    if b < 1 or n % b != 0:
        raise SpecError("file length must be a positive multiple of part_size")
    solver = approx_solver or left_grounded_partition
    k_apx = k if k is not None else -(-n // b)

    with machine.phase("reduction-approx"):
        approx = solver(machine, file, k_apx, b)
    if any(s > b for s in approx.partition_sizes):
        raise SpecError("approximate solver produced a partition larger than b")

    with machine.phase("reduction-sweep"):
        if 2 * b + 3 * machine.B <= machine.M:
            out_segments = _sweep_in_memory(machine, approx, b)
        else:
            out_segments = _sweep_external(machine, approx, b)

    sizes = [b] * (n // b)
    return PartitionedFile(machine, out_segments, list(range(len(sizes))), sizes)


def _sweep_in_memory(machine: "Machine", approx: PartitionedFile, b: int) -> list[EMFile]:
    """Sweep with a memory-resident residue (``2b + O(B) ≤ M``).

    Cost: one read per input block plus one write per output block —
    ``≈ 2N/B + K`` I/Os, the reduction's advertised ``O(N/B)``.
    """
    out: list[EMFile] = []
    with machine.memory.lease(2 * b, "sweep-carry"):
        carry = np.empty(0, dtype=RECORD_DTYPE)
        try:
            for p in range(approx.num_partitions):
                # Append the *entire* partition before splitting (§3's
                # step 2): a partially-read partition is unordered
                # relative to its own unread blocks, so splitting
                # mid-partition could emit the wrong elements.
                for seg in approx.segments_of(p):
                    with BlockReader(seg, "sweep-read") as reader:
                        for block in reader:
                            carry = machine.kernel.concat([carry, block])
                    seg.free()
                while len(carry) > b:
                    cmp_linear(machine, 2 * len(carry))
                    idx = machine.kernel.rank_order(carry, np.array([b - 1]))
                    out.append(
                        EMFile.from_records(
                            machine, carry[idx[:b]], counted=True
                        )
                    )
                    carry = carry[idx[b:]]
            if len(carry):
                if len(carry) != b:
                    raise AssertionError(
                        "final residue not exactly b — sweep accounting broken"
                    )
                out.append(EMFile.from_records(machine, carry, counted=True))
        finally:
            approx.segments = []
            approx.segment_partition = []
    return out


def _sweep_external(machine: "Machine", approx: PartitionedFile, b: int) -> list[EMFile]:
    """Sweep with a disk-resident residue (for ``b = Ω(M)``).

    Each split is a linear selection + filter over ``≤ 2b`` records; an
    element is touched by at most two splits, so the total is still
    ``O(N/B)`` (with a larger constant than the in-memory path)."""
    out: list[EMFile] = []
    residue: list[EMFile] = []  # ordered segments of R (no copy on append)
    residue_len = 0
    try:
        for p in range(approx.num_partitions):
            for seg in approx.segments_of(p):
                residue.append(seg)
                residue_len += len(seg)
            while residue_len > b:
                emitted, residue, residue_len = _split_residue(
                    machine, residue, residue_len, b
                )
                out.append(emitted)
        if residue_len:
            if residue_len != b:
                raise AssertionError(
                    "final residue not exactly b — sweep accounting broken"
                )
            emitted, residue, residue_len = _split_residue(
                machine, residue, residue_len, b
            )
            out.append(emitted)
    finally:
        for seg in residue:
            seg.free()
        # Segments moved into the residue were owned by ``approx``;
        # detach so its free() does not double-free them.
        approx.segments = []
        approx.segment_partition = []
    return out


def _split_residue(
    machine: "Machine", residue: list[EMFile], residue_len: int, b: int
) -> tuple[EMFile, list[EMFile], int]:
    """Emit the ``b`` smallest records of the residue; return the rest.

    In-memory when the residue fits (``≤ 2b - 1`` records); otherwise the
    residue is concatenated and split externally around its rank-``b``
    element (both paths are ``O(|R|/B + 1)`` I/Os).
    """
    limit = machine.M  # whole-residue load; no stream buffers needed
    if residue_len <= limit:
        with machine.memory.lease(residue_len, "sweep-load"):
            data = machine.kernel.concat(
                [seg.to_numpy(counted=True) for seg in residue]
            )
            for seg in residue:
                seg.free()
            from ..alg.inmemory import partition_at_ranks

            data = partition_at_ranks(machine, data, [b])
            emit = data[:b]
            rest = data[b:]
            emitted = EMFile.from_records(machine, emit, counted=True)
            rest_file = EMFile.from_records(machine, rest, counted=True)
        return emitted, ([rest_file] if len(rest_file) else []), len(rest_file)

    # External path: concatenate, select the rank-b element, filter.
    with BlockWriter(machine, "sweep-concat") as writer:
        for seg in residue:
            with BlockReader(seg, "sweep-concat-in") as reader:
                for block in reader:
                    writer.write(block)
        combined = writer.close()
    for seg in residue:
        seg.free()
    x = select_rank_fast(machine, combined, b)
    low, high = _split_at(machine, combined, x)
    combined.free()
    if len(low) != b:  # composites are distinct, so the cut is exact
        raise AssertionError("external residue split mis-sized")
    return low, ([high] if len(high) else []), len(high)

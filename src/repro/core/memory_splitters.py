"""Linear-I/O Θ(M)-splitters — the Hu et al. [6] building block.

The paper's multi-selection base case (§4.2) invokes, as a black box, the
result of Hu, Sheng, Tao, Yang and Zhou (SODA 2013): for ``K = M``,
``a = c1·N/M`` and ``b = c2·N/M`` the approximate K-splitters problem can
be solved in ``O(N/B)`` I/Os.  That paper's algorithm is not restated in
this one, so we substitute a routine with exactly the interface the base
case relies on:

* ``O(N/B)`` I/Os (tested),
* produces ``P - 1`` splitters for ``P = Θ(M)`` buckets,
* every induced partition has size between ``c1·N/P`` and ``c2·N/P``
  for fixed constants (we target, and test, ``c1 = 1/8`` and ``c2 = 4``).

Method — two-level deterministic sample-distribute-sample:

1. find ``f1 - 1 ≈ √P`` approximate quantile pivots
   (:func:`~repro.alg.sampling.approx_quantile_pivots`, one ``O(N/B)``
   sampling cascade) and distribute the file into ``f1`` buckets
   (one pass);
2. inside each bucket (size ``≈ N/f1``), find a proportional number of
   local approximate quantile pivots — the bucket is smaller by a ``√P``
   factor, so its sampling error is ``O(N/P)``, fine enough for the final
   splitters;
3. the union of level-1 pivots and all level-2 pivots is the splitter set.

Both levels cost ``O(N/B)`` in total.  This needs ``√P`` to be a legal
distribution fanout, i.e. the usual tall-cache shape ``M = Ω(B²)``; when
the machine is flatter we lower ``P`` to ``fanout²`` (documented in
DESIGN.md), which only changes the constants of the base case that
consumes us.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_sort
from ..em.file import EMFile
from ..em.records import empty_records
from ..alg.distribute import distribute_by_pivots
from ..alg.sampling import (
    approx_quantile_pivots,
    max_distribution_fanout,
    pick_pivots_from_sorted,
    pivot_rank_error_bound,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "memory_splitters",
    "default_bucket_count",
    "SIZE_LOWER_FACTOR",
    "SIZE_UPPER_FACTOR",
]

#: Guaranteed constants: every induced partition has size within
#: ``[SIZE_LOWER_FACTOR * N/P, SIZE_UPPER_FACTOR * N/P]`` (empirically
#: validated by the test suite across workloads and machine shapes).
SIZE_LOWER_FACTOR = 1 / 8
SIZE_UPPER_FACTOR = 4.0


def default_bucket_count(machine: "Machine") -> int:
    """The Θ(M) bucket count used when the caller does not specify one.

    ``M/8`` keeps the splitter set comfortably memory-resident next to the
    scan buffers of whoever consumes it; clamped to ``fanout²`` on flat
    (non-tall-cache) machines.
    """
    f = max_distribution_fanout(machine)
    return max(2, min(machine.M // 8, f * f))


def memory_splitters(
    machine: "Machine", file: EMFile, n_buckets: int | None = None
) -> np.ndarray:
    """Return sorted splitter records dividing ``file`` into ``<= n_buckets``
    buckets of size ``Θ(N/n_buckets)`` each, in ``O(N/B)`` I/Os.

    The returned array has at most ``n_buckets - 1`` records (fewer when
    the file is small); all are elements of the file.
    """
    n = len(file)
    if n_buckets is None:
        n_buckets = default_bucket_count(machine)
    n_buckets = max(1, min(n_buckets, n))
    if n_buckets == 1:
        return empty_records(0)

    limit = machine.load_limit
    if n <= limit:
        # Exact in-memory base case: select the quantile positions
        # directly (Θ(n·lg P) comparisons, no full sort).
        from ..alg.inmemory import select_at_ranks

        with machine.memory.lease(n, "ms-base"):
            positions = np.unique(
                np.clip(
                    np.round(
                        np.arange(1, n_buckets) * n / n_buckets
                    ).astype(np.int64),
                    1,
                    n,
                )
            )
            pivots = select_at_ranks(
                machine, file.to_numpy(counted=True), positions
            )
            cmp_sort(machine, len(pivots))
            return machine.kernel.sort_by_composite(pivots)

    # Single-level fast path: when a high-oversample sampling cascade can
    # already deliver all P-1 pivots with rank error well below N/P, skip
    # the distribute + per-bucket refinement entirely (~1.4 scans instead
    # of ~4).  This typically fires for P up to a few hundred on
    # tall-cache machines and is exactly why small-K multi-selection ends
    # up close to one scan.
    # Error budget 0.4·N/P keeps every partition within [0.2, 1.8]·N/P —
    # comfortably inside the advertised [SIZE_LOWER_FACTOR,
    # SIZE_UPPER_FACTOR] window.
    oversample = 16
    err = pivot_rank_error_bound(n, n_buckets - 1, machine, oversample)
    if err <= 2 * n // (5 * n_buckets):
        with machine.phase("memory-splitters"):
            return approx_quantile_pivots(machine, file, n_buckets - 1, oversample)

    f1 = int(np.ceil(np.sqrt(n_buckets)))
    f1 = max(2, min(f1, max_distribution_fanout(machine)))

    with machine.phase("memory-splitters"):
        level1 = approx_quantile_pivots(machine, file, f1 - 1)
        buckets = distribute_by_pivots(machine, file, level1, "ms")
        all_pivots: list[np.ndarray] = [level1]
        for bucket in buckets:
            size = len(bucket)
            # Proportional share of the global splitter budget.
            local = int(round(n_buckets * size / n)) - 1
            if size > 0 and local >= 1:
                all_pivots.append(approx_quantile_pivots(machine, bucket, local))
            bucket.free()

    splitters = machine.kernel.concat(all_pivots)
    with machine.memory.lease(len(splitters), "ms-result"):
        cmp_sort(machine, len(splitters))
        splitters = machine.kernel.sort_by_composite(splitters)
    return splitters

"""Problem specifications and result types (paper §1 and §1.1).

Centralizes the parameter preconditions the paper states:

* ``a <= N/K`` and ``b >= N/K`` — otherwise neither problem has a solution;
* ``K <= N`` (the paper treats ``K = N`` as degenerate: partitioning
  becomes sorting, splitters become "return S");
* for approximate K-partitioning the paper assumes ``N`` is a multiple of
  ``K`` only to simplify the exposition — our implementations use
  floor/ceil splits, which stay within ``[a, b]`` because ``a`` and ``b``
  are integers with ``a <= N/K <= b`` (see the per-algorithm notes).

Grounding terminology (§1.1): ``a == 0`` is *left-grounded*, ``b >= N`` is
*right-grounded*, otherwise *two-sided*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..em.disk import IOCounters
from ..em.errors import SpecError

__all__ = [
    "ProblemParams",
    "SplitterResult",
    "MultiselectResult",
    "validate_params",
    "grounding",
]


@dataclass(frozen=True)
class ProblemParams:
    """Validated parameters of an approximate partitioning/splitters instance."""

    n: int
    k: int
    a: int
    b: int

    @property
    def is_left_grounded(self) -> bool:
        return self.a == 0

    @property
    def is_right_grounded(self) -> bool:
        return self.b >= self.n

    @property
    def is_two_sided(self) -> bool:
        return not (self.is_left_grounded or self.is_right_grounded)


def validate_params(n: int, k: int, a: int, b: int) -> ProblemParams:
    """Check the §1.1 preconditions; raises :class:`SpecError` on violation."""
    if n < 1:
        raise SpecError("input must be non-empty")
    if not 1 <= k <= n:
        raise SpecError(f"K={k} must satisfy 1 <= K <= N={n}")
    if a < 0 or b < 0:
        raise SpecError("a and b must be non-negative")
    if a * k > n:
        raise SpecError(f"no solution: a={a} exceeds N/K = {n}/{k}")
    if b * k < n:
        raise SpecError(f"no solution: b={b} is below N/K = {n}/{k}")
    return ProblemParams(n=n, k=k, a=a, b=b)


def grounding(params: ProblemParams) -> str:
    """Return 'left', 'right', or 'two-sided' per §1.1."""
    if params.is_left_grounded:
        return "left"
    if params.is_right_grounded:
        return "right"
    return "two-sided"


@dataclass
class SplitterResult:
    """Output of an approximate K-splitters algorithm.

    Attributes
    ----------
    splitters:
        Record array of the ``K-1`` splitters, sorted by composite order.
        All splitters are elements of the input (as the problem requires).
    params:
        The validated problem instance.
    variant:
        Which algorithm branch produced the result (for experiments):
        e.g. ``"right-grounded"``, ``"two-sided/quantile-fallback"``.
    io:
        I/O counters measured while solving (filled by callers that wrap
        the call in :meth:`Machine.measure`; optional).
    """

    splitters: np.ndarray
    params: ProblemParams
    variant: str
    io: IOCounters | None = field(default=None)


@dataclass
class MultiselectResult:
    """Output of multi-selection: ``records[i]`` has rank ``ranks[i]``."""

    ranks: np.ndarray
    records: np.ndarray
    io: IOCounters | None = field(default=None)

"""§5.2 — optimal algorithms for approximate K-partitioning.

Same case analysis as the splitters algorithms, with multi-selection
replaced by exact multi-partition (the partitions must be materialized):

* **Right-grounded** (``b = N``): split off the ``a(K-1)`` smallest
  elements ``S'`` (one selection + one filter scan, ``O(N/B)``), cut
  ``S'`` into ``K-1`` partitions of size exactly ``a`` with
  multi-partition, and let ``S \\ S'`` be the ``K``-th partition (its size
  ``N - a(K-1) ≥ a``).
  Cost ``O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})``.

* **Left-grounded** (``a = 0``): with ``K' = ⌈N/b⌉``, multi-partition
  into ``K'`` near-equal parts (sizes ``⌊N/K'⌋``/``⌈N/K'⌉ ≤ b``) and pad
  with ``K - K'`` empty partitions.
  Cost ``O((N/B)·lg_{M/B} min{N/b, N/B})``.

* **Two-sided**: quantile fallback into ``K`` near-equal parts when
  ``a ≥ N/(2K)`` or ``b ≤ 2N/K``; otherwise split at ``K'`` as in the
  two-sided splitters algorithm and multi-partition each side evenly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..em.file import EMFile
from ..em.streams import copy_file
from ..alg.multipartition import multi_partition
from ..alg.partitioned import PartitionedFile
from ..alg.selection import select_rank_fast
from .spec import validate_params
from .splitters import _split_at

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "right_grounded_partition",
    "left_grounded_partition",
    "two_sided_partition",
    "approximate_partition",
]


def approximate_partition(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> PartitionedFile:
    """Dispatch to the right variant by the grounding of ``(a, b)``.

    The degenerate ``K = N`` case (§1.1: "approximate K-partitioning
    degenerates into sorting") is handled here by sorting and cutting
    into singletons.
    """
    n = len(file)
    params = validate_params(n, k, a, b)
    if k == n:
        with machine.phase("partition-degenerate"):
            return multi_partition(machine, file, [1] * n)
    if params.is_right_grounded:
        return right_grounded_partition(machine, file, k, a)
    if params.is_left_grounded:
        return left_grounded_partition(machine, file, k, b)
    return two_sided_partition(machine, file, k, a, b)


def _near_equal_sizes(n: int, parts: int) -> list[int]:
    """``parts`` sizes of ``⌊n/parts⌋`` or ``⌈n/parts⌉`` summing to ``n``."""
    base, extra = divmod(n, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def right_grounded_partition(
    machine: "Machine", file: EMFile, k: int, a: int
) -> PartitionedFile:
    """Solve the right-grounded instance (``b = N``)."""
    n = len(file)
    validate_params(n, k, a, n)
    if k == 1 or a == 0:
        # Single partition, or all size-constraints vacuous: one partition
        # holds everything (preceded by K-1 empty ones when a = 0).
        whole = copy_file(machine, file, "rg-whole")
        sizes = [0] * (k - 1) + [n]
        return PartitionedFile(machine, [whole], [k - 1], sizes)

    with machine.phase("partition-right"):
        x = select_rank_fast(machine, file, a * (k - 1))
        s_prime, rest = _split_at(machine, file, x)
        try:
            head = multi_partition(machine, s_prime, [a] * (k - 1))
        finally:
            s_prime.free()
        segments = head.segments + [rest]
        segment_partition = head.segment_partition + [k - 1]
        sizes = head.partition_sizes + [len(rest)]
    return PartitionedFile(machine, segments, segment_partition, sizes)


def left_grounded_partition(
    machine: "Machine", file: EMFile, k: int, b: int
) -> PartitionedFile:
    """Solve the left-grounded instance (``a = 0``)."""
    n = len(file)
    validate_params(n, k, 0, b)
    k_prime = -(-n // b)  # ceil(N/b)
    with machine.phase("partition-left"):
        sizes = _near_equal_sizes(n, k_prime) + [0] * (k - k_prime)
        return multi_partition(machine, file, sizes)


def two_sided_partition(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> PartitionedFile:
    """Solve the two-sided instance (``a > 0`` and ``b < N``)."""
    n = len(file)
    validate_params(n, k, a, b)
    if k == 1:
        whole = copy_file(machine, file, "2s-whole")
        return PartitionedFile(machine, [whole], [0], [n])

    if 2 * a * k >= n or 2 * n >= b * k:
        with machine.phase("partition-2s-quantile"):
            return multi_partition(machine, file, _near_equal_sizes(n, k))

    k_prime = (b * k - n) // (b - a)
    if not 1 <= k_prime <= k - 1:
        raise AssertionError(
            f"K'={k_prime} out of [1, K-1] — violates the paper's §5.2 claim"
        )

    with machine.phase("partition-2s"):
        x = select_rank_fast(machine, file, a * k_prime)
        low_file, high_file = _split_at(machine, file, x)
        k_high = k - k_prime
        n_high = len(high_file)
        if not a * k_high <= n_high <= b * k_high:
            raise AssertionError(
                f"|S_high|={n_high} outside [a(K-K'), b(K-K')] = "
                f"[{a * k_high}, {b * k_high}]"
            )
        try:
            low = multi_partition(machine, low_file, [a] * k_prime)
            high = multi_partition(
                machine, high_file, _near_equal_sizes(n_high, k_high)
            )
        finally:
            low_file.free()
            high_file.free()
        segments = low.segments + high.segments
        segment_partition = low.segment_partition + [
            k_prime + p for p in high.segment_partition
        ]
        sizes = low.partition_sizes + high.partition_sizes
    return PartitionedFile(machine, segments, segment_partition, sizes)

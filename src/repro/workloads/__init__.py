"""Seeded workload generators for experiments and tests."""

from .queries import (
    QUERY_TRACES,
    adversarial_trace,
    mixed_query_trace,
    uniform_trace,
    update_batches,
    zipfian_trace,
)
from .generators import (
    nearly_sorted,
    organ_pipe,
    sorted_runs,
    WORKLOADS,
    few_distinct,
    hard_permutation,
    load_input,
    random_permutation,
    reverse_sorted,
    sorted_keys,
    uniform_random,
    zipf_like,
)

__all__ = [
    "nearly_sorted",
    "organ_pipe",
    "sorted_runs",
    "WORKLOADS",
    "few_distinct",
    "hard_permutation",
    "load_input",
    "random_permutation",
    "reverse_sorted",
    "sorted_keys",
    "uniform_random",
    "zipf_like",
    "QUERY_TRACES",
    "adversarial_trace",
    "mixed_query_trace",
    "uniform_trace",
    "update_batches",
    "zipfian_trace",
]

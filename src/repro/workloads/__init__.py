"""Seeded workload generators for experiments and tests."""

from .generators import (
    nearly_sorted,
    organ_pipe,
    sorted_runs,
    WORKLOADS,
    few_distinct,
    hard_permutation,
    load_input,
    random_permutation,
    reverse_sorted,
    sorted_keys,
    uniform_random,
    zipf_like,
)

__all__ = [
    "nearly_sorted",
    "organ_pipe",
    "sorted_runs",
    "WORKLOADS",
    "few_distinct",
    "hard_permutation",
    "load_input",
    "random_permutation",
    "reverse_sorted",
    "sorted_keys",
    "uniform_random",
    "zipf_like",
]

"""Seeded query-trace generators for the online partition service.

A *rank trace* is a 1-based ``np.int64`` array of length ``q``: the
sequence of ``select`` ranks a client issues against a file of ``n``
records.  Three shapes matter for the online engine
(:mod:`repro.service.online`):

* :func:`uniform_trace` — every rank equally likely; the engine must
  eventually refine everywhere, so total I/O approaches the offline
  splitter cost.
* :func:`zipfian_trace` — a few hot ranks dominate; refinements
  concentrate where queries land and repeats hit the pivot-tree cache,
  the regime where lazy refinement wins big.
* :func:`adversarial_trace` — evenly spaced ranks visited in
  bit-reversed order: each query lands as far as possible from every
  previously refined region, forcing the fastest possible spread of
  refinement work (the worst case for laziness).

:func:`mixed_query_trace` additionally produces a mixed-kind trace
(selects, quantiles, range counts, partition lookups) as plain tuples
that :class:`repro.service.frontend.QueryFrontend` accepts directly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_trace",
    "zipfian_trace",
    "adversarial_trace",
    "shard_skew_trace",
    "mixed_query_trace",
    "update_batches",
    "QUERY_TRACES",
]

#: Large odd multiplier (Knuth) scattering consecutive ids across [0, n).
_SCATTER = 2654435761


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_trace(q: int, n: int, seed: int = 0) -> np.ndarray:
    """``q`` ranks drawn uniformly from ``[1, n]``."""
    if n < 1 or q < 0:
        raise ValueError("need n >= 1 and q >= 0")
    return _rng(seed).integers(1, n + 1, size=q).astype(np.int64)


def zipfian_trace(
    q: int, n: int, seed: int = 0, alpha: float = 1.1
) -> np.ndarray:
    """``q`` ranks with Zipf(``alpha``) popularity over distinct ranks.

    The ``i``-th most popular *identity* is drawn with probability
    ``∝ i^-alpha``; identities are scattered across ``[1, n]`` by a
    multiplicative hash so the hot set is spread over the whole file
    (hitting one partition repeatedly would be too easy).
    """
    if n < 1 or q < 0:
        raise ValueError("need n >= 1 and q >= 0")
    if alpha <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    ids = _rng(seed).zipf(alpha, size=q).astype(np.int64)
    # Reduce mod n *before* multiplying: zipf draws are unbounded, and
    # ``(ids - 1) * _SCATTER`` overflows int64 for ids ≳ 2^32 (heavy-tail
    # draws hit this with probability ≈ q·2^(-32(alpha-1)), i.e. routinely
    # for alpha near 1), silently folding the wrapped hot ids onto
    # implementation-defined ranks.  ``(x % n) * (_SCATTER % n)`` is
    # congruent to ``x * _SCATTER`` mod n and stays below n·n ≤ 2^62 for
    # n ≤ 2^31, the supported file-size range.
    return ((ids - 1) % n) * (_SCATTER % n) % n + 1


def _bit_reverse(i: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def adversarial_trace(q: int, n: int, seed: int = 0) -> np.ndarray:
    """``q`` evenly spaced ranks visited in bit-reversed order.

    Successive queries land in maximally separated regions of the rank
    space, so a lazy engine can never serve two consecutive queries from
    one refined partition — the refinement-forcing worst case.  The
    ``seed`` rotates the starting offset (the shape itself is
    deterministic).
    """
    if n < 1 or q < 0:
        raise ValueError("need n >= 1 and q >= 0")
    if q == 0:
        return np.empty(0, dtype=np.int64)
    bits = max(1, int(np.ceil(np.log2(q))))
    order = [_bit_reverse(i, bits) for i in range(1 << bits)]
    order = [i for i in order if i < q]
    even = np.linspace(1, n, q).astype(np.int64)
    rot = int(_rng(seed).integers(0, q))
    return even[(np.array(order, dtype=np.int64) + rot) % q]


def shard_skew_trace(
    q: int,
    n: int,
    seed: int = 0,
    shards: int = 8,
    alpha: float = 1.2,
) -> np.ndarray:
    """``q`` ranks with zipfian popularity over *rank stripes* — the
    hot-shard workload for the sharded service.

    The rank space splits into ``shards`` equal contiguous stripes (a
    key-range-sharded deployment routes each stripe to one shard).
    Each query picks a stripe with Zipf(``alpha``) popularity — stripe
    popularity order is a seeded permutation, so the hot shard isn't
    always shard 0 — then a uniform rank inside it.  With ``shards``
    matching the service's ``W`` this adversarially skews routing (one
    worker sees most of the traffic); with ``shards = 1`` it degrades
    to :func:`uniform_trace`-like balanced load.
    """
    if n < 1 or q < 0:
        raise ValueError("need n >= 1 and q >= 0")
    if shards < 1 or shards > n:
        raise ValueError("need 1 <= shards <= n")
    if alpha <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    rng = _rng(seed)
    hot_order = rng.permutation(shards)
    stripe = hot_order[(rng.zipf(alpha, size=q).astype(np.int64) - 1) % shards]
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    lo, hi = bounds[stripe], bounds[stripe + 1]
    return (lo + rng.integers(0, np.maximum(hi - lo, 1))).astype(np.int64) + 1


def mixed_query_trace(
    q: int, n: int, seed: int = 0, key_range: int | None = None
) -> list[tuple]:
    """A mixed trace of query tuples over a file of ``n`` records.

    Roughly half selects (zipfian ranks), a quarter quantiles, and the
    rest split between range counts and partition lookups.  Tuples use
    the :class:`repro.service.frontend.Query` wire shapes:
    ``("select", rank)``, ``("quantile", q)``,
    ``("range_count", lo, hi)``, ``("partition_of", key)``.
    """
    if n < 1 or q < 0:
        raise ValueError("need n >= 1 and q >= 0")
    if key_range is None:
        key_range = 4 * n
    rng = _rng(seed)
    ranks = zipfian_trace(q, n, seed=seed + 1)
    out: list[tuple] = []
    for i in range(q):
        roll = rng.random()
        if roll < 0.5:
            out.append(("select", int(ranks[i])))
        elif roll < 0.75:
            out.append(("quantile", float(np.round(rng.random(), 3))))
        elif roll < 0.9:
            lo = int(rng.integers(0, key_range))
            hi = int(rng.integers(lo, key_range))
            out.append(("range_count", lo, hi))
        else:
            out.append(("partition_of", int(rng.integers(0, key_range))))
    return out


def update_batches(
    initial_keys,
    batches: int,
    appends: int,
    deletes: int,
    seed: int = 0,
) -> list[list[tuple]]:
    """A deterministic interleaved update plan for the partition service.

    Returns ``batches`` lists of operations — ``("append", keys_array)``
    and ``("delete", key)`` tuples, shuffled together within each batch —
    such that every delete targets a key that is live at its position in
    the plan (tracking appends and deletes across batches), so applying
    the plan in order through
    :class:`repro.service.updates.DeltaBuffer` never raises.  Appended
    keys are fresh (disjoint from ``initial_keys``).  The same
    ``(initial_keys, batches, appends, deletes, seed)`` always produces
    the same plan — crash tests replay it on a shadow index and compare
    answers, and the durability solver replays it for the budget gate.
    """
    if batches < 0 or appends < 0 or deletes < 0:
        raise ValueError("batches/appends/deletes must be >= 0")
    rng = _rng(seed)
    live = [int(k) for k in np.asarray(initial_keys, dtype=np.int64)]
    fresh = (
        int(max(live)) + 1 if live else 0
    )  # appended keys start past the initial key range
    plan: list[list[tuple]] = []
    for _ in range(batches):
        ops: list[tuple] = []
        new_keys = np.arange(fresh, fresh + appends, dtype=np.int64)
        fresh += appends
        # Split the appends into a few runs so batches interleave
        # appends and deletes rather than grouping all appends first.
        runs = int(rng.integers(1, 4)) if appends else 0
        bounds = sorted(
            int(rng.integers(0, appends + 1)) for _ in range(runs - 1)
        )
        for lo, hi in zip([0, *bounds], [*bounds, appends]):
            if hi > lo:
                ops.append(("append", new_keys[lo:hi]))
        victims: list[int] = []
        for _ in range(min(deletes, len(live))):
            victims.append(live.pop(int(rng.integers(len(live)))))
        ops.extend(("delete", v) for v in victims)
        order = rng.permutation(len(ops))
        batch = [ops[i] for i in order]
        # A delete may precede the append run introducing other fresh
        # keys — that's the interleaving under test — but deletes always
        # target keys live *before* this batch, so order stays valid.
        plan.append(batch)
        live.extend(int(k) for k in new_keys)
    return plan


#: Registry of named rank traces: name -> ``fn(q, n, seed) -> ranks``.
QUERY_TRACES = {
    "uniform": uniform_trace,
    "zipfian": zipfian_trace,
    "adversarial": adversarial_trace,
    "shard-skew": shard_skew_trace,
}

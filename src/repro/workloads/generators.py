"""Input workload generators.

All generators return record arrays (see :mod:`repro.em.records`) with
unique uids ``0..n-1``, and every generator takes a ``seed`` so experiments
are reproducible bit for bit.  :func:`load_input` stages a workload onto a
machine's disk without charging I/Os (the model assumes the input already
resides on disk in ``N/B`` blocks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.file import EMFile
from ..em.records import KEY_MAX, make_records

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "uniform_random",
    "random_permutation",
    "sorted_keys",
    "reverse_sorted",
    "few_distinct",
    "zipf_like",
    "nearly_sorted",
    "organ_pipe",
    "sorted_runs",
    "hard_permutation",
    "load_input",
    "WORKLOADS",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """Distinct keys ``0..n-1`` in uniformly random order."""
    keys = _rng(seed).permutation(n)
    return make_records(keys)


def uniform_random(n: int, seed: int = 0, key_range: int | None = None) -> np.ndarray:
    """Keys drawn uniformly from ``[0, key_range)`` (duplicates possible).

    ``key_range`` defaults to ``4n`` (sparse enough for few collisions,
    dense enough to exercise tie-breaking occasionally).
    """
    if key_range is None:
        key_range = max(1, 4 * n)
    key_range = min(key_range, KEY_MAX)
    keys = _rng(seed).integers(0, key_range, size=n)
    return make_records(keys)


def sorted_keys(n: int, seed: int = 0) -> np.ndarray:
    """Already sorted distinct keys (best case for scan-heavy stages)."""
    return make_records(np.arange(n))


def reverse_sorted(n: int, seed: int = 0) -> np.ndarray:
    """Reverse-sorted distinct keys."""
    return make_records(np.arange(n)[::-1].copy())


def few_distinct(n: int, seed: int = 0, n_distinct: int = 8) -> np.ndarray:
    """Heavy duplication: only ``n_distinct`` distinct keys.

    Stresses the uid tie-breaking path of every algorithm.
    """
    keys = _rng(seed).integers(0, max(1, n_distinct), size=n)
    return make_records(keys)


def zipf_like(n: int, seed: int = 0, alpha: float = 1.3) -> np.ndarray:
    """Skewed duplicate distribution (Zipf-ish), clipped to the key range."""
    rng = _rng(seed)
    keys = np.minimum(rng.zipf(alpha, size=n), KEY_MAX).astype(np.int64)
    return make_records(keys)


def nearly_sorted(n: int, seed: int = 0, swap_fraction: float = 0.05) -> np.ndarray:
    """Sorted keys with a fraction of random adjacent-ish swaps.

    Models logs that arrive almost in order; exercises the presortedness
    (in)sensitivity of the comparison-based algorithms.
    """
    rng = _rng(seed)
    keys = np.arange(n)
    n_swaps = int(swap_fraction * n)
    if n_swaps and n > 1:
        # Sequential swaps: overlapping positions compose instead of
        # clobbering, so the result stays a permutation.
        for i in rng.integers(0, n - 1, size=n_swaps):
            keys[i], keys[i + 1] = keys[i + 1], keys[i]
    return make_records(keys)


def organ_pipe(n: int, seed: int = 0) -> np.ndarray:
    """Keys ascending then descending (0,1,...,m,...,1,0 shape).

    A classic adversarial layout for range-partitioning heuristics:
    every key value occurs twice, mirrored across the file.
    """
    half = (n + 1) // 2
    up = np.arange(half)
    down = np.arange(n - half)[::-1]
    return make_records(np.concatenate((up, down)))


def sorted_runs(n: int, seed: int = 0, n_runs: int = 16) -> np.ndarray:
    """Concatenation of ``n_runs`` sorted runs over interleaved ranges.

    The natural input shape after partial processing; each run is sorted
    but the runs interleave globally, so no scan-level shortcut exists.
    """
    rng = _rng(seed)
    keys = rng.permutation(n)
    bounds = np.linspace(0, n, max(1, n_runs) + 1).astype(int)
    parts = [np.sort(keys[lo:hi]) for lo, hi in zip(bounds, bounds[1:])]
    return make_records(np.concatenate(parts) if parts else keys)


def hard_permutation(n: int, block: int, seed: int = 0) -> np.ndarray:
    """A member of the paper's hard family ``Π_hard`` (§2.1).

    ``S_i`` — the set of the ``i``-th element of every input block — must
    satisfy: every element of ``S_i`` is smaller than every element of
    ``S_j`` for ``i < j``.  We realize this by giving the record at offset
    ``i`` of each block a key in the ``i``-th stratum of the key space,
    with a random permutation inside every stratum.

    ``n`` must be a multiple of ``block``.
    """
    if n % block != 0:
        raise ValueError("n must be a multiple of the block size")
    rng = _rng(seed)
    n_blocks = n // block
    keys = np.empty(n, dtype=np.int64)
    for i in range(block):
        stratum = i * n_blocks + rng.permutation(n_blocks)
        keys[i::block] = stratum
    return make_records(keys)


#: Registry of named workloads usable from the CLI / experiments:
#: each maps a name to ``fn(n, seed) -> records``.
WORKLOADS = {
    "permutation": random_permutation,
    "uniform": uniform_random,
    "sorted": sorted_keys,
    "reverse": reverse_sorted,
    "few-distinct": few_distinct,
    "zipf": zipf_like,
    "nearly-sorted": nearly_sorted,
    "organ-pipe": organ_pipe,
    "sorted-runs": sorted_runs,
}


def load_input(machine: "Machine", records: np.ndarray) -> EMFile:
    """Stage ``records`` on the machine's disk without charging I/Os."""
    return EMFile.from_records(machine, records, counted=False)

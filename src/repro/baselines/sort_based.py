"""Sort-based baselines (§1.2: "all the above problems can be trivially
solved by sorting in ``O((N/B)·lg_{M/B}(N/B))`` I/Os").

These are the comparators every Table 1 experiment measures against: the
paper's algorithms must beat them exactly in the regimes the theory
predicts (small ``aK`` for right-grounded splitters, large ``b`` for
left-grounded problems, ...), and may tie elsewhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import empty_records
from ..em.streams import BlockReader, BlockWriter
from ..alg.partitioned import PartitionedFile
from ..alg.sort import external_sort
from ..core.spec import SplitterResult, validate_params

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = [
    "sort_based_splitters",
    "sort_based_partition",
    "sort_based_multiselect",
]


def _read_ranks_from_sorted(
    machine: "Machine", sorted_file: EMFile, ranks: np.ndarray
) -> np.ndarray:
    """Fetch the records at the given 1-based ranks (sorted ascending) from
    a sorted file by reading only the blocks that contain them.

    Processes the rank list in memory-sized batches so ``K`` may exceed
    ``M`` (the ranks themselves are then streamed control state)."""
    if np.any(np.diff(ranks) < 0):
        raise SpecError("ranks must be sorted ascending")
    B = machine.B
    batch_size = max(1, (machine.M - B) // 2)
    out = []
    for start in range(0, len(ranks), batch_size):
        batch = ranks[start : start + batch_size]
        with machine.memory.lease(B + len(batch), "rank-read"):
            block_of = (batch - 1) // B
            for bid in np.unique(block_of):
                block = sorted_file.read_block(int(bid))
                local = batch[block_of == bid] - 1 - bid * B
                out.append(block[local])
    return np.concatenate(out)


def sort_based_splitters(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> SplitterResult:
    """Sort, then read off the ``1/K``-quantile as the splitters.

    The ranks ``⌊i·N/K⌋`` induce partitions of size ``⌊N/K⌋``/``⌈N/K⌉``,
    which lie in ``[a, b]`` for any valid instance.  Cost: one external
    sort plus ``≤ K`` block reads.
    """
    n = len(file)
    params = validate_params(n, k, a, b)
    with machine.phase("baseline-sort-splitters"):
        sorted_file = external_sort(machine, file)
        try:
            if k == 1:
                splitters = empty_records(0)
            else:
                ranks = (np.arange(1, k, dtype=np.int64) * n) // k
                splitters = _read_ranks_from_sorted(machine, sorted_file, ranks)
        finally:
            sorted_file.free()
    return SplitterResult(splitters, params, "baseline/sort")


def sort_based_partition(
    machine: "Machine", file: EMFile, k: int, a: int, b: int
) -> PartitionedFile:
    """Sort, then cut the sorted file into ``K`` near-equal partitions.

    Cost: one external sort plus one ``O(N/B)`` rewrite into segments.
    """
    n = len(file)
    validate_params(n, k, a, b)
    base, extra = divmod(n, k)
    sizes = [base + 1] * extra + [base] * (k - extra)
    with machine.phase("baseline-sort-partition"):
        sorted_file = external_sort(machine, file)
        try:
            segments: list[EMFile] = []
            writers_done = 0
            with BlockReader(sorted_file, "cut-in") as reader:
                writer = BlockWriter(machine, "cut-out")
                remaining = sizes[0]
                for block in reader:
                    start = 0
                    while start < len(block):
                        take = min(remaining, len(block) - start)
                        writer.write(block[start : start + take])
                        start += take
                        remaining -= take
                        while remaining == 0 and writers_done < k - 1:
                            segments.append(writer.close())
                            writers_done += 1
                            writer = BlockWriter(machine, "cut-out")
                            remaining = sizes[writers_done]
                segments.append(writer.close())
            while len(segments) < k:  # trailing zero-size partitions
                with BlockWriter(machine, "cut-empty") as w:
                    segments.append(w.close())
        finally:
            sorted_file.free()
    return PartitionedFile(machine, segments, list(range(k)), sizes)


def sort_based_multiselect(
    machine: "Machine", file: EMFile, ranks) -> np.ndarray:
    """Sort, then read the requested ranks off the sorted file."""
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(file)
    if np.any(ranks < 1) or np.any(ranks > n):
        raise SpecError(f"ranks must lie in [1, {n}]")
    with machine.phase("baseline-sort-multiselect"):
        sorted_file = external_sort(machine, file)
        try:
            unique_sorted, inverse = np.unique(ranks, return_inverse=True)
            answers = _read_ranks_from_sorted(machine, sorted_file, unique_sorted)
        finally:
            sorted_file.free()
    return answers[inverse]

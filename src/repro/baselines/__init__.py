"""Baseline algorithms the paper's contributions are measured against."""

from .multipartition_based import multiselect_via_multipartition
from .repeated_selection import multiselect_via_repeated_selection
from .sort_based import (
    sort_based_multiselect,
    sort_based_partition,
    sort_based_splitters,
)

__all__ = [
    "multiselect_via_multipartition",
    "multiselect_via_repeated_selection",
    "sort_based_multiselect",
    "sort_based_partition",
    "sort_based_splitters",
]

"""The pre-paper multi-selection route (§1.2).

Before Theorem 4, the best known approach to multi-selection was: run
exact multi-partition at the target ranks (``O((N/B)·lg_{M/B} K)`` I/Os,
Aggarwal–Vitter), then return the largest element of every partition.
Theorem 4's ``O((N/B)·lg_{M/B}(K/B))`` algorithm separates the two
problems for small ``K``; this module exists so the experiments can
measure that separation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE, composite
from ..em.streams import BlockReader
from ..alg.multipartition import multi_partition_at_ranks

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["multiselect_via_multipartition"]


def multiselect_via_multipartition(
    machine: "Machine", file: EMFile, ranks) -> np.ndarray:
    """Multi-selection by multi-partition + per-partition max scan.

    ``ranks`` may be unsorted / duplicated; answers align with the input.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(file)
    if len(ranks) == 0 or np.any(ranks < 1) or np.any(ranks > n):
        raise SpecError(f"ranks must be non-empty within [1, {n}]")
    unique_sorted, inverse = np.unique(ranks, return_inverse=True)

    with machine.phase("baseline-mp-multiselect"):
        partitioned = multi_partition_at_ranks(
            machine, file, [int(r) for r in unique_sorted]
        )
        try:
            answers = np.empty(len(unique_sorted), dtype=RECORD_DTYPE)
            # Partition i (0-based) ends exactly at rank unique_sorted[i]:
            # its maximum is the answer for that rank.
            for i in range(len(unique_sorted)):
                best_comp = None
                best = None
                for seg in partitioned.segments_of(i):
                    with BlockReader(seg, "mp-max-scan") as reader:
                        for block in reader:
                            if len(block) == 0:
                                continue
                            cmp_linear(machine, len(block))
                            comps = composite(block)
                            j = int(np.argmax(comps))
                            if best_comp is None or comps[j] > best_comp:
                                best_comp = int(comps[j])
                                best = block[j]
                if best is None:
                    raise AssertionError("empty partition at a target rank")
                answers[i] = best
        finally:
            partitioned.free()
    return answers[inverse]

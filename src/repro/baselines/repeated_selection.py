"""Naive multi-selection: one independent BFPRT selection per rank.

``O(K·N/B)`` I/Os — linear per rank, so it loses to Theorem 4 as soon as
``K`` exceeds a small constant.  Included as the "obvious" comparator for
the Theorem 4 experiment's small-``K`` end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE
from ..alg.selection import select_rank

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["multiselect_via_repeated_selection"]


def multiselect_via_repeated_selection(
    machine: "Machine", file: EMFile, ranks) -> np.ndarray:
    """Select each requested rank independently (``O(K·N/B)`` I/Os)."""
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(file)
    if len(ranks) == 0 or np.any(ranks < 1) or np.any(ranks > n):
        raise SpecError(f"ranks must be non-empty within [1, {n}]")
    answers = np.empty(len(ranks), dtype=RECORD_DTYPE)
    with machine.phase("baseline-repeated-selection"):
        for i, r in enumerate(ranks):
            answers[i] = select_rank(machine, file, int(r))
    return answers

"""Eager partition index: approximate K-splitters kept live for queries.

:class:`PartitionIndex` materializes an approximate K-partitioning of an
:class:`~repro.em.file.EMFile` once (two-sided window ``[a, b]`` with
``b/a = (1+slack)²``), then serves:

* ``select(rank)`` / ``batch_select(ranks)`` / ``quantile(q)`` — the
  record(s) at given rank(s): ``O(log K)`` comparisons to locate the
  partition, then one partition load (``O(b/B)`` I/Os) shared by every
  rank landing in it;
* ``range_count(lo, hi)`` — elements with key in ``(lo, hi]``: interior
  partitions are counted from live sizes for free, at most one partition
  scan per endpoint;
* ``partition_of(key)`` — pure in-memory binary search.

The resident control state (splitter composites, partition sizes,
tombstones, pending updates) is held under a machine memory lease, so
the simulator's budget accounting covers the service like any other
algorithm.  Updates arrive through :class:`repro.service.updates.DeltaBuffer`
(see :meth:`PartitionIndex.append` / :meth:`PartitionIndex.delete`) and
are flushed automatically before any query, so answers always reflect
every prior update.

The partition convention matches the paper throughout: partition ``j``
holds the composites in ``(s_{j-1}, s_j]``, where ``s_j`` is the largest
composite of partition ``j``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_search, cmp_sort
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import (
    UID_MAX,
    composite,
    composite_of,
    empty_records,
)
from ..em.streams import BlockReader, BlockWriter
from ..alg.inmemory import select_at_ranks
from ..alg.multipartition import multi_partition
from ..core.partitioning import approximate_partition
from ..core.spec import validate_params
from ..apps.order_stats import rank_of_fraction
from ..obs.metrics import current_registry

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine
    from .updates import DeltaBuffer

__all__ = ["PartitionIndex"]


def _near_equal(total: int, pieces: int) -> list[int]:
    """Split ``total`` into ``pieces`` sizes differing by at most one."""
    base, extra = divmod(total, pieces)
    return [base + (1 if i < extra else 0) for i in range(pieces)]


class _Partition:
    """One live partition: disk segments plus in-memory tombstones.

    ``stored`` counts records on disk including tombstoned ones; ``live``
    is the partition's logical size.  Tombstones are the composites of
    deleted records, applied lazily at the next compaction.
    """

    __slots__ = ("segments", "stored", "tombstones")

    def __init__(self, segments: list[EMFile], stored: int, tombstones=None):
        self.segments = segments
        self.stored = stored
        self.tombstones: set[int] = tombstones if tombstones is not None else set()

    @property
    def live(self) -> int:
        return self.stored - len(self.tombstones)


class PartitionIndex:
    """A live approximate-K-partition index over one machine's disk.

    Build with :meth:`build`; the index owns its partition segments (the
    input file is left intact and may be freed by the caller).  Use as a
    context manager or call :meth:`close` to release disk and memory.
    """

    def __init__(
        self,
        machine: "Machine",
        k: int,
        slack: float = 1.0,
        rebuild_threshold: float = 0.5,
    ) -> None:
        if slack <= 0:
            raise SpecError("service slack must be positive")
        if rebuild_threshold <= 0:
            raise SpecError("rebuild threshold must be positive")
        self._machine = machine
        self._k0 = int(k)
        self.slack = float(slack)
        self.rebuild_threshold = float(rebuild_threshold)
        self.a = 1
        self.b = 1
        self._target = 1
        self._parts: list[_Partition] = []
        self._splitters = np.empty(0, dtype=np.int64)
        self._n_live = 0
        self._n0 = 0
        self._drift = 0
        self._next_uid = 0
        self._delta: "DeltaBuffer | None" = None
        self._resident = machine.memory.lease(0, "svc-resident")
        self._closed = False
        self.stats = {
            "splits": 0,
            "merges": 0,
            "rebuilds": 0,
            "compactions": 0,
            "update_flushes": 0,
        }
        # Telemetry: bound to the ambient registry at construction.
        # Bookkeeping reads only lifetime counters / plain ints — no
        # model charge flows through any instrument.
        metrics = self._metrics = current_registry()
        self._m_query_io = metrics.histogram(
            "svc_query_io",
            "per-query attributed simulated I/O (block transfers)",
            labels=("engine",),
        ).labels(engine="eager")
        self._m_drift = metrics.gauge(
            "svc_drift", "updates applied since the last (re)build"
        )
        self._m_maint = metrics.counter(
            "svc_maintenance",
            "partition maintenance operations by kind",
            labels=("op",),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        machine: "Machine",
        file: EMFile,
        k: int,
        slack: float = 1.0,
        rebuild_threshold: float = 0.5,
    ) -> "PartitionIndex":
        """Build an index over ``file`` with ``<= k`` partitions.

        Costs one approximate K-partitioning (Theorem 6 two-sided) plus
        one scan to extract the splitter composites.  ``slack`` sets the
        size window ``a = ⌊(N/K)/(1+slack)⌋``, ``b = ⌈(N/K)·(1+slack)⌉``;
        the default ``slack = 1`` gives ``b ≥ 2a``, which is what keeps
        local split/merge rebalancing stable under updates.
        """
        if k < 1:
            raise SpecError("need k >= 1")
        idx = cls(machine, k, slack=slack, rebuild_threshold=rebuild_threshold)
        idx._install(file, k, free_input=False)
        return idx

    def _install(self, file: EMFile, k: int, free_input: bool) -> None:
        """(Re)build all partitions from ``file``; resets drift."""
        m = self._machine
        n = len(file)
        k = max(1, min(int(k), max(1, n)))
        per = max(1.0, n / k)
        self._target = max(1, int(round(per)))
        self.a = max(1, int(per / (1 + self.slack)))
        self.b = max(self.a + 1, int(math.ceil(per * (1 + self.slack))))
        self._n0 = n
        self._drift = 0
        self._m_drift.set(0)
        if n == 0:
            self._parts = [_Partition([], 0)]
            self._splitters = np.empty(0, dtype=np.int64)
            self._n_live = 0
            self._sync_resident()
            if free_input:
                file.free()
            return
        validate_params(n, k, self.a, self.b)
        with m.phase("svc-build"):
            pf = approximate_partition(m, file, k, self.a, self.b)
            parts = [
                _Partition(pf.segments_of(p), pf.partition_sizes[p])
                for p in range(pf.num_partitions)
            ]
            # One scan extracts the splitter composites (the max composite
            # of every partition) and the uid high-water mark for appends.
            maxima: list[int] = []
            max_uid = -1
            for part in parts:
                part_max = -(1 << 62)
                for seg in part.segments:
                    with BlockReader(seg, "svc-build-splitters") as reader:
                        for block in reader:
                            cmp_linear(m, 2 * len(block))
                            part_max = max(part_max, int(composite(block).max()))
                            max_uid = max(max_uid, int(block["uid"].max()))
                maxima.append(part_max)
        self._parts = parts
        self._splitters = np.array(maxima[:-1], dtype=np.int64)
        self._n_live = n
        self._next_uid = max(self._next_uid, max_uid + 1)
        if free_input:
            file.free()
        self._sync_resident()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        """Logical number of records (pending updates included)."""
        pending = self._delta.net_delta if self._delta is not None else 0
        return self._n_live + pending

    @property
    def num_partitions(self) -> int:
        return len(self._parts)

    @property
    def drift(self) -> int:
        """Updates applied since the last (re)build."""
        return self._drift

    def partition_sizes(self) -> list[int]:
        """Live size of every partition (pending updates not flushed)."""
        return [p.live for p in self._parts]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, rank: int):
        """The record of 1-based ``rank`` in composite order."""
        return self.batch_select(np.array([rank], dtype=np.int64))[0]

    def quantile(self, q: float):
        """The record at the ``q``-quantile (nearest rank)."""
        self._flush_updates()
        if self._n_live == 0:
            raise SpecError("quantile of an empty index")
        return self.select(rank_of_fraction(self._n_live, q))

    def batch_select(self, ranks) -> np.ndarray:
        """Records at the given 1-based ``ranks`` (aligned; duplicates OK).

        Deduplicates internally: each distinct partition touched is
        loaded (or scanned) exactly once per call, however many ranks
        land in it.
        """
        self._flush_updates()
        m = self._machine
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return empty_records(0)
        n = self._n_live
        if n == 0:
            raise SpecError("select on an empty index")
        if ranks.min() < 1 or ranks.max() > n:
            raise SpecError(f"ranks must lie in [1, {n}]")
        unique, inverse = np.unique(ranks, return_inverse=True)
        dup = np.bincount(inverse, minlength=len(unique))
        live = np.array([p.live for p in self._parts], dtype=np.int64)
        ends = np.cumsum(live)
        j_of = np.searchsorted(ends, unique, side="left")
        cmp_search(m, len(unique), len(ends))
        out = empty_records(len(unique))
        with m.phase("svc-select"):
            for j in np.unique(j_of):
                mask = j_of == j
                below = int(ends[j - 1]) if j > 0 else 0
                local = unique[mask] - below
                io_base = self._life_io()
                out[mask] = self._select_in_partition(int(j), local)
                # Attribute the partition load evenly over the queries
                # it answered (duplicates included); observations sum
                # back to the exact lifetime delta.
                served = int(dup[mask].sum())
                spent = self._life_io() - io_base
                self._m_query_io.observe(spent / served, count=served)
        return out[inverse]

    def range_count(self, lo_key: int, hi_key: int) -> int:
        """Number of live elements with key in ``(lo_key, hi_key]``.

        Interior partitions are counted from their live sizes (free);
        each endpoint costs at most one partition scan.
        """
        if hi_key < lo_key:
            raise SpecError("empty range: hi_key < lo_key")
        self._flush_updates()
        if self._n_live == 0:
            return 0
        with self._machine.phase("svc-range"):
            hi = self._rank_of_composite(composite_of(hi_key, UID_MAX))
            lo = self._rank_of_composite(composite_of(lo_key, UID_MAX))
        return hi - lo

    def partition_of(self, key: int) -> int:
        """Index of the first partition that may contain ``key`` —
        ``O(log K)`` comparisons, zero I/O."""
        self._flush_updates()
        if not self._parts:
            raise SpecError("partition_of on a closed index")
        j = int(
            np.searchsorted(self._splitters, composite_of(key, 0), side="left")
        )
        cmp_search(self._machine, 1, max(1, len(self._splitters)))
        return j

    # ------------------------------------------------------------------
    # Updates (delegated to the delta buffer)
    # ------------------------------------------------------------------
    def append(self, keys) -> None:
        """Buffer new elements with the given keys (fresh uids assigned)."""
        self._buffer().append_keys(keys)

    def delete(self, key: int) -> None:
        """Buffer the deletion of one live element with key ``key``."""
        self._buffer().delete_key(key)

    def flush_updates(self) -> dict | None:
        """Apply all buffered updates now; returns flush stats (or None)."""
        if self._delta is not None and len(self._delta):
            return self._delta.flush()
        return None

    def _buffer(self) -> "DeltaBuffer":
        if self._delta is None:
            from .updates import DeltaBuffer

            self._delta = DeltaBuffer(self)
        return self._delta

    def _flush_updates(self) -> None:
        if self._delta is not None and len(self._delta):
            self._delta.flush()

    def _fresh_uids(self, count: int) -> np.ndarray:
        start = self._next_uid
        if start + count - 1 > UID_MAX:
            raise SpecError("uid space exhausted")
        self._next_uid = start + count
        return np.arange(start, start + count, dtype=np.int64)

    # ------------------------------------------------------------------
    # Durability hooks (no-ops on the volatile base index)
    # ------------------------------------------------------------------
    def _log_applied(self, entries: list[tuple]) -> None:
        """Called by the delta buffer with the applied operations of a
        successful (non-crashed) flush.  The base index is volatile."""

    def _maybe_checkpoint(self) -> None:
        """Called after every completed flush; a durable index may take
        a snapshot here.  The base index is volatile."""

    def _discard_segment(self, seg: EMFile) -> None:
        """Release a segment that left the index (compaction, split,
        rebuild).  A durable index defers the free until the next
        snapshot commits, because the latest on-disk snapshot may still
        reference these blocks."""
        seg.free()

    # ------------------------------------------------------------------
    # Partition access
    # ------------------------------------------------------------------
    @staticmethod
    def _footprint(part: _Partition) -> int:
        """Buffer records needed to load the partition (whole blocks)."""
        return sum(
            seg.num_blocks * seg.machine.B for seg in part.segments
        )

    def _select_in_partition(self, j: int, local_ranks: np.ndarray) -> np.ndarray:
        """Records at 1-based ``local_ranks`` within partition ``j``."""
        m = self._machine
        part = self._parts[j]
        if self._footprint(part) > m.load_limit:
            self._compact(j)
        footprint = self._footprint(part)
        if footprint <= m.load_limit:
            with m.memory.lease(footprint, "svc-partition-load"):
                recs = self._read_segments(part.segments)
                recs = self._drop_tombstoned(part, recs)
                return select_at_ranks(m, recs, local_ranks)
        # Oversized even when compacted (only possible for b >> M):
        # fall back to external multi-selection on the single segment.
        return np.asarray(multi_select_em(m, part.segments[0], local_ranks))

    def _read_segments(self, segments: list[EMFile]) -> np.ndarray:
        """Counted read of all segments into memory (caller holds lease)."""
        parts = [
            seg.read_range(0, seg.num_blocks) for seg in segments if len(seg)
        ]
        if not parts:
            return empty_records(0)
        if len(parts) == 1:
            return parts[0]
        out = empty_records(sum(len(p) for p in parts))
        off = 0
        for p in parts:
            out[off : off + len(p)] = p
            off += len(p)
        return out

    def _drop_tombstoned(self, part: _Partition, recs: np.ndarray) -> np.ndarray:
        if not part.tombstones:
            return recs
        tomb = self._tomb_array(part)
        comps = composite(recs)
        cmp_search(self._machine, len(recs), len(tomb))
        pos = np.searchsorted(tomb, comps)
        pos_c = np.minimum(pos, len(tomb) - 1)
        dead = tomb[pos_c] == comps
        return recs[~dead]

    @staticmethod
    def _tomb_array(part: _Partition) -> np.ndarray:
        tomb = np.fromiter(
            part.tombstones, dtype=np.int64, count=len(part.tombstones)
        )
        tomb.sort()
        return tomb

    def _rank_of_composite(self, c: int) -> int:
        """Number of live elements with composite ``<= c``."""
        m = self._machine
        j = int(np.searchsorted(self._splitters, c, side="left"))
        cmp_search(m, 1, max(1, len(self._splitters)))
        below = sum(self._parts[i].live for i in range(j))
        part = self._parts[j]
        if part.stored == 0:
            return below
        count = 0
        for seg in part.segments:
            with BlockReader(seg, "svc-range-scan") as reader:
                for block in reader:
                    cmp_linear(m, len(block))
                    count += int((composite(block) <= c).sum())
        if part.tombstones:
            tomb = self._tomb_array(part)
            cmp_search(m, 1, len(tomb))
            count -= int(np.searchsorted(tomb, c, side="right"))
        return below + count

    # ------------------------------------------------------------------
    # Maintenance (compaction, split, merge, rebuild)
    # ------------------------------------------------------------------
    def _write_live(self, writer: BlockWriter, part: _Partition) -> None:
        """Stream a partition's live records into ``writer``."""
        m = self._machine
        tomb = self._tomb_array(part) if part.tombstones else None
        for seg in part.segments:
            with BlockReader(seg, "svc-compact-in") as reader:
                for block in reader:
                    if tomb is not None and len(tomb):
                        comps = composite(block)
                        cmp_search(m, len(block), len(tomb))
                        pos = np.minimum(
                            np.searchsorted(tomb, comps), len(tomb) - 1
                        )
                        block = block[tomb[pos] != comps]
                    writer.write(block)

    def _compact(self, j: int) -> None:
        """Rewrite partition ``j`` as one segment, applying tombstones."""
        part = self._parts[j]
        if len(part.segments) <= 1 and not part.tombstones:
            return
        m = self._machine
        with m.phase("svc-compact"):
            writer = BlockWriter(m, "svc-compact-out")
            try:
                self._write_live(writer, part)
                out = writer.close()
            except BaseException:
                writer.abort()
                raise
        for seg in part.segments:
            self._discard_segment(seg)
        if len(out):
            part.segments = [out]
        else:
            out.free()
            part.segments = []
        part.stored = len(out)
        part.tombstones = set()
        self.stats["compactions"] += 1
        self._m_maint.labels(op="compaction").inc()
        self._sync_resident()

    def _rebalance(self, touched) -> None:
        """Restore the ``[a, b]`` window for every touched partition.

        Processes indices in descending order so splices at index ``j``
        never invalidate a later (smaller) index.
        """
        for j in sorted(set(touched), reverse=True):
            if j >= len(self._parts):
                continue
            part = self._parts[j]
            if part.live > self.b:
                self._split(j)
            elif part.live < self.a and len(self._parts) > 1:
                self._merge(j)

    def _split(self, j: int) -> None:
        """Split partition ``j`` into near-target-size pieces."""
        m = self._machine
        with m.phase("svc-rebalance"):
            self._compact(j)
            part = self._parts[j]
            live = part.stored
            pieces = max(2, int(round(live / self._target)))
            sizes = _near_equal(live, pieces)
            if self._footprint(part) <= m.load_limit:
                new_parts, maxima = self._split_in_memory(part, sizes)
            else:
                new_parts, maxima = self._split_external(part, sizes)
        old_segments = part.segments
        self._parts[j : j + 1] = new_parts
        self._splitters = np.concatenate(
            [
                self._splitters[:j],
                np.array(maxima[:-1], dtype=np.int64),
                self._splitters[j:],
            ]
        )
        for seg in old_segments:
            self._discard_segment(seg)
        self.stats["splits"] += 1
        self._m_maint.labels(op="split").inc()
        self._sync_resident()

    def _split_in_memory(self, part: _Partition, sizes: list[int]):
        m = self._machine
        with m.memory.lease(self._footprint(part), "svc-split-load"):
            recs = self._read_segments(part.segments)
            cmp_sort(m, len(recs))
            recs = m.kernel.sort_by_composite(recs)
            new_parts: list[_Partition] = []
            maxima: list[int] = []
            off = 0
            for s in sizes:
                piece = recs[off : off + s]
                off += s
                writer = BlockWriter(m, "svc-split-out")
                try:
                    writer.write(piece)
                    f = writer.close()
                except BaseException:
                    writer.abort()
                    raise
                new_parts.append(_Partition([f], s))
                maxima.append(int(composite(piece[-1:])[0]))
        return new_parts, maxima

    def _split_external(self, part: _Partition, sizes: list[int]):
        m = self._machine
        pf = multi_partition(m, part.segments[0], sizes)
        new_parts: list[_Partition] = []
        maxima: list[int] = []
        for p in range(pf.num_partitions):
            segs = pf.segments_of(p)
            piece_max = -(1 << 62)
            for seg in segs:
                with BlockReader(seg, "svc-split-scan") as reader:
                    for block in reader:
                        cmp_linear(m, len(block))
                        piece_max = max(piece_max, int(composite(block).max()))
            new_parts.append(_Partition(segs, pf.partition_sizes[p]))
            maxima.append(piece_max)
        return new_parts, maxima

    def _merge(self, j: int) -> None:
        """Merge undersized partition ``j`` with its smaller neighbour.

        Pure metadata (zero I/O): segment lists concatenate and one
        splitter disappears.  Keeps absorbing neighbours while the union
        stays under ``a`` (mass deletes), and re-splits if it overshoots
        ``b``.
        """
        parts = self._parts
        while len(parts) > 1 and parts[j].live < self.a:
            if j == 0:
                nb = 1
            elif j == len(parts) - 1:
                nb = j - 1
            else:
                nb = j - 1 if parts[j - 1].live <= parts[j + 1].live else j + 1
            lo, hi = min(j, nb), max(j, nb)
            merged = _Partition(
                parts[lo].segments + parts[hi].segments,
                parts[lo].stored + parts[hi].stored,
                parts[lo].tombstones | parts[hi].tombstones,
            )
            parts[lo : hi + 1] = [merged]
            self._splitters = np.delete(self._splitters, lo)
            self.stats["merges"] += 1
            self._m_maint.labels(op="merge").inc()
            j = lo
            if merged.live > self.b:
                self._split(lo)
                break
        self._sync_resident()

    def _rebuild(self) -> None:
        """Full repartitioning from the live records (drift exceeded)."""
        m = self._machine
        with m.phase("svc-rebuild"):
            writer = BlockWriter(m, "svc-rebuild-stage")
            try:
                for part in self._parts:
                    self._write_live(writer, part)
                stage = writer.close()
            except BaseException:
                writer.abort()
                raise
            for part in self._parts:
                for seg in part.segments:
                    self._discard_segment(seg)
            self._install(stage, self._k0, free_input=True)
        self.stats["rebuilds"] += 1
        self._m_maint.labels(op="rebuild").inc()

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    def _life_io(self) -> int:
        """Lifetime I/O total — the metrics attribution baseline.

        Lifetime counters are public and survive ``reset_counters``, so
        reading them here charges nothing to the model (same contract
        the tracer's conservation check relies on).
        """
        life = self._machine.disk.lifetime
        return life.reads + life.writes

    def _resident_total(self) -> int:
        """Records of control state held resident (lease size)."""
        total = len(self._splitters) + len(self._parts)
        total += sum(len(p.tombstones) for p in self._parts)
        if self._delta is not None:
            total += self._delta.resident_records
        return total

    def _sync_resident(self) -> None:
        """Size the resident lease to the control state actually held."""
        self._resident.resize(self._resident_total())

    def check_invariants(self) -> bool:
        """Verify structural invariants (uncounted; tests only).

        Checks splitter monotonicity, per-partition composite ranges,
        tombstone containment, size bookkeeping, and — whenever more
        than one partition exists — the ``[a, b]`` window.
        """
        assert len(self._splitters) == max(0, len(self._parts) - 1)
        if len(self._splitters) > 1:
            assert bool(np.all(np.diff(self._splitters) > 0))
        total = 0
        with self._machine.uncounted():  # emlint: disable=R2 — invariant checker, tests only
            for j, part in enumerate(self._parts):
                assert part.live >= 0
                assert sum(len(s) for s in part.segments) == part.stored
                total += part.live
                recs = [s.to_numpy(counted=False) for s in part.segments]  # emlint: disable=R2 — invariant checker, tests only
                comps = (
                    np.concatenate([composite(r) for r in recs])
                    if recs
                    else np.empty(0, dtype=np.int64)
                )
                if j > 0 and len(comps):
                    assert comps.min() > self._splitters[j - 1]
                if j < len(self._parts) - 1 and len(comps):
                    assert comps.max() <= self._splitters[j]
                assert part.tombstones <= set(int(c) for c in comps)
                if len(self._parts) > 1:
                    assert self.a <= part.live <= self.b
        assert total == self._n_live
        return True

    def abandon(self) -> None:
        """Drop the in-memory handle without freeing any disk blocks.

        Simulates process death: every lease is released (memory
        vanishes with the process) but the partition segments stay
        allocated on disk.  Only meaningful for a durable index — the
        blocks are reachable again through its manifest — but defined
        here so crash tests can abandon a volatile shadow too.
        """
        if self._closed:
            return
        self._parts = []
        self._splitters = np.empty(0, dtype=np.int64)
        self._n_live = 0
        self._delta = None
        if not self._resident.released:
            self._resident.release()
        self._closed = True

    def close(self) -> None:
        """Free every partition segment and release the resident lease."""
        if self._closed:
            return
        for part in self._parts:
            for seg in part.segments:
                seg.free()
        self._parts = []
        self._splitters = np.empty(0, dtype=np.int64)
        self._n_live = 0
        self._delta = None
        if not self._resident.released:
            self._resident.release()
        self._closed = True

    def __enter__(self) -> "PartitionIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def multi_select_em(machine: "Machine", file: EMFile, ranks: np.ndarray):
    """Late import wrapper for the offline fallback (rarely taken)."""
    from ..core.multiselect import multi_select

    return multi_select(machine, file, ranks)

"""Online partition service — a long-lived query layer over the EM machine.

The offline algorithms answer one batch of ranks and exit; this package
keeps the approximate partitioning *alive* and serves traffic against
it:

* :mod:`repro.service.index` — :class:`~repro.service.index.PartitionIndex`,
  an eagerly built approximate-K-partition index answering selection,
  quantile, range-count, and partition-lookup queries with ``O(log K)``
  in-memory comparisons plus at most one partition scan each;
* :mod:`repro.service.online` —
  :class:`~repro.service.online.LazyPartitionIndex`, Barbay–Gupta-style
  lazy refinement: the pivot tree grows only where queries land, so
  skewed traces pay far less than building the full index;
* :mod:`repro.service.updates` —
  :class:`~repro.service.updates.DeltaBuffer`, appends/deletes with
  local split/merge rebalancing and a drift-triggered full rebuild;
* :mod:`repro.service.frontend` —
  :class:`~repro.service.frontend.QueryFrontend`, batching mixed queries
  into one deduplicated multiselection per flush, with per-query
  amortized-I/O metrics;
* :mod:`repro.service.durability` —
  :class:`~repro.service.durability.DurablePartitionIndex`, a
  write-ahead delta log plus periodic metadata snapshots (all charged
  EM I/O), and :func:`~repro.service.durability.recover`, which rebuilds
  an answer-identical index from the manifest after a crash.
"""

from .index import PartitionIndex
from .online import LazyPartitionIndex
from .updates import DeltaBuffer
from .frontend import Query, QueryFrontend, FlushStats
from .durability import DurablePartitionIndex, DurableStore, recover

__all__ = [
    "PartitionIndex",
    "LazyPartitionIndex",
    "DeltaBuffer",
    "Query",
    "QueryFrontend",
    "FlushStats",
    "DurablePartitionIndex",
    "DurableStore",
    "recover",
]

"""Batched query frontend: coalesce, deduplicate, answer, account.

:class:`QueryFrontend` sits between clients and an engine (either
:class:`~repro.service.index.PartitionIndex` or
:class:`~repro.service.online.LazyPartitionIndex` — anything with
``n_live`` / ``batch_select`` / ``range_count`` / ``partition_of``).
Clients :meth:`~QueryFrontend.submit` mixed queries; :meth:`flush`
answers the whole queue at once:

* every ``select`` and ``quantile`` in the batch collapses into **one**
  multiselection call (quantiles are translated to ranks first, then
  the engine deduplicates ranks), so ten clients asking for the median
  cost one partition load, not ten;
* ``range_count`` / ``partition_of`` queries run individually (they are
  already cheap);
* each flush is measured through :meth:`Machine.measure`, and the
  frontend accumulates per-query amortized I/O — the service's headline
  metric — exposed by :meth:`summary` and recorded per flush in
  :attr:`flushes`.

Under a :class:`repro.obs.tracer.Tracer` every flush appears as a
``svc-flush`` span whose children are the engine's phases
(``svc-refine``, ``svc-leaf``, ``svc-select``, ...), so a Perfetto
timeline shows exactly where each batch's I/O went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..apps.order_stats import rank_of_fraction
from ..obs.metrics import current_registry
from ..obs.recorder import current_recorder

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["Query", "QueryFrontend", "FlushStats"]

_KINDS = ("select", "quantile", "range_count", "partition_of")


@dataclass(frozen=True)
class Query:
    """One client query; build via the per-kind constructors.

    Wire-format tuples (as produced by
    :func:`repro.workloads.queries.mixed_query_trace`) are accepted
    anywhere a ``Query`` is: ``("select", rank)``, ``("quantile", q)``,
    ``("range_count", lo, hi)``, ``("partition_of", key)``.
    """

    kind: str
    rank: int | None = None
    q: float | None = None
    lo: int | None = None
    hi: int | None = None
    key: int | None = None

    @classmethod
    def select(cls, rank: int) -> "Query":
        return cls(kind="select", rank=int(rank))

    @classmethod
    def quantile(cls, q: float) -> "Query":
        return cls(kind="quantile", q=float(q))

    @classmethod
    def range_count(cls, lo: int, hi: int) -> "Query":
        return cls(kind="range_count", lo=int(lo), hi=int(hi))

    @classmethod
    def partition_of(cls, key: int) -> "Query":
        return cls(kind="partition_of", key=int(key))

    @classmethod
    def coerce(cls, obj) -> "Query":
        """Accept a ``Query``, or a wire tuple ``(kind, *args)``."""
        if isinstance(obj, cls):
            return obj
        kind, *args = obj
        if kind not in _KINDS:
            raise SpecError(f"unknown query kind {kind!r}")
        return getattr(cls, kind)(*args)


@dataclass(frozen=True)
class FlushStats:
    """Measured cost of one frontend flush."""

    queries: int
    select_ranks: int
    distinct_ranks: int
    io: int
    comparisons: int

    @property
    def amortized_io(self) -> float:
        """I/Os per query in this flush."""
        return self.io / self.queries if self.queries else 0.0


class QueryFrontend:
    """Batching frontend over a partition-service engine."""

    def __init__(
        self, machine: "Machine", engine, checkpoint_every: int | None = None
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SpecError("checkpoint_every must be >= 1")
        self._machine = machine
        self.engine = engine
        self.checkpoint_every = checkpoint_every
        self._queue: list[Query] = []
        self.flushes: list[FlushStats] = []
        self.total_queries = 0
        self.total_io = 0
        self.total_comparisons = 0
        # Telemetry: share the engine's registry when it has one so the
        # whole service stack exports together; ambient fallback covers
        # engines built outside a metrics scope.
        metrics = getattr(engine, "_metrics", None) or current_registry()
        self._recorder = current_recorder()
        self._m_queries = metrics.counter(
            "svc_queries", "queries answered by kind", labels=("kind",)
        )
        self._m_flush_io = metrics.histogram(
            "svc_flush_io",
            "simulated I/O per flush by kind",
            labels=("kind",),
        ).labels(kind="query")
        self._m_amortized = metrics.histogram(
            "svc_query_amortized_io",
            "per-query amortized simulated I/O (per flush)",
        )
        self._m_select_ranks = metrics.counter(
            "svc_select_ranks", "select/quantile ranks submitted"
        )
        self._m_distinct = metrics.counter(
            "svc_distinct_ranks", "distinct ranks after flush deduplication"
        )
        self._m_coalesce = metrics.gauge(
            "svc_coalescing_ratio",
            "distinct/submitted rank ratio of the last flush (lower = "
            "more coalescing)",
        )

    # ------------------------------------------------------------------
    def submit(self, query) -> int:
        """Queue one query (a :class:`Query` or a wire tuple); returns
        its position in the next :meth:`flush`'s answer list."""
        self._queue.append(Query.coerce(query))
        return len(self._queue) - 1

    def select(self, rank: int) -> int:
        return self.submit(Query.select(rank))

    def quantile(self, q: float) -> int:
        return self.submit(Query.quantile(q))

    def range_count(self, lo: int, hi: int) -> int:
        return self.submit(Query.range_count(lo, hi))

    def partition_of(self, key: int) -> int:
        return self.submit(Query.partition_of(key))

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def queued(self) -> list[Query]:
        """Snapshot of the not-yet-flushed queue, in submit order."""
        return list(self._queue)

    # ------------------------------------------------------------------
    def flush(self) -> list:
        """Answer every queued query; returns answers in submit order.

        ``select``/``quantile`` answers are records; ``range_count`` and
        ``partition_of`` answers are ints.
        """
        queue, self._queue = self._queue, []
        if not queue:
            return []
        machine = self._machine
        engine = self.engine
        answers: list = [None] * len(queue)
        with machine.measure("svc-flush") as cost:
            n = engine.n_live
            rank_positions: list[int] = []
            ranks: list[int] = []
            for pos, query in enumerate(queue):
                if query.kind == "select":
                    rank_positions.append(pos)
                    ranks.append(query.rank)
                elif query.kind == "quantile":
                    if n == 0:
                        raise SpecError("quantile of an empty index")
                    rank_positions.append(pos)
                    ranks.append(rank_of_fraction(n, query.q))
                elif query.kind == "range_count":
                    answers[pos] = engine.range_count(query.lo, query.hi)
                else:
                    answers[pos] = engine.partition_of(query.key)
            if ranks:
                rank_arr = np.array(ranks, dtype=np.int64)
                records = engine.batch_select(rank_arr)
                for pos, rec in zip(rank_positions, records):
                    answers[pos] = rec
        stats = FlushStats(
            queries=len(queue),
            select_ranks=len(ranks),
            distinct_ranks=int(len(np.unique(ranks))) if ranks else 0,
            io=cost.total,
            comparisons=cost.comparisons,
        )
        self.flushes.append(stats)
        self.total_queries += stats.queries
        self.total_io += stats.io
        self.total_comparisons += stats.comparisons
        for query in queue:
            self._m_queries.labels(kind=query.kind).inc()
        self._m_flush_io.observe(stats.io)
        self._m_amortized.observe(stats.amortized_io, count=stats.queries)
        self._m_select_ranks.inc(stats.select_ranks)
        self._m_distinct.inc(stats.distinct_ranks)
        if stats.select_ranks:
            self._m_coalesce.set(stats.distinct_ranks / stats.select_ranks)
        self._recorder.record(
            "query-flush", queries=stats.queries, io=stats.io
        )
        self._maybe_checkpoint()
        return answers

    def _maybe_checkpoint(self) -> None:
        """Durable mode: snapshot the engine every ``checkpoint_every``
        query flushes (on top of the engine's own commit-count cadence),
        so read-mostly services still bound their replay tail."""
        if self.checkpoint_every is None:
            return
        snap = getattr(self.engine, "snapshot", None)
        if snap is not None and len(self.flushes) % self.checkpoint_every == 0:
            snap()

    def run(self, queries, batch: int = 64) -> list:
        """Submit and flush ``queries`` in batches of ``batch``;
        returns all answers in input order."""
        if batch < 1:
            raise SpecError("batch must be >= 1")
        answers: list = []
        for query in queries:
            self.submit(query)
            if self.pending >= batch:
                answers.extend(self.flush())
        answers.extend(self.flush())
        return answers

    # ------------------------------------------------------------------
    @property
    def amortized_io(self) -> float:
        """I/Os per query over the frontend's whole life."""
        return self.total_io / self.total_queries if self.total_queries else 0.0

    def summary(self) -> dict:
        """Aggregate metrics (plus engine stats when it has any)."""
        out = {
            "queries": self.total_queries,
            "flushes": len(self.flushes),
            "io": self.total_io,
            "comparisons": self.total_comparisons,
            "amortized_io": self.amortized_io,
        }
        stats = getattr(self.engine, "stats", None)
        if stats:
            out["engine"] = dict(stats)
        return out

"""Append/delete delta buffer with local rebalancing.

:class:`DeltaBuffer` is the write path of the service: updates are
buffered in memory (under the index's resident lease), then applied in
batches:

* **appends** are routed by one batched binary search over the splitter
  composites and written as new *overflow segments* of their target
  partitions — ``O(#touched + |batch|/B)`` write I/Os, no rewriting;
* **deletes** resolve the victim record by scanning the (at most two,
  for duplicate boundary keys) candidate partitions and tombstone its
  composite — the record dies logically at once and physically at the
  partition's next compaction;
* after a batch, every touched partition that drifted outside the
  ``[a, b]`` window is **locally** split (via in-memory splitters when
  it fits, external multi-partition otherwise) or merged with a
  neighbour (pure metadata);
* cumulative drift — updates applied since the last full build — above
  ``rebuild_threshold · N₀`` triggers one **full repartitioning**
  (traced as the ``svc-rebuild`` phase).

Queries flush the buffer automatically, so every answer reflects every
prior update.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_search
from ..em.errors import SpecError
from ..em.records import UID_MAX, composite, composite_of, make_records
from ..em.streams import BlockReader, BlockWriter

if TYPE_CHECKING:  # pragma: no cover
    from .index import PartitionIndex

__all__ = ["DeltaBuffer"]


class DeltaBuffer:
    """Buffered updates against a :class:`~repro.service.index.PartitionIndex`.

    ``capacity`` bounds the number of buffered operations; reaching it
    flushes automatically (queries also flush).  The buffer's memory
    footprint is charged to the index's resident lease.
    """

    def __init__(self, index: "PartitionIndex", capacity: int | None = None):
        m = index._machine
        if capacity is None:
            capacity = max(m.B, m.M // 8)
        if capacity < 1:
            raise SpecError("delta buffer capacity must be >= 1")
        self._index = index
        self.capacity = int(capacity)
        self._appends: list[np.ndarray] = []
        self._n_appends = 0
        self._deletes: list[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of buffered operations."""
        return self._n_appends + len(self._deletes)

    @property
    def resident_records(self) -> int:
        """Records of machine memory the buffer occupies."""
        return self._n_appends + len(self._deletes)

    @property
    def net_delta(self) -> int:
        """Pending change to the index's live size."""
        return self._n_appends - len(self._deletes)

    # ------------------------------------------------------------------
    def append_keys(self, keys) -> None:
        """Buffer new elements with the given keys (fresh uids)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return
        recs = make_records(keys, uids=self._index._fresh_uids(len(keys)))
        self._appends.append(recs)
        self._n_appends += len(recs)
        self._index._sync_resident()
        if len(self) >= self.capacity:
            self.flush()

    def delete_key(self, key: int) -> None:
        """Buffer the deletion of one live element with key ``key``."""
        self._deletes.append(int(key))
        self._index._sync_resident()
        if len(self) >= self.capacity:
            self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> dict:
        """Apply every buffered update; returns per-flush statistics.

        A failed delete (key not present) raises :class:`SpecError`
        after the batch's appends have already been applied — the buffer
        is cleared up to the failing operation.
        """
        idx = self._index
        m = idx._machine
        appends, self._appends, self._n_appends = self._appends, [], 0
        deletes, self._deletes = self._deletes, []
        idx._sync_resident()
        n_app = sum(len(a) for a in appends)
        touched: set[int] = set()
        with m.phase("svc-update"):
            if n_app:
                batch = (
                    appends[0]
                    if len(appends) == 1
                    else np.concatenate(appends)
                )
                touched |= self._apply_appends(batch)
            for key in deletes:
                touched.add(self._apply_delete(key))
            idx._drift += n_app + len(deletes)
            idx._rebalance(touched)
        idx.stats["update_flushes"] += 1
        rebuilt = False
        if idx._drift > idx.rebuild_threshold * max(1, idx._n0):
            idx._rebuild()
            rebuilt = True
        idx._sync_resident()
        return {
            "appended": n_app,
            "deleted": len(deletes),
            "touched_partitions": len(touched),
            "rebuilt": rebuilt,
        }

    # ------------------------------------------------------------------
    def _apply_appends(self, batch: np.ndarray) -> set[int]:
        """Route ``batch`` to overflow segments; returns touched indices."""
        idx = self._index
        m = idx._machine
        splitters = idx._splitters
        comps = composite(batch)
        j_of = np.searchsorted(splitters, comps, side="left")
        cmp_search(m, len(batch), max(1, len(splitters)))
        touched: set[int] = set()
        for j in np.unique(j_of):
            recs = batch[j_of == j]
            part = idx._parts[int(j)]
            writer = BlockWriter(m, "svc-append")
            try:
                writer.write(recs)
                seg = writer.close()
            except BaseException:
                writer.abort()
                raise
            part.segments.append(seg)
            part.stored += len(recs)
            touched.add(int(j))
        idx._n_live += len(batch)
        return touched

    def _apply_delete(self, key: int) -> int:
        """Tombstone one live record with ``key``; returns its partition.

        Duplicate keys equal to a splitter key can straddle a partition
        boundary, so every candidate partition between the key's lowest
        and highest possible composite is scanned until a live victim is
        found.
        """
        idx = self._index
        m = idx._machine
        splitters = idx._splitters
        j_lo = int(np.searchsorted(splitters, composite_of(key, 0), "left"))
        j_hi = int(
            np.searchsorted(splitters, composite_of(key, UID_MAX), "left")
        )
        cmp_search(m, 2, max(1, len(splitters)))
        for j in range(j_lo, min(j_hi, len(idx._parts) - 1) + 1):
            part = idx._parts[j]
            for seg in part.segments:
                with BlockReader(seg, "svc-delete-scan") as reader:
                    for block in reader:
                        cmp_linear(m, len(block))
                        hits = block[block["key"] == key]
                        for rec in hits:
                            c = composite_of(int(rec["key"]), int(rec["uid"]))
                            if c not in part.tombstones:
                                part.tombstones.add(c)
                                idx._n_live -= 1
                                idx._sync_resident()
                                return j
        raise SpecError(f"delete: no live element with key {key}")

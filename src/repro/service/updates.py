"""Append/delete delta buffer with local rebalancing.

:class:`DeltaBuffer` is the write path of the service: updates are
buffered in memory (under the index's resident lease), then applied in
batches:

* operations are applied **in submission order** — runs of consecutive
  appends coalesce into one routed batch, but a delete submitted before
  an append never sees the appended record;
* **appends** are routed by one batched binary search over the splitter
  composites and written as new *overflow segments* of their target
  partitions — ``O(#touched + |batch|/B)`` write I/Os, no rewriting;
* **deletes** resolve the victim record by scanning the (at most two,
  for duplicate boundary keys) candidate partitions and tombstone its
  composite — the record dies logically at once and physically at the
  partition's next compaction;
* after a batch, every touched partition that drifted outside the
  ``[a, b]`` window is **locally** split (via in-memory splitters when
  it fits, external multi-partition otherwise) or merged with a
  neighbour (pure metadata);
* cumulative drift — updates applied since the last full build — above
  ``rebuild_threshold · N₀`` triggers one **full repartitioning**
  (traced as the ``svc-rebuild`` phase).

Queries flush the buffer automatically, so every answer reflects every
prior update.

Flush is **exception-safe**: whatever interrupts a flush — a failed
delete (:class:`SpecError`) or a simulated crash mid-I/O — the work
already applied is accounted (drift, rebalance) in a ``finally`` block,
unapplied operations are reinstated at the front of the buffer, and a
durable index logs exactly the applied subset to its write-ahead log
(never after a crash, so a torn flush is invisible to recovery).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_search
from ..em.errors import SpecError
from ..em.records import (
    UID_MAX,
    composite,
    composite_of,
    make_records,
)
from ..em.streams import BlockReader, BlockWriter
from ..obs.metrics import current_registry
from ..obs.recorder import current_recorder

if TYPE_CHECKING:  # pragma: no cover
    from .index import PartitionIndex

__all__ = ["DeltaBuffer"]


class DeltaBuffer:
    """Buffered updates against a :class:`~repro.service.index.PartitionIndex`.

    ``capacity`` bounds the number of buffered operations; reaching it
    flushes automatically (queries also flush).  The buffer's memory
    footprint is charged to the index's resident lease.
    """

    def __init__(self, index: "PartitionIndex", capacity: int | None = None):
        m = index._machine
        if capacity is None:
            capacity = max(m.B, m.M // 8)
        if capacity < 1:
            raise SpecError("delta buffer capacity must be >= 1")
        self._index = index
        self.capacity = int(capacity)
        #: Ordered operation log: ``("append", records)`` entries carry
        #: pre-assigned uids; ``("delete", key)`` entries resolve their
        #: victim at flush time.  Order is submission order.
        self._ops: list[tuple] = []
        self._n_appends = 0
        self._n_deletes = 0
        # Telemetry: share the index's registry so engine and write path
        # land in one export; ambient fallback covers stand-alone use.
        metrics = getattr(index, "_metrics", None) or current_registry()
        self._recorder = current_recorder()
        self._m_pending = metrics.gauge(
            "svc_pending_deltas", "buffered update operations awaiting flush"
        )
        self._m_flush_io = metrics.histogram(
            "svc_flush_io",
            "simulated I/O per flush by kind",
            labels=("kind",),
        ).labels(kind="update")
        updates = metrics.counter(
            "svc_updates", "applied update operations by kind", labels=("op",)
        )
        self._m_app = updates.labels(op="append")
        self._m_del = updates.labels(op="delete")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of buffered operations."""
        return self._n_appends + self._n_deletes

    @property
    def resident_records(self) -> int:
        """Records of machine memory the buffer occupies."""
        return self._n_appends + self._n_deletes

    @property
    def net_delta(self) -> int:
        """Pending change to the index's live size."""
        return self._n_appends - self._n_deletes

    def _recount(self) -> None:
        self._n_appends = sum(
            len(op[1]) for op in self._ops if op[0] == "append"
        )
        self._n_deletes = sum(1 for op in self._ops if op[0] == "delete")

    # ------------------------------------------------------------------
    def append_keys(self, keys) -> None:
        """Buffer new elements with the given keys (fresh uids)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return
        recs = make_records(keys, uids=self._index._fresh_uids(len(keys)))
        self._ops.append(("append", recs))
        self._n_appends += len(recs)
        self._index._sync_resident()
        self._m_pending.set(len(self))
        if len(self) >= self.capacity:
            self.flush()

    def delete_key(self, key: int) -> None:
        """Buffer the deletion of one live element with key ``key``.

        The delete targets the state as of its position in the batch: a
        record appended *later* in the same batch is not a candidate.
        """
        self._ops.append(("delete", int(key)))
        self._n_deletes += 1
        self._index._sync_resident()
        self._m_pending.set(len(self))
        if len(self) >= self.capacity:
            self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> dict:
        """Apply every buffered update in order; returns flush statistics.

        A failed delete (key not present) raises :class:`SpecError`; the
        operations *before* it have been applied and accounted, the
        failed delete is dropped (retrying it can never succeed), and
        every operation after it is reinstated at the front of the
        buffer, so a subsequent flush completes the batch.  Any other
        exception (a crash) likewise accounts the applied prefix and
        reinstates the remainder — but nothing is logged to a durable
        index's write-ahead log, so recovery never sees a torn flush.
        """
        idx = self._index
        m = idx._machine
        ops, self._ops = self._ops, []
        self._recount()
        idx._sync_resident()
        touched: set[int] = set()
        applied: list[tuple] = []
        leftover: list[np.ndarray] = []
        crashed = False
        handled = False
        completed = False
        rebuilt = False
        n_app = n_del = 0
        pos = 0
        io_base = idx._life_io()
        try:
            try:
                with m.phase("svc-update"):
                    try:
                        while pos < len(ops):
                            if ops[pos][0] == "append":
                                run = [ops[pos][1]]
                                pos += 1
                                while (
                                    pos < len(ops) and ops[pos][0] == "append"
                                ):
                                    run.append(ops[pos][1])
                                    pos += 1
                                batch = (
                                    run[0]
                                    if len(run) == 1
                                    else m.kernel.concat(run)
                                )
                                self._apply_appends(
                                    batch, touched, applied, leftover
                                )
                            else:
                                key = ops[pos][1]
                                pos += 1
                                try:
                                    j, uid = self._apply_delete(key)
                                except SpecError:
                                    handled = True
                                    self._ops = ops[pos:] + self._ops
                                    raise
                                touched.add(j)
                                applied.append(("delete", (key, uid)))
                    except BaseException:
                        if not handled:
                            crashed = True
                            keep = [("append", a) for a in leftover if len(a)]
                            self._ops = keep + ops[pos:] + self._ops
                        raise
                    finally:
                        n_app = sum(
                            len(e[1]) for e in applied if e[0] == "append"
                        )
                        n_del = sum(1 for e in applied if e[0] == "delete")
                        idx._drift += n_app + n_del
                        idx._rebalance(touched)
                        if not crashed and applied:
                            idx._log_applied(applied)
            finally:
                self._recount()
                idx._sync_resident()
            idx.stats["update_flushes"] += 1
            if idx._drift > idx.rebuild_threshold * max(1, idx._n0):
                idx._rebuild()
                rebuilt = True
            idx._maybe_checkpoint()
            idx._sync_resident()
            completed = True
            return {
                "appended": n_app,
                "deleted": n_del,
                "touched_partitions": len(touched),
                "rebuilt": rebuilt,
            }
        finally:
            # Telemetry only — plain bookkeeping that cannot raise or
            # mask the in-flight exception; runs on crashed flushes too
            # so the flight recorder keeps the last pre-crash event.
            self._m_pending.set(len(self))
            self._m_app.inc(n_app)
            self._m_del.inc(n_del)
            idx._m_drift.set(idx._drift)
            self._m_flush_io.observe(idx._life_io() - io_base)
            self._recorder.record(
                "update-flush",
                appended=n_app,
                deleted=n_del,
                touched=len(touched),
                rebuilt=rebuilt,
                completed=completed,
            )

    # ------------------------------------------------------------------
    def replay_group(self, entries: list[tuple]) -> None:
        """Re-apply one committed WAL group during recovery.

        ``entries`` are ``("append", records)`` arrays carrying the
        exact uids the original run assigned, and ``("delete", (key,
        uid))`` resolved victims.  Accounting (drift, rebalance,
        rebuild threshold) follows the normal flush path so the
        recovered index keeps the same maintenance cadence; nothing is
        re-logged — the caller snapshots once replay completes.
        """
        idx = self._index
        m = idx._machine
        touched: set[int] = set()
        n_app = n_del = 0
        with m.phase("svc-update"):
            pos = 0
            while pos < len(entries):
                if entries[pos][0] == "append":
                    run = [entries[pos][1]]
                    pos += 1
                    while pos < len(entries) and entries[pos][0] == "append":
                        run.append(entries[pos][1])
                        pos += 1
                    batch = run[0] if len(run) == 1 else m.kernel.concat(run)
                    self._apply_appends(batch, touched, [], [])
                    n_app += len(batch)
                    hi = int(batch["uid"].max())
                    idx._next_uid = max(idx._next_uid, hi + 1)
                else:
                    key, uid = entries[pos][1]
                    pos += 1
                    touched.add(self._apply_delete_exact(key, uid))
                    n_del += 1
            idx._drift += n_app + n_del
            idx._rebalance(touched)
        idx.stats["update_flushes"] += 1
        if idx._drift > idx.rebuild_threshold * max(1, idx._n0):
            idx._rebuild()
        idx._sync_resident()

    # ------------------------------------------------------------------
    def _apply_appends(
        self,
        batch: np.ndarray,
        touched: set,
        applied: list,
        leftover: list,
    ) -> None:
        """Route ``batch`` to overflow segments, recording progress.

        Per-partition state (segments, stored counts, ``_n_live``) and
        the ``applied`` log advance incrementally, so an exception after
        some partitions were written leaves the index consistent with
        exactly the records marked applied; the unwritten remainder of
        the batch is appended to ``leftover`` for reinstatement.
        """
        idx = self._index
        m = idx._machine
        splitters = idx._splitters
        comps = composite(batch)
        j_of = np.searchsorted(splitters, comps, side="left")
        cmp_search(m, len(batch), max(1, len(splitters)))
        done = np.zeros(len(batch), dtype=bool)
        try:
            for j in np.unique(j_of):
                sel = j_of == j
                recs = batch[sel]
                part = idx._parts[int(j)]
                writer = BlockWriter(m, "svc-append")
                try:
                    writer.write(recs)
                    seg = writer.close()
                except BaseException:
                    writer.abort()
                    raise
                part.segments.append(seg)
                part.stored += len(recs)
                idx._n_live += len(recs)
                touched.add(int(j))
                applied.append(("append", recs))
                done |= sel
        except BaseException:
            leftover.append(batch[~done])
            raise

    def _apply_delete(self, key: int) -> tuple[int, int]:
        """Tombstone one live record with ``key``.

        Returns ``(partition, uid)`` of the victim — the uid is what a
        durable index logs so that recovery replays the *same* victim
        regardless of how the rebuilt index is laid out.  Duplicate keys
        equal to a splitter key can straddle a partition boundary, so
        every candidate partition between the key's lowest and highest
        possible composite is scanned until a live victim is found.
        """
        idx = self._index
        m = idx._machine
        splitters = idx._splitters
        j_lo = int(np.searchsorted(splitters, composite_of(key, 0), "left"))
        j_hi = int(
            np.searchsorted(splitters, composite_of(key, UID_MAX), "left")
        )
        cmp_search(m, 2, max(1, len(splitters)))
        for j in range(j_lo, min(j_hi, len(idx._parts) - 1) + 1):
            part = idx._parts[j]
            for seg in part.segments:
                with BlockReader(seg, "svc-delete-scan") as reader:
                    for block in reader:
                        cmp_linear(m, len(block))
                        hits = block[block["key"] == key]
                        for rec in hits:
                            c = composite_of(int(rec["key"]), int(rec["uid"]))
                            if c not in part.tombstones:
                                part.tombstones.add(c)
                                idx._n_live -= 1
                                idx._sync_resident()
                                return j, int(rec["uid"])
        raise SpecError(f"delete: no live element with key {key}")

    def _apply_delete_exact(self, key: int, uid: int) -> int:
        """Tombstone the exact record ``(key, uid)``; returns its partition.

        WAL replay applies the victim the original run resolved, so the
        rebuilt index tombstones the same element even when its partition
        layout diverged from the crashed process's.
        """
        idx = self._index
        m = idx._machine
        splitters = idx._splitters
        c = composite_of(int(key), int(uid))
        j_lo = int(np.searchsorted(splitters, composite_of(key, 0), "left"))
        j_hi = int(
            np.searchsorted(splitters, composite_of(key, UID_MAX), "left")
        )
        cmp_search(m, 2, max(1, len(splitters)))
        for j in range(j_lo, min(j_hi, len(idx._parts) - 1) + 1):
            part = idx._parts[j]
            if c in part.tombstones:
                continue
            for seg in part.segments:
                with BlockReader(seg, "svc-delete-scan") as reader:
                    for block in reader:
                        cmp_linear(m, len(block))
                        if bool(np.any(composite(block) == c)):
                            part.tombstones.add(c)
                            idx._n_live -= 1
                            idx._sync_resident()
                            return j
        raise SpecError(f"replay delete: no live element ({key}, {uid})")

"""Durability for the partition service: WAL, snapshots, recovery.

The volatile :class:`~repro.service.index.PartitionIndex` loses every
applied update when its process dies — the paper's model has no notion
of persistence beyond "blocks on disk survive".  This module builds
exactly that survival story out of EM blocks, with every I/O charged to
the machine like any algorithm:

**Write-ahead delta log (WAL).**  A fixed run of ``wal_capacity``
consecutive blocks.  Each block stores up to ``B`` records: record 0 is
a header ``(MAGIC_WAL, epoch, used)``; the remaining ``B - 1`` slots
hold log entries packed one per record — ``APPEND(key, uid)``,
``DELETE(key, victim_uid)``, ``COMMIT(seq, n_ops)``.  Each
:meth:`DeltaBuffer.flush <repro.service.updates.DeltaBuffer.flush>`
group-commits its *applied* operations as one group whose trailing
``COMMIT`` entry is the durability point: the tail block is rewritten
in place (block writes are atomic), so a crash mid-append leaves the
previous committed prefix intact and the torn group invisible.  Logging
happens *after* application (a redo log of work that definitely
happened), and never after a crash-like exception — so recovery can
replay groups blindly without double-applying a torn flush.

**Snapshots.**  A snapshot serializes the index's control state —
splitters, partition descriptors (segment block ids and lengths),
tombstone composites, uid high-water mark, drift — into words packed
three-per-record in a fresh EM file, then commits it with a single
atomic write of the one-block *manifest*.  The manifest names the
snapshot run and the current ``epoch``; bumping the epoch logically
truncates the WAL for free (stale blocks still carry the old epoch in
their headers and are ignored).  Segment blocks retired between
snapshots (compaction, split, rebuild) are *deferred* — freed only once
the next manifest lands — because the latest on-disk snapshot still
references them.

**Recovery.**  :func:`recover` reads the manifest, adopts the snapshot
run, decodes the index, scans the WAL for committed groups of the
manifest's epoch, replays them in order (appends carry their original
uids; deletes name the exact victim, so replay is deterministic even if
the rebuilt partition layout diverges), and finally snapshots the
recovered state.  The answers of the recovered index are
element-identical to the uncrashed one because its *live record
multiset* is identical — layout may differ, query answers cannot.

Cost model: logging a flush of ``g`` operations costs
``O(1 + g / (B-1))`` write I/Os; a snapshot costs ``O(K + S/B)`` writes
for ``S`` metadata words over ``K`` partitions; recovery costs one
manifest read + the snapshot scan + the live WAL scan + replay (append
routing and victim scans at the usual service rates) + one final
snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import RECORD_DTYPE, make_records
from ..obs.metrics import current_registry
from ..obs.recorder import current_recorder
from .index import PartitionIndex, _Partition

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["DurableStore", "DurablePartitionIndex", "recover"]

#: Format magics (arbitrary but distinctive 63-bit constants).
MAGIC_MANIFEST = 0x454D4D414E494601  # "EMMANIF" + 1
MAGIC_WAL = 0x454D57414C4F4701  # "EMWALOG" + 1
MAGIC_SNAP = 0x454D534E41505301  # "EMSNAPS" + 1
#: On-disk format version.
VERSION = 1

#: WAL entry tags.
_T_APPEND = 1
_T_DELETE = 2
_T_COMMIT = 3

#: Number of words in the manifest.
_MANIFEST_WORDS = 9


# ----------------------------------------------------------------------
# Word <-> record packing
# ----------------------------------------------------------------------
def _words_to_records(words) -> np.ndarray:
    """Pack int64 words three-per-record (zero-padded tail).

    Metadata is not element data, so the packing bypasses
    :func:`make_records` range validation — block ids and bit-cast
    floats legitimately exceed the key range.
    """
    words = np.asarray(words, dtype=np.int64)
    n = max(1, -(-len(words) // 3))
    flat = np.zeros(3 * n, dtype=np.int64)
    flat[: len(words)] = words
    recs = np.empty(n, dtype=RECORD_DTYPE)
    recs["key"] = flat[0::3]
    recs["uid"] = flat[1::3]
    recs["grp"] = flat[2::3]
    return recs


def _records_to_words(recs: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`_words_to_records`; keeps the first ``count``."""
    flat = np.empty(3 * len(recs), dtype=np.int64)
    flat[0::3] = recs["key"]
    flat[1::3] = recs["uid"]
    flat[2::3] = recs["grp"]
    return flat[:count]


def _f2i(x: float) -> int:
    """Bit-cast a float into an int64 word (lossless)."""
    return int(np.float64(x).view(np.int64))


def _i2f(w: int) -> float:
    return float(np.int64(w).view(np.float64))


# ----------------------------------------------------------------------
# Durable store: manifest + WAL + snapshot lifecycle
# ----------------------------------------------------------------------
class DurableStore:
    """On-disk durability state shared by one durable index.

    Owns one manifest block, a consecutive run of ``wal_capacity`` WAL
    blocks, the current snapshot run, and the list of *retired* segment
    blocks whose free is deferred to the next snapshot commit.  A
    persistent ``B``-record lease (``svc-wal-tail``) pays for the tail
    block image every append rewrites.
    """

    def __init__(
        self,
        machine: "Machine",
        manifest_bid: int,
        wal_start: int,
        wal_capacity: int,
        epoch: int,
        seq: int,
    ) -> None:
        self.machine = machine
        self.manifest_bid = int(manifest_bid)
        self.wal_start = int(wal_start)
        self.wal_capacity = int(wal_capacity)
        self.epoch = int(epoch)
        #: Sequence number of the latest durable flush group.
        self.seq = int(seq)
        self._tail_lease = machine.memory.lease(machine.B, "svc-wal-tail")
        self._blocks_full = 0
        self._tail_entries: list[tuple[int, int, int]] = []
        self._snapshot_blocks: list[int] = []
        self._snapshot_len = 0
        self._retired: list[int] = []
        self.commits_since_snapshot = 0
        self.stats = {"wal_writes": 0, "groups_logged": 0, "snapshots": 0}
        # Telemetry: ambient registry/recorder, bound at construction.
        metrics = current_registry()
        self._recorder = current_recorder()
        self._m_wal_writes = metrics.counter(
            "svc_wal_writes", "WAL block writes (tail rewrites included)"
        )
        self._m_groups = metrics.counter(
            "svc_wal_groups", "flush groups committed to the WAL"
        )
        self._m_snapshots = metrics.counter(
            "svc_snapshots", "metadata snapshots committed"
        )
        self._m_wal_blocks = metrics.gauge(
            "svc_wal_blocks_used", "WAL blocks holding live entries"
        )
        self._m_epoch = metrics.gauge(
            "svc_snapshot_epoch", "current durability epoch"
        )
        self._m_epoch.set(self.epoch)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, machine: "Machine", wal_capacity: int | None = None
    ) -> "DurableStore":
        """Allocate and pre-format a fresh manifest + WAL region.

        Every WAL block is formatted with an epoch-0 header up front so
        the recovery scan never reads an uninitialized block (epoch 0 is
        permanently stale: live epochs start at 1).  Costs
        ``wal_capacity`` write I/Os once, at service start.
        """
        B = machine.B
        if wal_capacity is None:
            wal_capacity = max(8, machine.M // B)
        if wal_capacity < 1:
            raise SpecError("wal capacity must be >= 1")
        ids = machine.disk.allocate(1 + wal_capacity)
        store = cls(machine, ids[0], ids[1], wal_capacity, epoch=1, seq=0)
        try:
            with machine.phase("svc-wal"):
                stale = np.empty(1, dtype=RECORD_DTYPE)
                stale["key"] = MAGIC_WAL
                stale["uid"] = 0
                stale["grp"] = 0
                for i in range(wal_capacity):
                    machine.disk.write(store.wal_start + i, stale)
        except BaseException:
            store.destroy()
            raise
        return store

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------
    @property
    def entries_per_block(self) -> int:
        return self.machine.B - 1

    @property
    def wal_room(self) -> int:
        """Entries the WAL can still absorb before the next snapshot."""
        epb = self.entries_per_block
        return (self.wal_capacity - self._blocks_full) * epb - len(
            self._tail_entries
        )

    def log_group(self, seq: int, entries: list[tuple]) -> bool:
        """Append one flush group, commit included; False when full.

        ``entries`` is the delta buffer's applied-operation list:
        ``("append", records)`` / ``("delete", (key, uid))``.  The group
        becomes durable exactly when the block holding its trailing
        ``COMMIT`` entry lands; a crash at any earlier write leaves a
        torn (commit-less) suffix that recovery discards.  On ``False``
        nothing is written — the caller snapshots instead, which
        subsumes the group and resets the log.
        """
        triples: list[tuple[int, int, int]] = []
        for e in entries:
            if e[0] == "append":
                recs = e[1]
                for key, uid in zip(
                    recs["key"].tolist(), recs["uid"].tolist()
                ):
                    triples.append((_T_APPEND, int(key), int(uid)))
            else:
                key, uid = e[1]
                triples.append((_T_DELETE, int(key), int(uid)))
        triples.append((_T_COMMIT, int(seq), len(triples)))
        if len(triples) > self.wal_room:
            return False
        epb = self.entries_per_block
        with self.machine.phase("svc-wal"):
            i = 0
            while i < len(triples):
                take = min(epb - len(self._tail_entries), len(triples) - i)
                self._tail_entries.extend(triples[i : i + take])
                i += take
                self._write_tail()
                if len(self._tail_entries) == epb:
                    self._blocks_full += 1
                    self._tail_entries = []
        self.seq = int(seq)
        self.commits_since_snapshot += 1
        self.stats["groups_logged"] += 1
        self._m_groups.inc()
        self._m_wal_blocks.set(
            self._blocks_full + (1 if self._tail_entries else 0)
        )
        self._recorder.record(
            "wal-group", wal_seq=self.seq, entries=len(triples)
        )
        return True

    def _write_tail(self) -> None:
        """Rewrite the tail WAL block in place (one atomic write I/O)."""
        used = len(self._tail_entries)
        out = np.empty(1 + used, dtype=RECORD_DTYPE)
        out["key"][0] = MAGIC_WAL
        out["uid"][0] = self.epoch
        out["grp"][0] = used
        for i, (tag, a, b) in enumerate(self._tail_entries):
            out["key"][i + 1] = tag
            out["uid"][i + 1] = a
            out["grp"][i + 1] = b
        self.machine.disk.write(self.wal_start + self._blocks_full, out)
        self.stats["wal_writes"] += 1
        self._m_wal_writes.inc()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self, index: "DurablePartitionIndex") -> None:
        """Serialize ``index`` and commit it via the manifest.

        The snapshot payload is written first (to fresh blocks, batched,
        atomic under fault injection); the single manifest write is the
        commit point.  Only after the manifest lands are the previous
        snapshot's blocks and every retired segment block freed, and the
        WAL logically reset by the epoch bump already recorded in the
        new manifest.  A fault before the manifest write restores the
        in-memory state and releases the unreachable new blocks.
        """
        m = self.machine
        with m.phase("svc-snapshot"):
            words = _encode_snapshot(index, self.seq)
            recs = _words_to_records(words)
            with m.memory.lease(len(recs), "svc-snapshot-buf"):
                snap = EMFile.from_records(m, recs)
            old_blocks = self._snapshot_blocks
            old_len = self._snapshot_len
            old_epoch = self.epoch
            self._snapshot_blocks = list(snap.block_ids)
            self._snapshot_len = len(words)
            self.epoch = old_epoch + 1
            try:
                self._write_manifest()
            except BaseException:
                self._snapshot_blocks = old_blocks
                self._snapshot_len = old_len
                self.epoch = old_epoch
                snap.free()  # unreachable: no manifest names these blocks
                raise
        if old_blocks:
            m.disk.free(old_blocks)
        if self._retired:
            m.disk.free(self._retired)
            self._retired = []
        self._blocks_full = 0
        self._tail_entries = []
        self.commits_since_snapshot = 0
        self.stats["snapshots"] += 1
        self._m_snapshots.inc()
        self._m_epoch.set(self.epoch)
        self._m_wal_blocks.set(0)
        self._recorder.record(
            "snapshot", epoch=self.epoch, wal_seq=self.seq
        )

    def _write_manifest(self) -> None:
        words = np.array(
            [
                MAGIC_MANIFEST,
                VERSION,
                self.epoch,
                self.seq,
                self._snapshot_blocks[0] if self._snapshot_blocks else -1,
                len(self._snapshot_blocks),
                self._snapshot_len,
                self.wal_start,
                self.wal_capacity,
            ],
            dtype=np.int64,
        )
        self.machine.disk.write(self.manifest_bid, _words_to_records(words))

    # ------------------------------------------------------------------
    # Deferred frees / lifecycle
    # ------------------------------------------------------------------
    def retire(self, seg: EMFile) -> None:
        """Defer freeing a segment until the next snapshot commits.

        The latest on-disk snapshot may reference these blocks; freeing
        them now would let a new writer recycle blocks a crashed
        process's recovery still needs.
        """
        self._retired.extend(seg.block_ids)

    @property
    def retired_blocks(self) -> int:
        return len(self._retired)

    def release(self) -> None:
        """Release the tail lease (process exit; disk state persists)."""
        if not self._tail_lease.released:
            self._tail_lease.release()

    def destroy(self) -> None:
        """Free every store-owned block (tests/teardown only)."""
        dead = [self.manifest_bid]
        dead += list(range(self.wal_start, self.wal_start + self.wal_capacity))
        dead += self._snapshot_blocks
        dead += self._retired
        self._snapshot_blocks = []
        self._retired = []
        self.machine.disk.free(dead)
        self.release()


# ----------------------------------------------------------------------
# Snapshot codec
# ----------------------------------------------------------------------
def _encode_snapshot(index: "DurablePartitionIndex", seq: int) -> np.ndarray:
    words: list[int] = [
        MAGIC_SNAP,
        VERSION,
        int(seq),
        index._next_uid,
        index._n_live,
        index._n0,
        index._drift,
        index._k0,
        index.a,
        index.b,
        index._target,
        _f2i(index.slack),
        _f2i(index.rebuild_threshold),
        int(index.snapshot_every),
        len(index._parts),
    ]
    words.extend(int(s) for s in index._splitters)
    for part in index._parts:
        words.append(part.stored)
        words.append(len(part.tombstones))
        words.append(len(part.segments))
        for seg in part.segments:
            words.append(len(seg))
            words.append(seg.num_blocks)
            words.extend(seg.block_ids)
        words.extend(sorted(part.tombstones))
    return np.array(words, dtype=np.int64)


def _decode_snapshot(
    machine: "Machine", words: np.ndarray, store: DurableStore
) -> "DurablePartitionIndex":
    w = [int(x) for x in words]
    p = 0

    def take(n: int) -> list[int]:
        nonlocal p
        out = w[p : p + n]
        if len(out) != n:
            raise SpecError("snapshot truncated")
        p += n
        return out

    (magic, version, seq, next_uid, n_live, n0, drift, k0, a, b, target,
     slack_w, thresh_w, snapshot_every, n_parts) = take(15)
    if magic != MAGIC_SNAP:
        raise SpecError("bad snapshot magic")
    if version != VERSION:
        raise SpecError(f"unsupported snapshot version {version}")
    if seq != store.seq:
        raise SpecError("snapshot/manifest sequence mismatch")
    idx = DurablePartitionIndex(
        machine,
        k0,
        slack=_i2f(slack_w),
        rebuild_threshold=_i2f(thresh_w),
        store=store,
        snapshot_every=snapshot_every,
    )
    idx._next_uid = next_uid
    idx._n0 = n0
    idx._drift = drift
    idx.a, idx.b, idx._target = a, b, target
    idx._splitters = np.array(take(max(0, n_parts - 1)), dtype=np.int64)
    parts: list[_Partition] = []
    for _ in range(n_parts):
        stored, ntombs, nsegs = take(3)
        segments: list[EMFile] = []
        for _ in range(nsegs):
            length, nblocks = take(2)
            ids = take(nblocks)
            segments.append(EMFile.adopt(machine, ids, length))
        tombs = set(take(ntombs))
        parts.append(_Partition(segments, stored, tombs))
    idx._parts = parts
    idx._n_live = n_live
    if n_live != sum(part.live for part in parts):
        raise SpecError("snapshot live-count mismatch (corrupt payload)")
    idx._sync_resident()
    return idx


# ----------------------------------------------------------------------
# Durable index
# ----------------------------------------------------------------------
class DurablePartitionIndex(PartitionIndex):
    """A :class:`PartitionIndex` whose state survives process death.

    Every applied flush is group-committed to the WAL; every
    ``snapshot_every`` commits (or whenever the WAL fills) the full
    metadata is checkpointed.  :meth:`close` takes a final snapshot and
    *keeps* the disk state; :meth:`abandon` simulates a crash (drop
    memory, keep disk); :func:`recover` brings either back.
    """

    def __init__(
        self,
        machine: "Machine",
        k: int,
        slack: float = 1.0,
        rebuild_threshold: float = 0.5,
        store: DurableStore | None = None,
        snapshot_every: int = 16,
    ) -> None:
        super().__init__(machine, k, slack, rebuild_threshold)
        if store is None:
            raise SpecError("durable index requires a DurableStore")
        if snapshot_every < 1:
            raise SpecError("snapshot_every must be >= 1")
        self._store = store
        self.snapshot_every = int(snapshot_every)

    @classmethod
    def build_durable(
        cls,
        machine: "Machine",
        file: EMFile,
        k: int,
        slack: float = 1.0,
        rebuild_threshold: float = 0.5,
        wal_capacity: int | None = None,
        snapshot_every: int = 16,
    ) -> "DurablePartitionIndex":
        """Build the index and make it durable (initial snapshot).

        The build is not *crash-recoverable* — durability begins the
        moment the initial snapshot's manifest lands — but a failure
        mid-build still tears everything down (no leaked leases or
        blocks): there is no manifest worth recovering yet.
        """
        store = DurableStore.create(machine, wal_capacity)
        idx = cls(
            machine,
            k,
            slack=slack,
            rebuild_threshold=rebuild_threshold,
            store=store,
            snapshot_every=snapshot_every,
        )
        try:
            idx._install(file, k, free_input=False)
            idx.snapshot()
        except BaseException:
            idx.destroy()
            raise
        return idx

    # ------------------------------------------------------------------
    @property
    def manifest_block(self) -> int:
        """Block id to hand to :func:`recover` after a crash."""
        return self._store.manifest_bid

    @property
    def applied_seq(self) -> int:
        """Sequence number of the latest durable flush group."""
        return self._store.seq

    def snapshot(self) -> None:
        """Checkpoint the full index metadata now."""
        self._store.write_snapshot(self)

    def durability_stats(self) -> dict:
        s = self._store
        return {
            "epoch": s.epoch,
            "seq": s.seq,
            "wal_capacity": s.wal_capacity,
            "wal_blocks_used": s._blocks_full + (1 if s._tail_entries else 0),
            "retired_blocks": s.retired_blocks,
            "snapshot_blocks": len(s._snapshot_blocks),
            **s.stats,
        }

    # ------------------------------------------------------------------
    # Durability hooks (called by the delta buffer)
    # ------------------------------------------------------------------
    def _log_applied(self, entries: list[tuple]) -> None:
        seq = self._store.seq + 1
        if not self._store.log_group(seq, entries):
            # WAL full: the snapshot subsumes this group (its effects
            # are already applied to the state being serialized).
            self._store.seq = seq
            self.snapshot()

    def _maybe_checkpoint(self) -> None:
        if self._store.commits_since_snapshot >= self.snapshot_every:
            self.snapshot()

    def _discard_segment(self, seg: EMFile) -> None:
        self._store.retire(seg)

    def _resident_total(self) -> int:
        # The deferred-free list is honest resident state: one word per
        # retired block id.
        return super()._resident_total() + self._store.retired_blocks

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def abandon(self) -> None:
        """Simulate a crash: drop all memory, keep all disk blocks."""
        if not self._closed:
            self._store._recorder.record(
                "abandon", wal_seq=self._store.seq, epoch=self._store.epoch
            )
            self._store.release()
        super().abandon()

    def close(self) -> None:
        """Flush pending updates, snapshot, and release memory.

        Disk state (segments, snapshot, WAL, manifest) is *kept* —
        that is the point of durability; use :meth:`destroy` to tear a
        test fixture down completely.
        """
        if self._closed:
            return
        if self._delta is not None and len(self._delta):
            self._delta.flush()
        self.snapshot()
        self.abandon()

    def destroy(self) -> None:
        """Free every disk block this index reaches (tests/teardown)."""
        if self._closed:
            return
        for part in self._parts:
            for seg in part.segments:
                seg.free()
        self._store.destroy()
        super().abandon()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def recover(machine: "Machine", manifest_bid: int) -> DurablePartitionIndex:
    """Rebuild a durable index from its manifest after a crash.

    Reads the manifest, adopts and decodes the latest snapshot, replays
    every committed WAL group of the manifest's epoch in order, and
    snapshots the recovered state (so a crash during recovery is itself
    recoverable from the old manifest, and a crash right after recovery
    resumes from the new one).  Returns the recovered index; its
    :attr:`~DurablePartitionIndex.applied_seq` tells the caller how
    many flush groups survived.
    """
    B = machine.B
    with machine.phase("svc-recover"):
        with machine.memory.lease(B, "svc-recover-buf"):
            head = machine.disk.read(manifest_bid)
            words = _records_to_words(head, _MANIFEST_WORDS)
        (magic, version, epoch, seq, snap_start, snap_nblocks,
         snap_word_len, wal_start, wal_capacity) = (int(x) for x in words)
        if magic != MAGIC_MANIFEST:
            raise SpecError(f"block {manifest_bid} is not a manifest")
        if version != VERSION:
            raise SpecError(f"unsupported manifest version {version}")
        if snap_start < 0 or snap_nblocks < 1:
            raise SpecError("manifest names no snapshot")
        store = DurableStore(
            machine, manifest_bid, wal_start, wal_capacity, epoch, seq
        )
        snap_ids = list(range(snap_start, snap_start + snap_nblocks))
        store._snapshot_blocks = snap_ids
        store._snapshot_len = snap_word_len
        try:
            with machine.memory.lease(snap_nblocks * B, "svc-recover-snap"):
                payload = machine.disk.read_many(snap_ids)
                index = _decode_snapshot(
                    machine, _records_to_words(payload, snap_word_len), store
                )
        except BaseException:
            store.release()
            raise
        try:
            groups = _scan_wal(machine, store)
            buf = index._buffer()
            for gseq, entries in groups:
                with machine.memory.lease(len(entries), "svc-replay-buf"):
                    buf.replay_group(_coalesce_entries(entries))
                store.seq = gseq
            index.snapshot()
        except BaseException:
            index.abandon()
            raise
    metrics = current_registry()
    metrics.counter(
        "svc_recovery_groups", "WAL groups replayed during recovery"
    ).inc(len(groups))
    metrics.counter(
        "svc_recovery_ops", "WAL entries replayed during recovery"
    ).inc(sum(len(entries) for _, entries in groups))
    current_recorder().record(
        "recover",
        groups=len(groups),
        ops=sum(len(entries) for _, entries in groups),
        n_live=index._n_live,
        wal_seq=store.seq,
    )
    return index


def _scan_wal(
    machine: "Machine", store: DurableStore
) -> list[tuple[int, list[tuple]]]:
    """Committed groups of the manifest's epoch, in log order.

    Scans blocks front to back; stops at the first stale header (older
    epoch) or the first non-full block (the tail).  Entries after the
    last ``COMMIT`` belong to a torn group and are discarded.
    """
    groups: list[tuple[int, list[tuple]]] = []
    pending: list[tuple] = []
    expect = store.seq + 1
    epb = store.entries_per_block
    with machine.memory.lease(machine.B, "svc-recover-wal"):
        for i in range(store.wal_capacity):
            blk = machine.disk.read(store.wal_start + i)
            if (
                len(blk) == 0
                or int(blk["key"][0]) != MAGIC_WAL
                or int(blk["uid"][0]) != store.epoch
            ):
                break
            used = int(blk["grp"][0])
            for t in range(1, used + 1):
                tag = int(blk["key"][t])
                a = int(blk["uid"][t])
                b = int(blk["grp"][t])
                if tag == _T_APPEND:
                    pending.append(("append", (a, b)))
                elif tag == _T_DELETE:
                    pending.append(("delete", (a, b)))
                elif tag == _T_COMMIT:
                    if a != expect or b != len(pending):
                        raise SpecError("corrupt WAL commit entry")
                    groups.append((a, pending))
                    pending = []
                    expect += 1
                else:
                    raise SpecError(f"corrupt WAL entry tag {tag}")
            if used < epb:
                break
    return groups


def _coalesce_entries(entries: list[tuple]) -> list[tuple]:
    """Convert scanned ``(key, uid)`` appends into record-array runs."""
    out: list[tuple] = []
    keys: list[int] = []
    uids: list[int] = []

    def close_run() -> None:
        if keys:
            out.append(
                (
                    "append",
                    make_records(
                        np.array(keys, dtype=np.int64),
                        uids=np.array(uids, dtype=np.int64),
                    ),
                )
            )
            keys.clear()
            uids.clear()

    for e in entries:
        if e[0] == "append":
            keys.append(e[1][0])
            uids.append(e[1][1])
        else:
            close_run()
            out.append(e)
    close_run()
    return out

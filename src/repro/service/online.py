"""Lazy online multiselection: refine the pivot tree only where queried.

Barbay–Gupta's observation ("Near-Optimal Online Multiselection in
Internal and External Memory") is that an *online* sequence of selection
queries need not pay for a full splitter construction up front: keep the
file behind a pivot tree and refine a node — one sampling pass plus one
distribution pass over just that node — only when a query actually lands
in it.  Refinements are cached in the tree, so

* a *skewed* (zipfian) trace touches few regions and repeats them: total
  I/O stays near the cost of refining the hot paths once, approaching
  ``O((N/B)·log(K/B))`` for the whole trace rather than per query;
* a *uniform or adversarial* trace eventually refines everything, and
  the total approaches (but never exceeds by more than a constant) the
  offline splitter construction — laziness costs nothing
  asymptotically.

:class:`LazyPartitionIndex` implements this over
:func:`~repro.alg.sampling.approx_quantile_pivots` (sampling) and
:func:`~repro.alg.distribute.distribute_by_pivots` (one-pass f-way
distribution).  The tree is read-only with respect to the underlying
file (never mutated, never freed); answered ranks are memoized in a
bounded in-memory cache so repeated hot queries cost zero I/O.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..em.comparisons import cmp_linear, cmp_search
from ..em.errors import SpecError
from ..em.file import EMFile
from ..em.records import UID_MAX, composite, composite_of, empty_records
from ..em.streams import BlockReader
from ..alg.inmemory import select_at_ranks
from ..alg.sampling import approx_quantile_pivots, max_distribution_fanout
from ..alg.distribute import distribute_by_pivots
from ..apps.order_stats import rank_of_fraction
from ..obs.metrics import current_registry

if TYPE_CHECKING:  # pragma: no cover
    from ..em.machine import Machine

__all__ = ["LazyPartitionIndex"]


class _LazyNode:
    """One pivot-tree node covering a contiguous composite range.

    A leaf holds a file (``owned`` unless it is the caller's input at
    the root); an internal node holds its children plus the pivot
    composites and cumulative child sizes that route ranks down.
    """

    __slots__ = ("file", "owned", "size", "pivots", "cum", "children")

    def __init__(self, file: EMFile | None, owned: bool, size: int):
        self.file = file
        self.owned = owned
        self.size = size
        self.pivots: np.ndarray | None = None
        self.cum: np.ndarray | None = None
        self.children: list["_LazyNode"] | None = None


class LazyPartitionIndex:
    """Read-only online selection engine over one :class:`EMFile`.

    Parameters
    ----------
    machine, file:
        The machine and the (unsorted) input file.  The file is never
        modified or freed; refined copies of its regions are owned by
        the tree and released by :meth:`close`.
    k:
        Target resolution: leaves aim at ``~N/k`` records (like a
        K-partition index built fully).  Defaults to whatever fits one
        in-memory load.
    cache_answers:
        Memoize answered ranks (bounded, charged to the resident lease)
        so repeats cost zero I/O.
    """

    def __init__(
        self,
        machine: "Machine",
        file: EMFile,
        k: int | None = None,
        cache_answers: bool = True,
    ) -> None:
        n = len(file)
        self._machine = machine
        self._root = _LazyNode(file, owned=False, size=n)
        self._fanout = max_distribution_fanout(machine)
        if k is None:
            leaf = machine.load_limit
        else:
            if k < 1:
                raise SpecError("need k >= 1")
            leaf = max(machine.B, -(-n // int(k)))
        self._leaf_target = max(machine.B, leaf)
        self._cache: dict[int, np.void] | None = {} if cache_answers else None
        self._cache_cap = max(machine.B, machine.M // 8)
        self._resident = machine.memory.lease(0, "svc-lazy-resident")
        self._resident_records = 0
        self._closed = False
        self.stats = {"refinements": 0, "leaf_loads": 0, "cache_hits": 0}
        # Telemetry: bound to the ambient registry at construction; all
        # bookkeeping is plain Python over lifetime counters the model
        # already maintains, so no EM charge ever flows through here.
        metrics = self._metrics = current_registry()
        self._m_query_io = metrics.histogram(
            "svc_query_io",
            "per-query attributed simulated I/O (block transfers)",
            labels=("engine",),
        ).labels(engine="lazy")
        self._m_depth = metrics.histogram(
            "svc_descend_depth",
            "pivot-tree descent depth per uncached query group",
        )
        lookups = metrics.counter(
            "svc_cache_lookups",
            "answer-cache lookups by result",
            labels=("result",),
        )
        self._m_cache_hit = lookups.labels(result="hit")
        self._m_cache_miss = lookups.labels(result="miss")
        self._m_refinements = metrics.counter(
            "svc_refinements", "lazy pivot-tree node refinements"
        )
        self._m_leaf_loads = metrics.counter(
            "svc_leaf_loads", "leaf loads answering uncached queries"
        )

    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        return self._root.size

    @property
    def n_leaves(self) -> int:
        """Current number of leaves in the lazy tree (zero I/O).

        Grows as queries force refinement; the sharded router uses it to
        offset local :meth:`partition_of` answers into a global
        left-to-right leaf order."""
        return self._leaf_count(self._root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, rank: int):
        """The record of 1-based ``rank``, refining lazily on the way."""
        return self.batch_select(np.array([rank], dtype=np.int64))[0]

    def quantile(self, q: float):
        """The record at the ``q``-quantile (nearest rank)."""
        if self.n_live == 0:
            raise SpecError("quantile of an empty index")
        return self.select(rank_of_fraction(self.n_live, q))

    def batch_select(self, ranks) -> np.ndarray:
        """Records at the given 1-based ``ranks`` (aligned; duplicates OK).

        Distinct ranks sharing a leaf share one leaf load; cached ranks
        cost zero I/O.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return empty_records(0)
        n = self.n_live
        if n == 0:
            raise SpecError("select on an empty index")
        if ranks.min() < 1 or ranks.max() > n:
            raise SpecError(f"ranks must lie in [1, {n}]")
        unique, inverse = np.unique(ranks, return_inverse=True)
        dup = np.bincount(inverse, minlength=len(unique))
        out = empty_records(len(unique))
        pending: list[tuple[int, int]] = []
        for pos, rank in enumerate(unique):
            if self._cache is not None and int(rank) in self._cache:
                out[pos] = self._cache[int(rank)]
                self.stats["cache_hits"] += 1
                self._m_cache_hit.inc(int(dup[pos]))
                self._m_query_io.observe(0, count=int(dup[pos]))
            else:
                pending.append((int(rank), pos))
                self._m_cache_miss.inc(int(dup[pos]))
        # Unique ranks are sorted, so the ranks sharing a leaf are
        # consecutive: descend to the first uncovered rank's leaf (the
        # descent refines lazily against the *current* memory headroom),
        # then sweep up every following rank inside that leaf's range.
        i = 0
        while i < len(pending):
            rank, pos = pending[i]
            io_base = self._life_io()
            leaf, local = self._descend(rank)
            below = rank - local  # leaf covers global ranks (below, below+size]
            locals_ = [local]
            positions = [pos]
            j = i + 1
            while j < len(pending) and pending[j][0] <= below + leaf.size:
                locals_.append(pending[j][0] - below)
                positions.append(pending[j][1])
                j += 1
            answers = self._leaf_select(leaf, np.array(locals_, dtype=np.int64))
            for p, rec in zip(positions, answers):
                out[p] = rec
                if (
                    self._cache is not None
                    and len(self._cache) < self._cache_cap
                ):
                    self._cache[int(unique[p])] = rec.copy()
            self._sync_resident()
            # Attribute this group's I/O evenly across the queries it
            # served (duplicates included): observations sum back to the
            # exact lifetime delta, so the histogram conserves totals.
            served = int(sum(dup[p] for p in positions))
            spent = self._life_io() - io_base
            self._m_query_io.observe(spent / served, count=served)
            i = j
        return out[inverse]

    def range_count(self, lo_key: int, hi_key: int) -> int:
        """Number of elements with key in ``(lo_key, hi_key]``.

        Fully covered subtrees are counted from node sizes; partially
        covered leaves are scanned (streaming, no refinement forced).
        """
        if hi_key < lo_key:
            raise SpecError("empty range: hi_key < lo_key")
        if self.n_live == 0:
            return 0
        lo_c = composite_of(lo_key, UID_MAX)
        hi_c = composite_of(hi_key, UID_MAX)
        with self._machine.phase("svc-range"):
            return self._count(self._root, lo_c, hi_c, None, None)

    def partition_of(self, key: int) -> int:
        """Index (in left-to-right leaf order) of the current leaf whose
        range contains ``key`` — zero I/O, no refinement."""
        if self._closed:
            raise SpecError("partition_of on a closed index")
        c = composite_of(key, 0)
        node = self._root
        leaves_left = 0
        while node.children is not None:
            i = int(np.searchsorted(node.pivots, c, side="left"))
            cmp_search(self._machine, 1, max(1, len(node.pivots)))
            for child in node.children[:i]:
                leaves_left += self._leaf_count(child)
            node = node.children[i]
        return leaves_left

    # ------------------------------------------------------------------
    # Tree mechanics
    # ------------------------------------------------------------------
    def _descend(self, rank: int) -> tuple[_LazyNode, int]:
        """Walk ``rank`` down to a small-enough leaf, refining as needed."""
        m = self._machine
        node = self._root
        local = rank
        depth = 0
        while True:
            if node.children is None:
                if node.size > self._leaf_limit():
                    self._refine(node)
                    continue
                self._m_depth.observe(depth)
                return node, local
            i = int(np.searchsorted(node.cum, local, side="left"))
            cmp_search(m, 1, max(1, len(node.cum)))
            if i > 0:
                local -= int(node.cum[i - 1])
            node = node.children[i]
            depth += 1

    def _leaf_limit(self) -> int:
        """A leaf must satisfy the target *and* fit in memory right now.

        One block of slack covers the block-rounding of the load buffer
        (a leaf is read in whole blocks, so its footprint can exceed its
        record count by up to ``B - 1``).  Cached answers count as free
        headroom — they are evicted on demand by :meth:`_make_room` —
        otherwise a full cache would shrink the effective leaf size,
        forcing re-refinement of already-fine leaves whose metadata
        shrinks it further (a feedback spiral down to deadlock).
        """
        m = self._machine
        headroom = m.load_limit + self._evictable() - m.B
        return max(m.B, min(self._leaf_target, headroom))

    def _evictable(self) -> int:
        return len(self._cache) if self._cache else 0

    def _make_room(self, needed: int) -> None:
        """Evict cached answers (oldest first) until ``needed`` records
        of machine memory are available (or the cache is empty).

        The cache is a pure optimization charged to the resident lease;
        correctness work — refinement passes, leaf loads — reclaims it
        under memory pressure.
        """
        cache = self._cache
        if not cache:
            return
        short = needed - self._machine.memory.available
        if short <= 0:
            return
        for key in list(cache.keys())[: min(len(cache), short)]:
            del cache[key]
        self._sync_resident()

    def _refine(self, node: _LazyNode) -> None:
        """Split one oversized leaf: sample pivots, distribute once."""
        m = self._machine
        self._make_room(
            min(node.file.num_blocks + self._fanout + 2, m.M // m.B) * m.B
        )
        with m.phase("svc-refine"):
            want = min(
                self._fanout - 1, max(1, -(-node.size // self._leaf_target) - 1)
            )
            pivots = approx_quantile_pivots(m, node.file, want)
            comps = composite(pivots)
            if len(comps) > 1:
                keep = np.concatenate(([True], np.diff(comps) > 0))
                pivots = pivots[keep]
            if len(pivots) == 0:
                raise AssertionError(
                    "refinement found no pivots for a node of "
                    f"{node.size} records"
                )
            children = distribute_by_pivots(m, node.file, pivots, "svc-refine")
        node.children = [
            _LazyNode(f, owned=True, size=len(f)) for f in children
        ]
        node.pivots = composite(pivots).copy()
        node.cum = np.cumsum([c.size for c in node.children]).astype(np.int64)
        if node.owned:
            node.file.free()
        node.file = None
        node.owned = False
        # Resident charge for the refinement's routing metadata: f-1
        # pivot composites plus f child sizes, one int64 each — a record
        # is three int64s, so charge (2f-1)/3 records, rounded up.
        self._resident_records += -(-(2 * len(node.children) - 1) // 3)
        self.stats["refinements"] += 1
        self._m_refinements.inc()
        self._sync_resident()

    def _leaf_select(self, leaf: _LazyNode, local_ranks: np.ndarray) -> np.ndarray:
        """Load one leaf and answer all its local ranks in memory."""
        m = self._machine
        with m.phase("svc-leaf"):
            footprint = leaf.file.num_blocks * m.B
            self._make_room(footprint)
            with m.memory.lease(footprint, "svc-leaf-load"):
                recs = leaf.file.read_range(0, leaf.file.num_blocks)
                self.stats["leaf_loads"] += 1
                self._m_leaf_loads.inc()
                return select_at_ranks(m, recs, local_ranks)

    def _count(self, node, lo_c, hi_c, node_lo, node_hi) -> int:
        """Elements of ``node`` with composite in ``(lo_c, hi_c]``.

        ``node_lo``/``node_hi`` bound the node's composite range
        (``None`` = unbounded); fully inside → node size, disjoint → 0,
        partial leaf → streaming scan.
        """
        m = self._machine
        if node_hi is not None and node_hi <= lo_c:
            return 0
        if node_lo is not None and node_lo >= hi_c:
            return 0
        fully_inside = (
            node_lo is not None
            and node_lo >= lo_c
            and node_hi is not None
            and node_hi <= hi_c
        )
        if fully_inside:
            return node.size
        if node.children is None:
            count = 0
            with BlockReader(node.file, "svc-range-scan") as reader:
                for block in reader:
                    cmp_linear(m, 2 * len(block))
                    comps = composite(block)
                    count += int(((comps > lo_c) & (comps <= hi_c)).sum())
            return count
        total = 0
        bounds = [node_lo, *[int(p) for p in node.pivots], node_hi]
        for i, child in enumerate(node.children):
            total += self._count(child, lo_c, hi_c, bounds[i], bounds[i + 1])
        return total

    def _leaf_count(self, node: _LazyNode) -> int:
        if node.children is None:
            return 1
        return sum(self._leaf_count(c) for c in node.children)

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    def _life_io(self) -> int:
        """Lifetime I/O total — the metrics attribution baseline.

        Lifetime counters are public and survive ``reset_counters``, so
        reading them here charges nothing to the model (same contract
        the tracer's conservation check relies on).
        """
        life = self._machine.disk.lifetime
        return life.reads + life.writes

    def _sync_resident(self) -> None:
        total = self._resident_records
        if self._cache is not None:
            total += len(self._cache)
        self._resident.resize(total)

    def abandon(self) -> None:
        """Drop the tree without freeing disk (simulated process death).

        The lazy engine is read-only: its durable state *is* the input
        file, which survives on disk untouched.  After a crash a new
        engine over the same file answers identically (refinement
        copies owned by the dead tree become unreachable blocks — the
        documented cost of crashing a cache).
        """
        if self._closed:
            return
        self._root = _LazyNode(None, owned=False, size=0)
        self._cache = None
        if not self._resident.released:
            self._resident.release()
        self._closed = True

    def close(self) -> None:
        """Free every owned tree file and release the resident lease."""
        if self._closed:
            return

        def _free(node: _LazyNode) -> None:
            if node.children is not None:
                for child in node.children:
                    _free(child)
            if node.file is not None and node.owned:
                node.file.free()
            node.file = None
            node.children = None

        _free(self._root)
        self._cache = None
        if not self._resident.released:
            self._resident.release()
        self._closed = True

    def __enter__(self) -> "LazyPartitionIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Render the paper's Table 1 for concrete parameters.

Table 1 summarizes six bounds symbolically; :func:`table1_rows` evaluates
every cell for a user's ``(N, K, a, b, M, B)`` so the trade-offs become
concrete numbers ("with these parameters, right-grounded splitters cost
~37 I/O-units against a 1,536-unit scan").  Used by ``repro bounds``.
"""

from __future__ import annotations

from ..analysis.report import render_table
from .formulas import (
    partition_left_bound,
    partition_right_lower,
    partition_right_upper,
    partition_two_sided_lower,
    partition_two_sided_upper,
    scan_io,
    sort_io,
    splitters_left_bound,
    splitters_right_bound,
    splitters_two_sided_bound,
)

__all__ = ["table1_rows", "render_table1"]


def table1_rows(
    n: int, k: int, a: int, bb: int, m: int, b: int
) -> list[tuple[str, str, float, float]]:
    """Evaluate every Table 1 cell: (problem, grounding, lower, upper).

    Θ-rows repeat the same value in both columns.  ``bb`` is the
    problem's ``b`` (block size is ``b``, following the formulas module).
    """
    sr = splitters_right_bound(n, k, a, m, b)
    sl = splitters_left_bound(n, k, bb, m, b)
    s2 = splitters_two_sided_bound(n, k, a, bb, m, b)
    pl = partition_left_bound(n, k, bb, m, b)
    return [
        ("K-splitters", "right", sr, sr),
        ("K-splitters", "left", sl, sl),
        ("K-splitters", "2-sided", s2, s2),
        (
            "K-partitioning",
            "right",
            partition_right_lower(n, b),
            partition_right_upper(n, k, a, m, b),
        ),
        ("K-partitioning", "left", pl, pl),
        (
            "K-partitioning",
            "2-sided",
            partition_two_sided_lower(n, k, bb, m, b),
            partition_two_sided_upper(n, k, a, bb, m, b),
        ),
    ]


def render_table1(n: int, k: int, a: int, bb: int, m: int, b: int) -> str:
    """Pretty-print Table 1 for the given parameters, plus reference rows."""
    rows: list[tuple] = [
        (problem, grounding, lower, upper)
        for problem, grounding, lower, upper in table1_rows(n, k, a, bb, m, b)
    ]
    body = render_table(
        ["problem", "grounding", "lower bound", "upper bound"],
        rows,
        title=(
            f"Table 1 evaluated at N={n:,} K={k} a={a} b={bb} "
            f"(machine M={m} B={b})"
        ),
    )
    refs = (
        f"reference: one scan N/B = {scan_io(n, b):,.0f}; "
        f"sorting bound = {sort_io(n, m, b):,.0f}"
    )
    return body + "\n" + refs

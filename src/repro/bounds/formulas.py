"""Every bound of Table 1 (and Theorems 1-6) as an evaluatable formula.

Conventions exactly as the paper's §1: ``lg_x(y) = max(1, log_x(y))``,
base 2 when omitted; "linear cost" is ``N/B``.  All functions return
floats — the Θ-constants are unknown, so experiments report the
*ratio* of measured I/O to these formulas and check that it is flat
across sweeps (a Θ-match), rather than comparing absolute values.
"""

from __future__ import annotations

import math

__all__ = [
    "lg",
    "lg_ratio",
    "sort_io",
    "scan_io",
    "selection_io",
    "intermixed_io",
    "multiselect_io",
    "multipartition_io",
    "multipartition_lower",
    "splitters_right_bound",
    "splitters_left_bound",
    "splitters_two_sided_bound",
    "partition_right_lower",
    "partition_right_upper",
    "partition_left_bound",
    "partition_two_sided_lower",
    "partition_two_sided_upper",
    "online_trace_io",
    "service_index_io",
    "service_recovery_io",
    "sharded_service_io",
    "lemma5_condition",
]


def lg(y: float, base: float = 2.0) -> float:
    """The paper's ``lg_x(y) = max(1, log_x(y))``.

    Defined as 1 for ``y <= 1`` (where the plain log would be ≤ 0 or
    undefined), matching the convention that every positive cost term
    contributes at least one "pass".
    """
    if base <= 1:
        raise ValueError("log base must exceed 1")
    if y <= 1:
        return 1.0
    return max(1.0, math.log(y, base))


def lg_ratio(y: float, m: int, b: int) -> float:
    """``lg_{M/B}(y)`` — the model's pass-count function."""
    base = max(2.0, m / b)
    return lg(y, base)


# ----------------------------------------------------------------------
# Substrate costs
# ----------------------------------------------------------------------
def scan_io(n: int, b: int) -> float:
    """Linear cost ``N/B``."""
    return n / b


def sort_io(n: int, m: int, b: int) -> float:
    """``(N/B)·lg_{M/B}(N/B)`` — the sorting bound [1]."""
    return (n / b) * lg_ratio(n / b, m, b)


def selection_io(n: int, b: int) -> float:
    """Single-rank selection: ``O(N/B)``."""
    return n / b


def intermixed_io(d: int, b: int) -> float:
    """Lemma 6: L-intermixed selection is ``O(|D|/B)``, independent of L."""
    return d / b


def multiselect_io(n: int, k: int, m: int, b: int) -> float:
    """Theorem 4: ``Θ((N/B)·lg_{M/B}(K/B))``."""
    return (n / b) * lg_ratio(k / b, m, b)


def multipartition_io(n: int, k: int, m: int, b: int) -> float:
    """Multi-partition upper bound [1]: ``O((N/B)·lg_{M/B} K)``."""
    return (n / b) * lg_ratio(k, m, b)


def multipartition_lower(n: int, k: int, m: int, b: int) -> float:
    """Lemma 5: ``Ω((N/B)·lg_{M/B} min{K, N/B})``
    (valid when :func:`lemma5_condition` holds)."""
    return (n / b) * lg_ratio(min(k, n / b), m, b)


def lemma5_condition(n: int, m: int, b: int) -> bool:
    """The Theorem 3 / Lemma 5 precondition ``lg N <= B·lg(M/B)``."""
    return math.log2(max(2, n)) <= b * math.log2(max(2, m / b))


# ----------------------------------------------------------------------
# Table 1 — K-splitters
# ----------------------------------------------------------------------
def splitters_right_bound(n: int, k: int, a: int, m: int, b: int) -> float:
    """Row 1 (Theorems 1, 5): ``Θ((1 + aK/B)·lg_{M/B}(K/B))``.

    Sublinear whenever ``aK ≪ N`` — the headline phenomenon.
    """
    return (1 + a * k / b) * lg_ratio(k / b, m, b)


def splitters_left_bound(n: int, k: int, bb: int, m: int, b: int) -> float:
    """Row 2 (Theorems 2, 5): ``Θ((N/B)·lg_{M/B}(N/(bB)))``.

    ``bb`` is the problem's upper size bound ``b`` (renamed to avoid the
    clash with the block size ``b``).
    """
    return (n / b) * lg_ratio(n / (bb * b), m, b)


def splitters_two_sided_bound(
    n: int, k: int, a: int, bb: int, m: int, b: int
) -> float:
    """Row 3: ``Θ((1 + aK/B)·lg_{M/B}(K/B) + (N/B)·lg_{M/B}(N/(bB)))``."""
    return splitters_right_bound(n, k, a, m, b) + splitters_left_bound(
        n, k, bb, m, b
    )


# ----------------------------------------------------------------------
# Table 1 — K-partitioning
# ----------------------------------------------------------------------
def partition_right_lower(n: int, b: int) -> float:
    """Row 4 lower (§3): ``Ω(N/B)`` — every element must be seen."""
    return n / b


def partition_right_upper(n: int, k: int, a: int, m: int, b: int) -> float:
    """Row 4 upper (Theorem 6):
    ``O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})``."""
    return n / b + (a * k / b) * lg_ratio(min(k, a * k / b), m, b)


def partition_left_bound(n: int, k: int, bb: int, m: int, b: int) -> float:
    """Row 5 (Theorems 3, 6): ``Θ((N/B)·lg_{M/B} min{N/b, N/B})``."""
    return (n / b) * lg_ratio(min(n / bb, n / b), m, b)


def partition_two_sided_lower(n: int, k: int, bb: int, m: int, b: int) -> float:
    """Row 6 lower: same as the left-grounded bound (K plays no role)."""
    return partition_left_bound(n, k, bb, m, b)


def partition_two_sided_upper(
    n: int, k: int, a: int, bb: int, m: int, b: int
) -> float:
    """Row 6 upper (Theorem 6): ``O((aK/B)·lg_{M/B} min{K, aK/B}
    + (N/B)·lg_{M/B} min{N/b, N/B})``."""
    return (a * k / b) * lg_ratio(min(k, a * k / b), m, b) + partition_left_bound(
        n, k, bb, m, b
    )


# ----------------------------------------------------------------------
# Service-layer cost models (repro.service)
# ----------------------------------------------------------------------
def online_trace_io(n: int, k: int, queries: int, m: int, b: int) -> float:
    """Lazy online multiselection, worst-case total over a trace.

    Refinement work is bounded by fully materializing the K-way pivot
    tree once — Theorem 4's ``(N/B)·lg_{M/B}(K/B)`` — and each query
    additionally loads at most one ``~N/K``-record leaf
    (Barbay–Gupta's amortization: repeats and skew only make the first
    term *smaller*, never larger).
    """
    return multiselect_io(n, k, m, b) + queries * (n / (k * b))


def service_index_io(n: int, k: int, queries: int, m: int, b: int) -> float:
    """Eager partition index: build plus per-query partition loads.

    The build is one two-sided approximate K-partitioning plus a
    splitter-extraction scan (bounded by the sorting cost); each query
    then loads at most one partition of ``<= 2N/K`` records (the
    service's ``slack = 1`` window).
    """
    return sort_io(n, m, b) + scan_io(n, b) + queries * (2.0 * n / (k * b))


def sharded_service_io(
    n: int, k: int, queries: int, shards: int, m: int, b: int,
    batch: int = 64,
) -> float:
    """Coordinator-side cost of the W-sharded service: build + trace.

    The coordinator pays for splitter sampling (one scan), the
    distribution pass (one scan plus the *charged sends* of every
    record to its shard — communication is block I/O, ``~N/B`` writes),
    and per-flush communication: each of the ``ceil(Q/batch)``
    frontend flushes exchanges a request/reply pair with up to ``W``
    shards (an envelope block each way), with the answer payloads
    adding ``~Q/B`` read blocks in total.  Control traffic (ingest
    acks, seal, shutdown) is ``O(W)`` round trips.  Per-shard engine
    work happens on the workers' own counters and is priced by
    :func:`online_trace_io` at shard scale, not here.
    """
    flushes = -(-queries // batch)
    return (
        3.0 * scan_io(n, b)
        + 2.0 * shards * flushes
        + queries / b
        + 8.0 * shards
    )


def service_recovery_io(
    n: int, k: int, updates: int, queries: int, m: int, b: int
) -> float:
    """Durable service crash recovery, total over the scenario.

    Recovery reads one manifest block, scans the metadata snapshot
    (``O(K + N/B)`` words packed three per record — segment descriptors
    dominate, one id per block of live data), scans the live WAL region
    (``O(1 + updates/(B-1))`` blocks), replays at most ``updates``
    logged operations (appends route at ``1/B`` amortized writes each;
    each delete scans one ``<= 2N/K``-record partition), re-snapshots
    the recovered state, and finally answers the verification trace at
    one partition load per query.  Replay can also trip rebalancing and
    a drift rebuild, bounded by one sort-cost pass over the live
    records.
    """
    part = 2.0 * n / (k * b)  # one partition load at slack = 1
    meta = 2.0 * (1 + k + (n / b) / b) + updates / b  # manifest + snapshot x2
    wal = 1 + updates / max(1, b - 1)
    replay = updates / b + updates * part
    rebuild = sort_io(n, m, b) + scan_io(n, b)
    return meta + wal + replay + rebuild + queries * part

"""The combinatorial counting behind the paper's lower bounds.

Lower bounds cannot be "run", but their information-theoretic skeletons
are exact computations we can evaluate and test:

* the hard permutation family of §2.1 has ``|Π_hard| = ((N/B)!)^B``
  members (:func:`pi_hard_log2`);
* a comparison-based EM algorithm performing ``H`` I/Os distinguishes at
  most ``C(M,B)^H`` of them (Lemma 1), giving
  :func:`decision_tree_min_ios`;
* precise K-partitioning has ``N!/((N/K)!)^K`` distinguishable outputs
  (Lemma 8), and Lemma 7 caps machine states by
  ``(2·N·lgN·C(M,B))^H``, giving :func:`lemma5_min_ios` — the
  ``Ω((N/B)·lg_{M/B} K)`` bound when ``lg N ≤ B·lg(M/B)``;
* Dilworth-style width counting (Lemma 3):
  ``lg|CP(≺,X)| ≤ n·lg w + O(lg n)`` (:func:`chain_cover_log2_upper`).

Everything is computed with log-gamma so it stays exact-enough at any
scale, and the test suite cross-checks small instances against brute
force enumeration.
"""

from __future__ import annotations

import math
from itertools import permutations

from scipy.special import gammaln

__all__ = [
    "log2_factorial",
    "log2_binomial",
    "log2_multinomial_equal",
    "pi_hard_log2",
    "decision_tree_min_ios",
    "precise_partition_outcomes_log2",
    "lemma5_min_ios",
    "ordered_groups_log2",
    "fact5_subset_log2_upper",
    "chain_cover_log2_upper",
    "count_linear_extensions_bruteforce",
    "theorem1_min_ios",
    "theorem1_min_ios_exact",
    "theorem2_min_ios_exact",
    "theorem2_min_ios",
]

_LOG2_E = math.log2(math.e)


def log2_factorial(n: int) -> float:
    """``log2(n!)`` via log-gamma (exact to double precision)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return float(gammaln(n + 1)) * _LOG2_E


def log2_binomial(n: int, k: int) -> float:
    """``log2(C(n, k))``."""
    if not 0 <= k <= n:
        return float("-inf")
    return log2_factorial(n) - log2_factorial(k) - log2_factorial(n - k)


def log2_multinomial_equal(n: int, k: int) -> float:
    """``log2(N! / ((N/K)!)^K)`` — requires ``K | N``."""
    if n % k != 0:
        raise ValueError("K must divide N")
    return log2_factorial(n) - k * log2_factorial(n // k)


def pi_hard_log2(n: int, b: int) -> float:
    """``log2 |Π_hard| = B · log2((N/B)!)`` (§2.1); requires ``B | N``."""
    if n % b != 0:
        raise ValueError("B must divide N")
    return b * log2_factorial(n // b)


def decision_tree_min_ios(log2_outcomes: float, m: int, b: int) -> float:
    """Minimum I/Os for a comparison-based EM algorithm that must
    distinguish ``2^log2_outcomes`` outcomes: each I/O multiplies the
    reachable leaf count by at most ``C(M, B)`` (Lemma 1), so
    ``H ≥ log2_outcomes / log2 C(M,B)``."""
    per_io = log2_binomial(m, b)
    if per_io <= 0:
        raise ValueError("need M > B for a meaningful decision tree")
    return log2_outcomes / per_io


def precise_partition_outcomes_log2(n: int, k: int) -> float:
    """Lemma 8: precise K-partitioning has ``N!/((N/K)!)^K`` outcomes."""
    return log2_multinomial_equal(n, k)


def lemma5_min_ios(n: int, k: int, m: int, b: int) -> float:
    """Lemma 5's machine-state count: ``H ≥ N·lg K-ish /
    (lg(2N lg N) + lg C(M,B))``.

    Combines Lemmas 7 and 8 exactly:
    ``(2·N·lgN·C(M,B))^H ≥ N!/((N/K)!)^K``.
    """
    outcomes = precise_partition_outcomes_log2(n, k)
    per_io = math.log2(2 * n * max(1.0, math.log2(n))) + log2_binomial(m, b)
    return outcomes / per_io


def theorem1_min_ios(n: int, k: int, a: int, m: int, b: int) -> float:
    """Theorem 1's counting core, evaluated exactly.

    From Lemmas 1 and 2: ``H·lg C(M,B) ≥ aK·lg(K/B) - β·K·lg a``.  The
    hidden β is not recoverable from the paper, so we report the
    *dominant term* ``aK·lg(K/B) / lg C(M,B)`` (valid up to the paper's
    own constants); callers treat it as a shape, not an absolute.
    """
    if k <= b:
        return max(1.0, a * k / b)  # the small-K seen-elements argument
    dominant = a * k * math.log2(k / b)
    return max(1.0, a * k / b, dominant / log2_binomial(m, b))


def theorem2_min_ios(n: int, k: int, bb: int, m: int, b: int) -> float:
    """Theorem 2's counting core: ``H·lg C(M,B) ≥ |T|·lg(|T|/(bB)) -
    β|T|`` with ``|T| ≥ N/2``; dominant term reported (see
    :func:`theorem1_min_ios` for the convention)."""
    t = n / 2
    if t / (bb * b) <= 1:
        return n / (2 * b)  # the seen-elements argument: Ω(N/B)
    dominant = t * math.log2(t / (bb * b))
    return max(n / (2 * b), dominant / log2_binomial(m, b))


def theorem1_min_ios_exact(n: int, k: int, a: int, m: int, b: int) -> float:
    """Theorem 1's counting chain evaluated *exactly* (no hidden β).

    Appendix "Simplification of (1)" ends with
    ``lg|CP| ≤ B·lg((N/B)!) + K·lg(a!) - aK·lg(aK/B)`` (the step before
    Stirling).  With Lemma 1
    (``lg|Π| ≥ B·lg((N/B)!) - H·lg C(M,B)``) this gives the
    unconditional bound

        ``H ≥ (aK·lg(aK/B) - K·lg(a!)) / lg C(M,B)``,

    combined with the seen-elements argument ``H ≥ aK/B``.  Every
    quantity is computed with log-gamma, so the returned value is a hard
    lower bound any comparison-based algorithm must satisfy — the
    experiments check measured I/O against it directly.
    """
    if a < 1 or k < 1:
        return 0.0
    seen = a * k / b
    if a * k <= b:
        return max(1.0, seen)
    information = a * k * math.log2(a * k / b) - k * log2_factorial(a)
    return max(1.0, seen, information / log2_binomial(m, b))


def theorem2_min_ios_exact(n: int, k: int, bb: int, m: int, b: int) -> float:
    """Theorem 2's counting chain evaluated exactly.

    From Lemma 4's derivation before Stirling:
    ``lg|CP| ≤ B·lg((N/B)!) - Σ_i (lg(|T_i|!) - lg|CP(T_i)|)`` with
    ``lg|CP(T_i)| ≤`` the explicit chain-cover bound of Lemma 3 at width
    ``b``.  Taking the conservative ``|T_i| = N/B - K`` (every splitter
    could sit in the same stratum) and combining with Lemma 1:

        ``H ≥ B·(lg(t!) - chaincover(t, b)) / lg C(M,B)``, ``t = N/B - K``,

    plus the seen-elements argument ``H ≥ N/(2B)`` when ``b ≤ N/2``.
    """
    t = n // b - k
    if t <= 1:
        return max(1.0, n / (2 * b) if bb <= n / 2 else 1.0)
    per_stratum = log2_factorial(t) - chain_cover_log2_upper(t, min(bb, t))
    information = b * per_stratum
    seen = n / (2 * b) if bb <= n / 2 else 1.0
    return max(1.0, seen, information / log2_binomial(m, b))


def ordered_groups_log2(group_sizes: list[int]) -> float:
    """``log2 |CP(≺, X)|`` for the "ordered groups" partial order.

    The order underlying Fact 4 and the Lemma 2 structure: ``X`` is split
    into groups ``A_1, ..., A_K`` with every element of ``A_i`` below
    every element of ``A_j`` for ``i < j`` and no order inside a group.
    By Fact 4 the consistent permutations factor per group:
    ``|CP| = Π |A_i|!`` — exactly computable, and cross-checked against
    brute force in the tests.
    """
    total = 0.0
    for g in group_sizes:
        if g < 0:
            raise ValueError("group sizes must be non-negative")
        total += log2_factorial(g)
    return total


def fact5_subset_log2_upper(n: int, k: int, cp_y_log2: float, cp_rest_log2: float) -> float:
    """Fact 5's inequality as a formula:
    ``|CP(≺, X)| ≤ |CP(≺, Y)|·|CP(≺, X\\Y)|·C(|X|, |Y|)`` for any
    ``Y ⊆ X`` with ``|Y| = k``.  Returns the log2 of the right-hand side.
    """
    return cp_y_log2 + cp_rest_log2 + log2_binomial(n, k)


def chain_cover_log2_upper(n: int, width: int) -> float:
    """Lemma 3: a partial order of width ``w`` on ``n`` elements has at
    most ``2^(n·lg w + O(lg n))`` linear extensions.  We return the
    explicit form of the paper's derivation,
    ``log2(n!) - w·log2((n/w)!)`` (≤ n·lg w + O(lg n)), for a balanced
    chain cover — the tightest instantiation of the argument."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if width >= n:
        return log2_factorial(n)
    base, extra = divmod(n, width)
    return (
        log2_factorial(n)
        - extra * log2_factorial(base + 1)
        - (width - extra) * log2_factorial(base)
    )


def count_linear_extensions_bruteforce(n: int, pairs: list[tuple[int, int]]) -> int:
    """Count permutations of ``range(n)`` consistent with the partial
    order given as ``(x, y)`` pairs meaning ``x ≺ y``.

    Exponential — for cross-checking the counting lemmas on tiny
    instances only (``n ≤ 9``).
    """
    if n > 9:
        raise ValueError("brute force capped at n = 9")
    count = 0
    for perm in permutations(range(n)):
        pos = {v: i for i, v in enumerate(perm)}
        if all(pos[x] < pos[y] for x, y in pairs):
            count += 1
    return count

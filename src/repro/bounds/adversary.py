"""The Theorem 1 adversary, operational.

The simple case of Theorem 1's proof (§2.1) argues: if an algorithm
terminates having *seen* fewer than ``aK`` elements, some induced
partition contains fewer than ``a`` seen elements — and since the unseen
elements were never compared, an adversary may assign them ranks that
keep every one of them out of that partition, making its true size
``< a`` and the output wrong.

:func:`fool_right_grounded` performs that construction concretely: given
the original records, the set of record indices the algorithm read, and
the splitters it output, it either

* returns a *fooling reassignment* — new keys for the unseen records
  (order among seen records untouched, so every comparison the algorithm
  made still holds) under which the output violates ``a`` — or
* returns ``None``, a certificate that every partition already holds at
  least ``a`` seen elements, so no adversary can fool this execution.

The §5.1 right-grounded algorithm is *immune by construction* (each
partition contains ``a`` elements of the prefix ``S'`` it read); the
tests verify that, and verify that a lazy strawman algorithm is fooled.
"""

from __future__ import annotations

import numpy as np

from ..em.records import composite, make_records

__all__ = ["fool_right_grounded"]


def fool_right_grounded(
    records: np.ndarray,
    seen_indices,
    splitters: np.ndarray,
    a: int,
) -> np.ndarray | None:
    """Try to fool a right-grounded K-splitters execution.

    Parameters
    ----------
    records:
        The original input records.
    seen_indices:
        Indices (into ``records``) of the elements the algorithm read.
    splitters:
        The K-1 splitter records the algorithm output.
    a:
        The instance's lower bound on partition sizes.

    Returns
    -------
    A new record array (same uids, reassigned keys for unseen records)
    on which the splitters are invalid — or ``None`` when every induced
    partition contains at least ``a`` seen elements (fooling impossible
    for this execution).
    """
    n = len(records)
    seen = np.zeros(n, dtype=bool)
    seen[np.asarray(list(seen_indices), dtype=np.int64)] = True
    # A comparison-based algorithm can only output elements it has read:
    # an execution whose splitters include unseen records is invalid.
    seen_uids = set(records["uid"][seen].tolist())
    if not set(splitters["uid"].tolist()) <= seen_uids:
        raise ValueError(
            "invalid execution: a splitter record was never read"
        )
    sp_comps = np.sort(composite(splitters))
    k = len(sp_comps) + 1

    # Seen elements per induced partition.
    seen_comps = np.sort(composite(records[seen]))
    idx = np.searchsorted(seen_comps, sp_comps, side="right")
    seen_sizes = np.diff(np.concatenate(([0], idx, [len(seen_comps)])))

    deficient = [j for j in range(k) if seen_sizes[j] < a]
    if not deficient:
        return None  # certificate: no adversary can fool this run

    target = deficient[0]
    # Reassign every unseen record a key that lands OUTSIDE partition
    # `target`.  Spread the key space by (n+1) so fresh keys fit between
    # the seen ones without disturbing their relative order.
    scale = n + 1
    new_keys = records["key"].astype(np.int64) * scale
    sp_keys = np.sort(splitters["key"].astype(np.int64)) * scale

    if target == k - 1:
        # Last partition (s_{K-1}, +inf): send unseen *below* s_1 —
        # they land in partition 0 (or wherever, as long as not beyond
        # the last splitter).
        dump_key = sp_keys[0] - 1
    else:
        # Send everything beyond the last splitter.
        dump_key = sp_keys[-1] + 1
    new_keys[~seen] = dump_key

    fooled = make_records(
        np.clip(new_keys, -(2**31), 2**31 - 1),
        uids=records["uid"].copy(),
        grps=records["grp"].copy(),
    )
    # Sanity: the construction really does break the instance.
    fooled_comps = np.sort(composite(fooled[np.argsort(fooled["uid"])]))
    # Splitter records keep their (scaled) keys — recompute their comps.
    sp_uid = splitters["uid"]
    uid_to_pos = {int(u): i for i, u in enumerate(records["uid"])}
    sp_new = fooled[[uid_to_pos[int(u)] for u in sp_uid]]
    sp_new_comps = np.sort(composite(sp_new))
    idx = np.searchsorted(fooled_comps, sp_new_comps, side="right")
    sizes = np.diff(np.concatenate(([0], idx, [n])))
    if sizes.min() >= a:  # pragma: no cover - the construction guarantees this
        raise AssertionError("adversary construction failed to fool")
    return fooled

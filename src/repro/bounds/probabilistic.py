"""Sampling-size calculus for randomized splitters.

The deterministic algorithms buy *worst-case* bucket-size guarantees
with the sampling-cascade machinery; the standard practical alternative
draws a uniform random sample and takes its quantiles, with a
probabilistic guarantee.  This module does the probability bookkeeping:

Given a uniform sample of size ``s`` from ``N`` elements, the rank of
the sample's ``q``-quantile concentrates around ``qN`` with deviation
``O(N·sqrt(log(1/δ)/s))`` (Chernoff/Hoeffding).  To land every one of
``K`` buckets inside ``[a, b]`` with probability ``≥ 1 − δ``, it
suffices that the rank error ``ε·N`` satisfies
``ε ≤ min(N/K − a, b − N/K) / (2N)`` per boundary, union-bounded over
the ``K − 1`` boundaries.
"""

from __future__ import annotations

import math

__all__ = ["rank_error_for_sample", "sample_size_for_window"]


def rank_error_for_sample(n: int, s: int, delta: float, k: int) -> float:
    """Additive rank error ``εN`` of all ``K-1`` sample quantiles
    simultaneously, with failure probability ≤ ``delta``.

    Hoeffding: a single empirical quantile deviates by more than ``ε``
    (as a fraction) with probability ``≤ 2·exp(-2·s·ε²)``; union bound
    over ``K-1`` boundaries.
    """
    if s < 1 or n < 1:
        raise ValueError("need n, s >= 1")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    eps = math.sqrt(math.log(2 * max(1, k - 1) / delta) / (2 * s))
    return eps * n


def sample_size_for_window(
    n: int, k: int, a: int, b: int, delta: float
) -> int:
    """Smallest sample size whose quantiles land every bucket in
    ``[a, b]`` with probability at least ``1 − delta``.

    The window must have slack on both sides (``a < N/K < b``);
    perfectly tight windows (``a = b = N/K``) cannot be achieved by
    sampling and raise ``ValueError``.
    """
    per = n / k
    slack = min(per - a, b - per)
    if slack <= 0:
        raise ValueError(
            "sampling needs slack: require a < N/K < b strictly"
        )
    # Need rank error <= slack/2 at every boundary (each bucket is
    # bounded by two boundaries, each off by at most the rank error).
    eps = slack / (2 * n)
    s = math.log(2 * max(1, k - 1) / delta) / (2 * eps * eps)
    return max(k, int(math.ceil(s)))

"""The coordinator: splitter-based sharding and merged query routing.

:func:`build_sharded_service` samples a top-level splitter set from the
input (phase ``"shard-split"``), carves the file into ``W`` key ranges,
and streams each range to its shard worker over the charged transport
(phase ``"shard-ingest"``).  The resulting :class:`ShardRouter` speaks
the same engine protocol as
:class:`~repro.service.online.LazyPartitionIndex` — ``n_live``,
``batch_select``, ``range_count``, ``partition_of`` — so the existing
:class:`~repro.service.frontend.QueryFrontend` sits in front of it
unchanged and the single-machine and sharded paths share all the
query/update/flush code in ``service/``.

Merging per-shard partial answers at the coordinator:

* **selects** — global ranks route to shards through the cumulative
  shard sizes (rank offsets); local answers reassemble in query order.
  Select and range-count answers are determined by the input multiset,
  so they are *element-identical* to the single-machine engine (the
  differential tests assert this).
* **bucket counts** — ``range_count`` sums the per-shard counts.
* **splitter candidates** — :meth:`ShardRouter.splitter_candidates`
  gathers per-shard approximate quantiles and merges them into one
  global candidate set.
* ``partition_of`` — local leaf index plus the leaf counts of the
  shards to the left.  Leaf *structure* depends on refinement history,
  so this (alone) is not asserted identical to the single-machine tree.

Every reply's worker-side I/O envelope feeds the ``svc_shard_io``
per-shard histogram, which works identically for in-process and
process workers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..alg.sampling import approx_quantile_pivots, pick_pivots_from_sorted
from ..em.comparisons import cmp_search, cmp_sort
from ..em.errors import SpecError
from ..em.records import composite, composite_of, empty_records
from ..em.streams import scan_chunks
from ..obs.metrics import current_registry
from .transport import Message, ShardError
from .worker import make_pool

if TYPE_CHECKING:  # pragma: no cover
    from ..em.file import EMFile
    from ..em.machine import Machine

__all__ = ["ShardRouter", "build_sharded_service"]


class ShardRouter:
    """Routes engine-protocol queries across shard workers and merges
    the partial answers; construct via :func:`build_sharded_service`."""

    def __init__(self, machine: "Machine", pool, splitters: np.ndarray, sizes) -> None:
        self._machine = machine
        self._pool = pool
        self._splitters = np.asarray(splitters, dtype=np.int64)
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._cum = np.cumsum(self._sizes)
        # Coordinator-resident routing state: W-1 splitter composites
        # plus W cumulative sizes, 2W-1 words = ceil((2W-1)/3) records.
        self._resident = machine.memory.lease(
            -(-(2 * len(self._sizes) - 1) // 3), "shard-router-resident"
        )
        self._closed = False
        registry = current_registry()
        self._metrics = registry
        self._m_shard_io = registry.histogram(
            "svc_shard_io",
            "per-request worker-side I/O (reads+writes), by shard",
            labels=("shard",),
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def nshards(self) -> int:
        return int(len(self._sizes))

    @property
    def shard_sizes(self) -> np.ndarray:
        """Records per shard, left to right (a copy)."""
        return self._sizes.copy()

    @property
    def splitters(self) -> np.ndarray:
        """The top-level splitter composites (a copy)."""
        return self._splitters.copy()

    def _request(self, shard: int, kind: str, payload: object = None) -> Message:
        reply = self._pool.request(shard, kind, payload)
        if reply.io is not None:
            reads, writes, _ = reply.io
            self._m_shard_io.labels(shard=shard).observe(int(reads) + int(writes))
        return reply

    # ------------------------------------------------------------------
    # Engine protocol (QueryFrontend sits directly on these)
    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        return int(self._cum[-1])

    def select(self, rank: int):
        """The record of 1-based global ``rank``."""
        return self.batch_select(np.array([rank], dtype=np.int64))[0]

    def batch_select(self, ranks) -> np.ndarray:
        """Records at the given 1-based global ``ranks`` (aligned).

        Ranks route to shards by rank offset; each shard answers its
        local batch and the coordinator reassembles in query order.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return empty_records(0)
        n = self.n_live
        if n == 0:
            raise SpecError("select on an empty index")
        if ranks.min() < 1 or ranks.max() > n:
            raise SpecError(f"ranks must lie in [1, {n}]")
        with self._machine.phase("shard-route"):
            shard_of = np.searchsorted(self._cum, ranks, side="left")
            cmp_search(self._machine, len(ranks), self.nshards)
        base = self._cum - self._sizes
        out = empty_records(len(ranks))
        for shard in np.unique(shard_of):
            mask = shard_of == shard
            local = ranks[mask] - base[shard]
            reply = self._request(int(shard), "select", local)
            out[mask] = reply.payload
        return out

    def range_count(self, lo_key: int, hi_key: int) -> int:
        """Number of elements with key in ``(lo_key, hi_key]`` — the sum
        of the per-shard bucket counts."""
        if hi_key < lo_key:
            raise SpecError("empty range: hi_key < lo_key")
        total = 0
        for shard in range(self.nshards):
            if self._sizes[shard] == 0:
                continue
            reply = self._request(shard, "range_count", (int(lo_key), int(hi_key)))
            total += int(reply.payload)
        return total

    def partition_of(self, key: int) -> int:
        """Global left-to-right leaf index of the leaf containing ``key``:
        the owning shard's local answer offset by the leaf counts of the
        shards to its left.  Structure-dependent (refinement history),
        unlike selects and range counts."""
        c = composite_of(int(key), 0)
        with self._machine.phase("shard-route"):
            shard = int(np.searchsorted(self._splitters, c, side="left"))
            cmp_search(self._machine, 1, max(1, len(self._splitters)))
        leaves_left = 0
        for left in range(shard):
            if self._sizes[left] == 0:
                continue
            leaves_left += int(self._request(left, "nleaves").payload)
        if self._sizes[shard] == 0:
            return leaves_left
        return leaves_left + int(self._request(shard, "part", int(key)).payload)

    # ------------------------------------------------------------------
    # Merged partial answers beyond the engine protocol
    # ------------------------------------------------------------------
    def splitter_candidates(self, n_pivots: int) -> np.ndarray:
        """A merged global splitter-candidate set: every shard samples
        ``n_pivots`` approximate quantiles of its range, the coordinator
        sorts the union and picks ``n_pivots`` evenly."""
        if n_pivots < 1:
            raise SpecError("need n_pivots >= 1")
        parts = []
        for shard in range(self.nshards):
            if self._sizes[shard] == 0:
                continue
            candidates = self._request(shard, "pivots", int(n_pivots)).payload
            if len(candidates):
                parts.append(candidates)
        if not parts:
            return empty_records(0)
        kernel = self._machine.kernel
        merged = kernel.sort_by_composite(kernel.concat(parts))
        cmp_sort(self._machine, len(merged))
        return pick_pivots_from_sorted(merged, min(int(n_pivots), len(merged)))

    def shard_io_stats(self) -> list[dict]:
        """Each worker's live counter snapshot (reads, writes,
        comparisons, lifetime totals, engine stats) — the balance and
        conservation data the benchmark and tests report."""
        return [
            dict(self._request(shard, "io_stats").payload)
            for shard in range(self.nshards)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down every worker and release coordinator routing state."""
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.close()
        finally:
            if not self._resident.released:
                self._resident.release()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_sharded_service(
    machine: "Machine",
    file: "EMFile",
    *,
    shards: int,
    k: int,
    workers: str = "inproc",
    transport: str = "inproc",
    shard_memory: int | None = None,
    shard_block: int | None = None,
) -> ShardRouter:
    """Split ``file`` across ``shards`` workers and return the router.

    The input file is read (never modified or freed): one sampling pass
    picks ``shards - 1`` top-level splitters, then one distribution
    pass streams each key range to its worker over the charged
    transport.  ``k`` is the global leaf-resolution target; each shard
    gets a proportional share (``k_w ~ k * n_w / n``), so per-shard
    leaves match the single-machine engine's ``~n/k`` record target.

    ``shard_memory``/``shard_block`` default to the coordinator's own
    ``M``/``B``; pass ``shard_memory ~ n/W`` for the semi-external
    regime (Akhremtsev–Sanders–Schulz) where each shard holds its
    range mostly in memory.  Workers inherit the coordinator's kernel
    backend and sanitize mode.
    """
    if shards < 1:
        raise SpecError("need at least one shard")
    if k < 1:
        raise SpecError("need k >= 1")
    n = len(file)
    shard_memory = machine.M if shard_memory is None else int(shard_memory)
    shard_block = machine.B if shard_block is None else int(shard_block)

    if shards > 1 and n > 0:
        with machine.phase("shard-split"):
            pivots = approx_quantile_pivots(machine, file, shards - 1)
            comps = composite(pivots)
            # Distribution wants strictly increasing pivot composites;
            # duplicates just mean fewer nonempty key ranges.
            if len(comps) > 1:
                keep = np.concatenate(([True], np.diff(comps) > 0))
                comps = comps[keep]
    else:
        comps = np.empty(0, dtype=np.int64)

    pool = make_pool(
        workers,
        machine,
        shards,
        shard_memory=shard_memory,
        shard_block=shard_block,
        transport=transport,
        kernel=machine.kernel.name,
        sanitize=machine.sanitize,
    )
    sent = [0] * shards
    try:
        kernel = machine.kernel
        with machine.phase("shard-ingest"):
            with scan_chunks(file, machine.load_limit, "shard-ingest-in") as chunks:
                for chunk in chunks:
                    if len(chunk) == 0:
                        continue
                    if len(comps):
                        idx = kernel.bucket_of(chunk, comps)
                        cmp_search(machine, len(chunk), len(comps))
                        groups = kernel.group_by_bucket(chunk, idx)
                    else:
                        groups = [(0, chunk)]
                    for bucket, group in groups:
                        pool.request(bucket, "ingest", group)
                        sent[bucket] += len(group)
        sizes = []
        for shard in range(shards):
            k_w = max(1, round(k * sent[shard] / n)) if n else 1
            sizes.append(int(pool.request(shard, "seal", k_w).payload))
    except BaseException:
        try:
            pool.close()
        except ShardError:
            pass  # a worker already failed; surface the original error
        raise
    if sum(sizes) != n:
        try:
            pool.close()
        except ShardError:
            pass
        raise ShardError(
            f"sharded ingest lost records: sent {n}, sealed {sum(sizes)}"
        )
    return ShardRouter(machine, pool, comps, sizes)

"""Sharded coordinator/worker partition service.

Splits the record file across ``W`` shard machines by a sampled
top-level splitter set, runs the lazy online engine per shard, and
merges partial answers (rank offsets, bucket counts, splitter
candidates) at the coordinator.  Communication is a first-class,
charged resource: every message through a :class:`Transport` costs
block I/O on both endpoints (:mod:`repro.em.wire`) and shows up in
traces, metrics, and the budget gate.  The :class:`ShardRouter`
speaks the single-machine engine protocol, so the existing
:class:`~repro.service.frontend.QueryFrontend` fronts either path
unchanged.
"""

from .router import ShardRouter, build_sharded_service
from .transport import (
    Endpoint,
    InProcTransport,
    Message,
    PipeTransport,
    SerializedTransport,
    ShardError,
    Transport,
    TRANSPORTS,
)
from .worker import (
    InProcessWorkerPool,
    ProcessWorkerPool,
    ShardWorker,
    WORKER_KINDS,
    make_pool,
)

__all__ = [
    "ShardRouter",
    "build_sharded_service",
    "Message",
    "Endpoint",
    "Transport",
    "InProcTransport",
    "SerializedTransport",
    "PipeTransport",
    "TRANSPORTS",
    "ShardError",
    "ShardWorker",
    "InProcessWorkerPool",
    "ProcessWorkerPool",
    "WORKER_KINDS",
    "make_pool",
]

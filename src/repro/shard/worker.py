"""Shard workers and the pools that drive them.

A :class:`ShardWorker` owns one shard outright — its
:class:`~repro.em.machine.Machine`, the shard's record file, and a
:class:`~repro.service.online.LazyPartitionIndex` over it — and is
driven purely by request messages; it never reaches into another
shard's state (emlint rule R7), and nothing outside it reaches into
its own.  The same worker runs in-process today and inside a real
child process behind the same message protocol, mirroring the
experiment runner's serial/parallel split.

Request kinds (coordinator → worker), with reply kinds in parentheses:

============ =============================== ==========================
kind         payload                         reply
============ =============================== ==========================
ingest       record array chunk              ok: records so far
seal         leaf-target ``k``               sealed: shard size ``n``
select       local 1-based rank array        records: record array
range_count  ``(lo_key, hi_key)``            count: int
part         key                             leaf: local leaf index
nleaves      --                              nleaves: current leaf count
pivots       ``n_pivots``                    pivots: candidate records
io_stats     --                              io_stats: counter dict
shutdown     --                              bye
============ =============================== ==========================

Every reply carries the worker's measured ``(reads, writes,
comparisons)`` delta for receiving and handling the request (the
reply's own transmission is charged separately), which the router
feeds into per-shard I/O histograms — identically for in-process and
process workers, since the numbers travel in the message envelope.
A failing handler replies ``error`` with the exception text; pools
surface that as :class:`ShardError` at the coordinator.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

from ..alg.sampling import approx_quantile_pivots
from ..em.machine import Machine
from ..em.records import empty_records
from ..em.streams import BlockWriter
from ..service.online import LazyPartitionIndex
from .transport import (
    TRANSPORTS,
    Message,
    PipeTransport,
    ShardError,
    Transport,
)

__all__ = [
    "ShardWorker",
    "InProcessWorkerPool",
    "ProcessWorkerPool",
    "make_pool",
    "WORKER_KINDS",
]


class ShardWorker:
    """One shard: a private machine, its record file, and a lazy engine."""

    def __init__(
        self,
        shard: int,
        transport: Transport,
        *,
        memory: int,
        block: int,
        kernel: str | None = None,
        sanitize: bool | None = None,
    ) -> None:
        self.shard = int(shard)
        self._machine = Machine(
            memory,
            block,
            kernel=kernel,
            sanitize=sanitize,
            label=f"shard-{shard}",
        )
        self._endpoint = transport.worker_end(self._machine)
        self._writer: BlockWriter | None = None
        self._file = None
        self._engine: LazyPartitionIndex | None = None
        self._done = False

    # ------------------------------------------------------------------
    # Message loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Receive one request, handle it, send the reply.

        Returns ``False`` once a ``shutdown`` has been processed.  All
        handler failures become ``error`` replies rather than
        exceptions: the worker must stay alive to report them.
        """
        with self._machine.measure() as cost:
            message = self._endpoint.recv()
            try:
                kind, payload = self._handle(message)
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                kind, payload = "error", f"{type(exc).__name__}: {exc}"
        self._endpoint.send(
            Message(kind, payload, io=(cost.reads, cost.writes, cost.comparisons))
        )
        return not self._done

    def run(self) -> None:
        """Serve until shutdown (the process-worker main loop)."""
        while self.step():
            pass

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle(self, message: Message) -> tuple[str, object]:
        kind = message.kind
        payload = message.payload
        if kind == "ingest":
            if self._writer is None:
                self._writer = BlockWriter(self._machine, "shard-ingest")
            self._writer.write(payload)
            return "ok", self._writer.records_written
        if kind == "seal":
            if self._writer is None:
                self._writer = BlockWriter(self._machine, "shard-ingest")
            self._file = self._writer.close()
            self._writer = None
            self._engine = LazyPartitionIndex(
                self._machine, self._file, k=max(1, int(payload))
            )
            return "sealed", len(self._file)
        if kind == "io_stats":
            return "io_stats", self._io_stats()
        if kind == "shutdown":
            self._done = True
            self._teardown()
            return "bye", None
        engine = self._engine
        if engine is None:
            raise ShardError(f"shard {self.shard}: {kind!r} before seal")
        if kind == "select":
            ranks = np.asarray(payload, dtype=np.int64)
            return "records", engine.batch_select(ranks)
        if kind == "range_count":
            lo, hi = payload
            return "count", engine.range_count(int(lo), int(hi))
        if kind == "part":
            return "leaf", engine.partition_of(int(payload))
        if kind == "nleaves":
            return "nleaves", engine.n_leaves
        if kind == "pivots":
            n_pivots = int(payload)
            if n_pivots < 1 or len(self._file) == 0:
                return "pivots", empty_records(0)
            return "pivots", approx_quantile_pivots(
                self._machine, self._file, n_pivots
            )
        raise ShardError(f"shard {self.shard}: unknown request kind {kind!r}")

    def _io_stats(self) -> dict:
        m = self._machine
        return {
            "shard": self.shard,
            "n": len(self._file) if self._file is not None else 0,
            "reads": m.io.reads,
            "writes": m.io.writes,
            "comparisons": m.comparisons,
            # This worker's own disk, via a local alias (R7 sees only
            # the name chain, and lifetime counters live on the disk).
            "lifetime_reads": m.disk.lifetime.reads,  # emlint: disable=R7
            "lifetime_writes": m.disk.lifetime.writes,  # emlint: disable=R7
            "lifetime_comparisons": m.lifetime_comparisons,
            "M": m.M,
            "B": m.B,
            "kernel": m.kernel.name,
            "stats": dict(self._engine.stats) if self._engine is not None else {},
        }

    def _teardown(self) -> None:
        if self._writer is not None:
            self._writer.abort()
            self._writer = None
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        if self._file is not None:
            self._file.free()
            self._file = None
        self._machine.close()


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------
class InProcessWorkerPool:
    """Synchronous in-process workers: a request runs the worker's
    message loop inline.  ``transport`` selects reference-passing
    (``"inproc"``) or pickle-round-trip (``"serialized"``) links."""

    kind = "inproc"

    def __init__(
        self,
        coordinator: "Machine",
        nshards: int,
        *,
        shard_memory: int,
        shard_block: int,
        transport: str = "inproc",
        kernel: str | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if nshards < 1:
            raise ValueError("need at least one shard")
        transport_cls = TRANSPORTS[transport]
        self._workers: list[ShardWorker | None] = []
        self._ends = []
        for shard in range(nshards):
            link = transport_cls(shard)
            worker = ShardWorker(
                shard,
                link,
                memory=shard_memory,
                block=shard_block,
                kernel=kernel,
                sanitize=sanitize,
            )
            self._ends.append(link.coordinator_end(coordinator))
            self._workers.append(worker)

    @property
    def nshards(self) -> int:
        return len(self._workers)

    def request(self, shard: int, kind: str, payload: object = None) -> Message:
        worker = self._workers[shard]
        if worker is None:
            raise ShardError(f"shard {shard} worker is dead")
        self._ends[shard].send(Message(kind, payload))
        worker.step()
        reply = self._ends[shard].recv()
        if reply.kind == "error":
            raise ShardError(f"shard {shard}: {reply.payload}")
        return reply

    def kill(self, shard: int) -> None:
        """Chaos hook: make ``shard``'s worker unreachable, leaking its
        machine exactly as a crashed process would."""
        self._workers[shard] = None

    def close(self) -> None:
        """Shut every live worker down (idempotent; dead shards skipped)."""
        for shard, worker in enumerate(self._workers):
            if worker is not None:
                self.request(shard, "shutdown")
                self._workers[shard] = None


def _process_worker_main(
    conn,
    shard: int,
    memory: int,
    block: int,
    kernel: str | None,
    sanitize: bool | None,
) -> None:  # pragma: no cover - runs in the child process
    worker = ShardWorker(
        shard,
        PipeTransport(shard, conn),
        memory=memory,
        block=block,
        kernel=kernel,
        sanitize=sanitize,
    )
    try:
        worker.run()
    except EOFError:
        pass  # coordinator vanished; nothing left to reply to
    finally:
        conn.close()


class ProcessWorkerPool:
    """One OS process per shard over a duplex pipe.

    The child builds its own :class:`ShardWorker` (machine and all) and
    serves the same protocol; replies still carry the worker-side I/O
    envelope, so coordinator-side accounting and metrics are identical
    to the in-process pool.  A dead child surfaces as
    :class:`ShardError` on the next request.
    """

    kind = "process"

    def __init__(
        self,
        coordinator: "Machine",
        nshards: int,
        *,
        shard_memory: int,
        shard_block: int,
        transport: str = "pipe",  # accepted for interface symmetry
        kernel: str | None = None,
        sanitize: bool | None = None,
    ) -> None:
        if nshards < 1:
            raise ValueError("need at least one shard")
        ctx = multiprocessing.get_context()
        self._procs = []
        self._ends = []
        for shard in range(nshards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_process_worker_main,
                args=(child_conn, shard, shard_memory, shard_block, kernel, sanitize),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._ends.append(
                PipeTransport(shard, parent_conn).coordinator_end(coordinator)
            )
            self._procs.append(proc)

    @property
    def nshards(self) -> int:
        return len(self._procs)

    def request(self, shard: int, kind: str, payload: object = None) -> Message:
        if self._procs[shard] is None:
            raise ShardError(f"shard {shard} worker is dead")
        try:
            self._ends[shard].send(Message(kind, payload))
            reply = self._ends[shard].recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._reap(shard)
            raise ShardError(f"shard {shard} worker died: {exc!r}") from exc
        if reply.kind == "error":
            raise ShardError(f"shard {shard}: {reply.payload}")
        return reply

    def kill(self, shard: int) -> None:
        """Chaos hook: hard-kill the shard's process."""
        proc = self._procs[shard]
        if proc is not None:
            proc.terminate()
            proc.join()

    def _reap(self, shard: int) -> None:
        proc = self._procs[shard]
        if proc is not None:
            proc.join(timeout=5)
            self._procs[shard] = None

    def close(self) -> None:
        for shard, proc in enumerate(self._procs):
            if proc is None:
                continue
            try:
                self.request(shard, "shutdown")
            except ShardError:
                pass  # already dead; just reap below
            self._reap(shard)


#: Pool implementations selectable by name from the CLI / router.
WORKER_KINDS = {
    InProcessWorkerPool.kind: InProcessWorkerPool,
    ProcessWorkerPool.kind: ProcessWorkerPool,
}


def make_pool(kind: str, coordinator: "Machine", nshards: int, **kwargs):
    """Build a worker pool by name (``"inproc"`` or ``"process"``)."""
    try:
        pool_cls = WORKER_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(WORKER_KINDS))
        raise ValueError(f"unknown worker kind {kind!r}; known: {known}") from None
    return pool_cls(coordinator, nshards, **kwargs)

"""Pluggable coordinator↔worker transports with charged endpoints.

A :class:`Transport` is one bidirectional link between the coordinator
and one shard worker.  Each side binds an :class:`Endpoint` to the
machine that pays for its traffic; every ``send``/``recv`` then

* charges block I/O on that machine via :mod:`repro.em.wire`
  (writes on send under the ``"shard-send"`` phase, reads on receive
  under ``"shard-recv"``), and
* records the message and its canonical payload size in the ambient
  metrics registry (``svc_shard_msgs`` / ``svc_shard_bytes``, labeled
  by shard and direction).

Charges derive from :func:`~repro.em.wire.payload_words` over the
*abstract* message value, never from serialized bytes, so all three
transports here — reference-passing, pickle-round-trip, and
multiprocessing pipe — cost identically and sharded runs stay
deterministic across worker implementations.

This module is the one sanctioned channel for cross-shard data
movement: emlint rule R7 forbids ``shard/`` code outside this file from
touching another endpoint's ``Machine``/``Disk``/``EMFile`` directly.
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..em.wire import (
    RECV_PHASE,
    SEND_PHASE,
    charge_recv,
    charge_send,
    message_blocks,
    payload_words,
)
from ..obs.metrics import current_registry

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from ..em.machine import Machine

__all__ = [
    "Message",
    "Endpoint",
    "Transport",
    "InProcTransport",
    "SerializedTransport",
    "PipeTransport",
    "TRANSPORTS",
    "ShardError",
]


class ShardError(RuntimeError):
    """A shard worker failed, died, or broke the message protocol."""


@dataclass(frozen=True)
class Message:
    """One coordinator↔worker message.

    ``io`` rides on replies only: the worker's measured
    ``(reads, writes, comparisons)`` delta for receiving and handling
    the request, which the router feeds into per-shard histograms.
    ``seq`` is stamped by the sending endpoint and checked on receipt.
    """

    kind: str
    payload: object = None
    shard: int = -1
    seq: int = -1
    io: tuple | None = None

    def words(self) -> int:
        """Canonical charged size of this message in 64-bit words."""
        return payload_words((self.kind, self.payload, self.io))


@dataclass
class Endpoint:
    """One side of a transport link, bound to the machine that pays."""

    machine: "Machine"
    shard: int
    role: str  # "coordinator" | "worker"
    _put: object = field(repr=False, default=None)
    _get: object = field(repr=False, default=None)
    _seq_out: int = 0
    _seq_in: int = 0

    def __post_init__(self) -> None:
        registry = current_registry()
        self._m_msgs = registry.counter(
            "svc_shard_msgs",
            "messages through shard transports",
            labels=("shard", "direction"),
        )
        self._m_bytes = registry.counter(
            "svc_shard_bytes",
            "canonical payload bytes through shard transports",
            labels=("shard", "direction"),
        )

    def send(self, message: Message) -> None:
        """Transmit ``message``; charges block writes on this endpoint."""
        message = Message(
            kind=message.kind,
            payload=message.payload,
            shard=self.shard,
            seq=self._seq_out,
            io=message.io,
        )
        self._seq_out += 1
        words = message.words()
        charge_send(self.machine, message_blocks(words, self.machine.B), SEND_PHASE)
        self._m_msgs.labels(shard=self.shard, direction="send").inc()
        self._m_bytes.labels(shard=self.shard, direction="send").inc(8 * words)
        self._put(message)

    def recv(self) -> Message:
        """Take the next message; charges block reads on this endpoint.

        Raises :class:`ShardError` on sequence-number gaps (a transport
        dropped or reordered a message) and lets the underlying
        channel's EOF errors propagate (a dead peer — the pools turn
        those into :class:`ShardError` with shard context).
        """
        message = self._get()
        if message.seq != self._seq_in:
            raise ShardError(
                f"shard {self.shard} {self.role} endpoint: expected message "
                f"seq {self._seq_in}, got {message.seq}"
            )
        self._seq_in += 1
        words = message.words()
        charge_recv(self.machine, message_blocks(words, self.machine.B), RECV_PHASE)
        self._m_msgs.labels(shard=self.shard, direction="recv").inc()
        self._m_bytes.labels(shard=self.shard, direction="recv").inc(8 * words)
        return message


class Transport:
    """One coordinator↔one-worker link; subclasses supply the channel."""

    name = "abstract"

    def __init__(self, shard: int) -> None:
        self.shard = int(shard)

    def coordinator_end(self, machine: "Machine") -> Endpoint:
        put, get = self._coordinator_channel()
        return Endpoint(machine, self.shard, "coordinator", put, get)

    def worker_end(self, machine: "Machine") -> Endpoint:
        put, get = self._worker_channel()
        return Endpoint(machine, self.shard, "worker", put, get)

    def _coordinator_channel(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _worker_channel(self):  # pragma: no cover - abstract
        raise NotImplementedError


class InProcTransport(Transport):
    """Reference-passing queues: the in-process default."""

    name = "inproc"

    def __init__(self, shard: int) -> None:
        super().__init__(shard)
        self._to_worker: deque = deque()
        self._to_coord: deque = deque()

    def _coordinator_channel(self):
        return self._to_worker.append, self._to_coord.popleft

    def _worker_channel(self):
        return self._to_coord.append, self._to_worker.popleft


class SerializedTransport(Transport):
    """Pickle round-trip queues: in-process, but every message crosses a
    real serialization boundary — what a socket or pipe would carry.

    Proves (and the tests assert) that charging and answers are
    identical to :class:`InProcTransport`, the harness/adapter split
    that lets process workers reuse the in-process protocol unchanged.
    """

    name = "serialized"

    def __init__(self, shard: int) -> None:
        super().__init__(shard)
        self._to_worker: deque = deque()
        self._to_coord: deque = deque()

    @staticmethod
    def _encode(q: deque):
        return lambda msg: q.append(pickle.dumps(msg))

    @staticmethod
    def _decode(q: deque):
        return lambda: pickle.loads(q.popleft())

    def _coordinator_channel(self):
        return self._encode(self._to_worker), self._decode(self._to_coord)

    def _worker_channel(self):
        return self._encode(self._to_coord), self._decode(self._to_worker)


class PipeTransport(Transport):
    """A :mod:`multiprocessing` duplex pipe; construct one per process
    around that process's :class:`~multiprocessing.connection.Connection`
    half (the object itself never crosses the fork)."""

    name = "pipe"

    def __init__(self, shard: int, conn: "Connection") -> None:
        super().__init__(shard)
        self._conn = conn

    def _coordinator_channel(self):
        return self._conn.send, self._conn.recv

    def _worker_channel(self):
        return self._conn.send, self._conn.recv


#: In-process transports selectable by name from the CLI / pools.
TRANSPORTS = {
    InProcTransport.name: InProcTransport,
    SerializedTransport.name: SerializedTransport,
}

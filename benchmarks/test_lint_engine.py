"""Benchmark the emlint v2 whole-program engine: cold vs warm runs.

The v2 pipeline summarizes every module, resolves a project call
graph, and runs interprocedural dataflow before any project rule
fires.  That only stays usable as a pre-commit / CI gate if a cold
full-repo run is fast in absolute terms and the content-addressed
module cache makes warm runs much faster still.  This benchmark pins
both gates and records the numbers in ``out/LINT_ENGINE.txt``.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.lint import lint_paths

OUT_DIR = Path(__file__).parent / "out"

MAX_COLD_SECONDS = 10.0
MIN_WARM_SPEEDUP = 5.0
WARM_ROUNDS = 3


def test_lint_engine_cold_vs_warm(benchmark, tmp_path):
    cache = tmp_path / "lint-cache.json"

    t0 = time.perf_counter()
    cold = lint_paths(cache_path=cache)
    cold_s = time.perf_counter() - t0
    assert cold.cache_stats["hits"] == 0

    # pedantic once for the harness record, then best-of-N by hand so
    # the gate isn't at the mercy of a single noisy round.
    warm = benchmark.pedantic(
        lambda: lint_paths(cache_path=cache), rounds=1, iterations=1
    )
    warm_s = []
    for _ in range(WARM_ROUNDS):
        t0 = time.perf_counter()
        warm = lint_paths(cache_path=cache)
        warm_s.append(time.perf_counter() - t0)
    best_warm = min(warm_s)
    speedup = cold_s / best_warm if best_warm > 0 else float("inf")

    # warm must be a faithful replay, not a shortcut
    assert warm.to_dict()["findings"] == cold.to_dict()["findings"]
    assert warm.cache_stats["hits"] == cold.files
    assert warm.cache_stats["misses"] == 0

    resolution = cold.callgraph["resolution_rate"]
    lines = [
        "emlint v2 engine: full-repo cold vs warm (cached) run",
        "",
        f"files linted            {cold.files}",
        f"call sites              {cold.callgraph['call_sites']}",
        f"resolution rate         {resolution:.2%}",
        f"cold run                {cold_s:.3f} s   (gate: < {MAX_COLD_SECONDS:.0f} s)",
        f"warm run (best of {WARM_ROUNDS})    {best_warm:.3f} s",
        f"warm speedup            {speedup:.1f}x   (gate: >= {MIN_WARM_SPEEDUP:.0f}x)",
        f"warm cache hits         {warm.cache_stats['hits']}",
        "",
        "warm findings identical to cold: yes",
    ]
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "LINT_ENGINE.txt").write_text("\n".join(lines) + "\n")

    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(best_warm, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["resolution_rate"] = round(resolution, 4)

    assert cold_s < MAX_COLD_SECONDS
    assert speedup >= MIN_WARM_SPEEDUP
    assert resolution >= 0.95

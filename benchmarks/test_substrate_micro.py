"""Micro-benchmarks of the EM substrate operations.

These time the *simulator* (wall clock) while recording the simulated
I/O count in ``extra_info`` — useful to keep the simulation overhead per
simulated I/O visible when the substrate evolves.
"""

import numpy as np

from repro.alg import (
    approx_quantile_pivots,
    distribute_by_pivots,
    external_sort,
    multi_partition,
    select_rank,
    select_rank_fast,
)
from repro.core import intermixed_select, memory_splitters, multi_select
from repro.em import Machine, composite
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation

N = 30_000


def _machine_and_input(seed=0):
    mach = Machine(memory=4096, block=64)
    recs = random_permutation(N, seed=seed)
    return mach, recs, load_input(mach, recs)


def _run(benchmark, mach, fn):
    def task():
        mach.reset_counters()
        out = fn()
        return out

    benchmark.pedantic(task, rounds=3, iterations=1)
    benchmark.extra_info["simulated_io"] = mach.io.total
    benchmark.extra_info["n"] = N
    benchmark.extra_info["io_per_block"] = mach.io.total / (N / mach.B)


def test_micro_scan(benchmark):
    mach, recs, f = _machine_and_input()
    def scan():
        total = 0
        for i in range(f.num_blocks):
            total += len(f.read_block(i))
        return total
    _run(benchmark, mach, scan)


def test_micro_external_sort(benchmark):
    mach, recs, f = _machine_and_input(1)
    outs = []
    def task():
        out = external_sort(mach, f)
        outs.append(out)
        return out
    _run(benchmark, mach, task)
    for out in outs:
        out.free()


def test_micro_distribute(benchmark):
    mach, recs, f = _machine_and_input(2)
    pivots = sort_records(recs)[:: N // 16][1:]
    buckets_list = []
    def task():
        buckets = distribute_by_pivots(mach, f, pivots)
        buckets_list.extend(buckets)
        return buckets
    _run(benchmark, mach, task)
    for b in buckets_list:
        b.free()


def test_micro_pivot_cascade(benchmark):
    mach, recs, f = _machine_and_input(3)
    _run(benchmark, mach, lambda: approx_quantile_pivots(mach, f, 29))


def test_micro_select_bfprt(benchmark):
    mach, recs, f = _machine_and_input(4)
    _run(benchmark, mach, lambda: select_rank(mach, f, N // 2))


def test_micro_select_fast(benchmark):
    mach, recs, f = _machine_and_input(5)
    _run(benchmark, mach, lambda: select_rank_fast(mach, f, N // 2))


def test_micro_memory_splitters(benchmark):
    mach, recs, f = _machine_and_input(6)
    _run(benchmark, mach, lambda: memory_splitters(mach, f))


def test_micro_multiselect_small_k(benchmark):
    mach, recs, f = _machine_and_input(7)
    ranks = np.linspace(1, N, 8).astype(np.int64)
    _run(benchmark, mach, lambda: multi_select(mach, f, ranks))


def test_micro_multipartition(benchmark):
    mach, recs, f = _machine_and_input(8)
    pfs = []
    def task():
        pf = multi_partition(mach, f, [N // 8] * 8)
        pfs.append(pf)
        return pf
    _run(benchmark, mach, task)
    for pf in pfs:
        pf.free()


def test_micro_intermixed(benchmark):
    mach = Machine(memory=4096, block=64)
    rng = np.random.default_rng(9)
    L = 32
    grps = rng.integers(0, L, size=N)
    grps[:L] = np.arange(L)
    recs = make_records(rng.integers(0, 2**30, size=N), grps=grps)
    d = load_input(mach, recs)
    sizes = np.bincount(grps, minlength=L)
    t = rng.integers(1, sizes + 1)
    _run(benchmark, mach, lambda: intermixed_select(mach, d, t))

"""Micro-benchmarks of the EM substrate operations.

These time the *simulator* (wall clock) while recording the simulated
I/O count in ``extra_info`` — useful to keep the simulation overhead per
simulated I/O visible when the substrate evolves.

``test_batched_vs_single_scan`` is the differential benchmark for the
batched I/O fast path: it asserts the batched scan charges *identical*
I/O counters to the per-block scan, measures the wall-clock speedup at
``B = 64`` / ``N = 1e6``-scale, and records both in
``benchmarks/out/SUBSTRATE_BATCH.txt``.  Set ``REPRO_BENCH_FULL=1`` for
the full-size sweep (the default is a smaller smoke size for CI).
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.alg import (
    approx_quantile_pivots,
    distribute_by_pivots,
    external_sort,
    multi_partition,
    select_rank,
    select_rank_fast,
)
from repro.core import intermixed_select, memory_splitters, multi_select
from repro.em import Machine, composite, scan_chunks
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation

N = 30_000


def _machine_and_input(seed=0):
    mach = Machine(memory=4096, block=64)
    recs = random_permutation(N, seed=seed)
    return mach, recs, load_input(mach, recs)


def _run(benchmark, mach, fn):
    def task():
        mach.reset_counters()
        out = fn()
        return out

    benchmark.pedantic(task, rounds=3, iterations=1)
    benchmark.extra_info["simulated_io"] = mach.io.total
    benchmark.extra_info["n"] = N
    benchmark.extra_info["io_per_block"] = mach.io.total / (N / mach.B)


def test_micro_scan(benchmark):
    mach, recs, f = _machine_and_input()
    def scan():
        total = 0
        for i in range(f.num_blocks):
            total += len(f.read_block(i))
        return total
    _run(benchmark, mach, scan)


def test_micro_scan_batched(benchmark):
    mach, recs, f = _machine_and_input()
    def scan():
        total = 0
        with scan_chunks(f, mach.load_limit, "bench-scan") as chunks:
            for chunk in chunks:
                total += len(chunk)
        return total
    _run(benchmark, mach, scan)


def test_micro_external_sort(benchmark):
    mach, recs, f = _machine_and_input(1)
    outs = []
    def task():
        out = external_sort(mach, f)
        outs.append(out)
        return out
    _run(benchmark, mach, task)
    for out in outs:
        out.free()


def test_micro_distribute(benchmark):
    mach, recs, f = _machine_and_input(2)
    pivots = sort_records(recs)[:: N // 16][1:]
    buckets_list = []
    def task():
        buckets = distribute_by_pivots(mach, f, pivots)
        buckets_list.extend(buckets)
        return buckets
    _run(benchmark, mach, task)
    for b in buckets_list:
        b.free()


def test_micro_pivot_cascade(benchmark):
    mach, recs, f = _machine_and_input(3)
    _run(benchmark, mach, lambda: approx_quantile_pivots(mach, f, 29))


def test_micro_select_bfprt(benchmark):
    mach, recs, f = _machine_and_input(4)
    _run(benchmark, mach, lambda: select_rank(mach, f, N // 2))


def test_micro_select_fast(benchmark):
    mach, recs, f = _machine_and_input(5)
    _run(benchmark, mach, lambda: select_rank_fast(mach, f, N // 2))


def test_micro_memory_splitters(benchmark):
    mach, recs, f = _machine_and_input(6)
    _run(benchmark, mach, lambda: memory_splitters(mach, f))


def test_micro_multiselect_small_k(benchmark):
    mach, recs, f = _machine_and_input(7)
    ranks = np.linspace(1, N, 8).astype(np.int64)
    _run(benchmark, mach, lambda: multi_select(mach, f, ranks))


def test_micro_multipartition(benchmark):
    mach, recs, f = _machine_and_input(8)
    pfs = []
    def task():
        pf = multi_partition(mach, f, [N // 8] * 8)
        pfs.append(pf)
        return pf
    _run(benchmark, mach, task)
    for pf in pfs:
        pf.free()


def _time_best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_batched_vs_single_scan():
    """Differential: batched full-file scan vs per-block, same I/O model.

    Asserts byte-identical counters / phases / read ids / traces, then
    requires the batched path to be at least 2x faster wall-clock.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    n = 1_000_000 if full else 200_000
    B = 64
    mach = Machine(memory=64 * B, block=B)
    f = load_input(mach, random_permutation(n, seed=0))
    nblocks = f.num_blocks

    def single_scan():
        total = 0
        for i in range(nblocks):
            total += len(f.read_block(i))
        return total

    def batched_scan():
        total = 0
        with scan_chunks(f, mach.load_limit, "batch-scan") as chunks:
            for chunk in chunks:
                total += len(chunk)
        return total

    def measure(scan):
        mach.reset_counters()
        mach.disk.start_trace()
        with mach.phase("scan"):
            seconds, total = _time_best_of(scan)
        assert total == n
        snap = mach.snapshot()
        return seconds, snap, set(mach.disk.read_block_ids), mach.disk.stop_trace()

    t_single, io_single, ids_single, _ = measure(single_scan)
    t_batched, io_batched, ids_batched, _ = measure(batched_scan)
    # One isolated trace window per path (reset fences the trace, but the
    # best-of timing loop scans several times; compare single passes).
    mach.reset_counters()
    mach.disk.start_trace()
    single_scan()
    trace_single = mach.disk.stop_trace()
    mach.reset_counters()
    mach.disk.start_trace()
    batched_scan()
    trace_batched = mach.disk.stop_trace()

    # Model fidelity: the fast path must be invisible to the cost model.
    assert io_batched.reads == io_single.reads == 3 * nblocks
    assert io_batched.writes == io_single.writes == 0
    assert io_batched.by_phase == io_single.by_phase
    assert ids_batched == ids_single
    assert trace_batched == trace_single

    speedup = t_single / t_batched
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "SUBSTRATE_BATCH.txt").write_text(
        "Batched vs single-block full-file scan "
        "(Disk.read_many via EMFile.read_range / scan_chunks)\n"
        f"  mode            : {'full' if full else 'smoke'}\n"
        f"  N               : {n}\n"
        f"  B               : {B}\n"
        f"  blocks          : {nblocks}\n"
        f"  reads (single)  : {io_single.reads}\n"
        f"  reads (batched) : {io_batched.reads}\n"
        f"  counters equal  : True (reads, writes, by_phase, read ids, trace)\n"
        f"  wall single     : {t_single * 1e3:.2f} ms\n"
        f"  wall batched    : {t_batched * 1e3:.2f} ms\n"
        f"  speedup         : {speedup:.2f}x\n"
    )
    assert speedup >= 2.0, f"batched scan only {speedup:.2f}x faster"


def test_micro_intermixed(benchmark):
    mach = Machine(memory=4096, block=64)
    rng = np.random.default_rng(9)
    L = 32
    grps = rng.integers(0, L, size=N)
    grps[:L] = np.arange(L)
    recs = make_records(rng.integers(0, 2**30, size=N), grps=grps)
    d = load_input(mach, recs)
    sizes = np.bincount(grps, minlength=L)
    t = rng.integers(1, sizes + 1)
    _run(benchmark, mach, lambda: intermixed_select(mach, d, t))

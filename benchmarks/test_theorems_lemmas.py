"""Theorem 4, Lemmas 5/6, the §3 reduction, the Hu-et-al-[6] building
block, and the sort substrate — one benchmark per claim."""


def test_thm4_multiselect_vs_multipartition(run_experiment):
    """Theorem 4: Θ((N/B)·lg_{M/B}(K/B)) multi-selection; separation from
    multi-partition at the bound level, same hardness for large K."""
    run_experiment("THM4")


def test_lem5_precise_partitioning_counting_bound(run_experiment):
    """Lemma 5: measured multi-partition sits between the exact
    machine-state counting lower bound and the Aggarwal–Vitter upper."""
    run_experiment("LEM5")


def test_lem6_intermixed_selection_linear(run_experiment):
    """Lemma 6: L-intermixed selection is O(|D|/B), independent of L."""
    run_experiment("LEM6")


def test_sec3_reduction_to_precise_partitioning(run_experiment):
    """§3: approximate partitioning + O(N/B) sweep = precise partitioning."""
    run_experiment("SEC3")


def test_hu6_memory_splitters_interface(run_experiment):
    """Hu et al. [6] substitute: Θ(M) splitters, sizes Θ(N/M), O(N/B)."""
    run_experiment("HU6")


def test_sort_substrate_bound(run_experiment):
    """External merge sort tracks Θ((N/B)·lg_{M/B}(N/B))."""
    run_experiment("SORT")


def test_cmp_comparison_counts(run_experiment):
    """The comparison-based model's CPU side, measured per algorithm."""
    run_experiment("CMP")


def test_space_working_disk(run_experiment):
    """Every algorithm runs in O(N/B) blocks of disk space."""
    run_experiment("SPACE")


def test_seq_access_patterns(run_experiment):
    """Which of the model's I/Os would be seeks on real storage."""
    run_experiment("SEQ")

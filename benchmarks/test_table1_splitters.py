"""Table 1, rows 1-3: approximate K-splitters benchmarks.

Each benchmark regenerates one row of the paper's results table — the
parameter sweep, the measured simulated I/O, the row's Θ-bound and the
sort baseline — and asserts the row's qualitative claims (sublinearity,
monotonicity, regime switches).  Rendered tables land in
``benchmarks/out/``.
"""


def test_t1_row1_right_grounded_splitters(run_experiment):
    """Θ((1 + aK/B)·lg_{M/B}(K/B)); sublinear when aK ≪ N (Thms 1, 5)."""
    run_experiment("T1.R1")


def test_t1_row2_left_grounded_splitters(run_experiment):
    """Θ((N/B)·lg_{M/B}(N/(bB))) (Thms 2, 5)."""
    run_experiment("T1.R2")


def test_t1_row3_two_sided_splitters(run_experiment):
    """Θ((1+aK/B)·lg(K/B) + (N/B)·lg(N/(bB))) (Thms 1, 2, 5)."""
    run_experiment("T1.R3")

"""Table 1, rows 4-6: approximate K-partitioning benchmarks."""


def test_t1_row4_right_grounded_partitioning(run_experiment):
    """Ω(N/B) lower (every element seen); O(N/B + (aK/B)·lg·) upper."""
    run_experiment("T1.R4")


def test_t1_row5_left_grounded_partitioning(run_experiment):
    """Θ((N/B)·lg_{M/B} min{N/b, N/B}) (Thms 3, 6)."""
    run_experiment("T1.R5")


def test_t1_row6_two_sided_partitioning(run_experiment):
    """O((aK/B)·lg min{K, aK/B} + (N/B)·lg min{N/b, N/B}) (Thm 6)."""
    run_experiment("T1.R6")

"""Ablation benchmarks for the design choices DESIGN.md calls out."""


def test_abl1_merge_fanout(run_experiment):
    """Pass count collapses as the merge fanout grows toward M/B."""
    run_experiment("ABL1")


def test_abl2_memory_splitter_granularity(run_experiment):
    """Splitter count P trades resident state against |D| ≈ K·N/P."""
    run_experiment("ABL2")


def test_abl3_two_sided_threshold(run_experiment):
    """The a ≥ N/2K quantile-fallback switch, swept across the threshold."""
    run_experiment("ABL3")


def test_abl4_pivot_sources(run_experiment):
    """Deterministic cascade (worst-case guarantee) vs random sampling."""
    run_experiment("ABL4")


def test_abl5_randomized_vs_deterministic(run_experiment):
    """Las Vegas sampling vs the paper's deterministic machinery."""
    run_experiment("ABL5")

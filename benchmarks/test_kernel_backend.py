"""Differential benchmark of the kernel backends.

Runs the primitive suite (:func:`repro.em.kernels.bench.bench_kernels`)
at hot-path scale, asserts the backends produce byte-identical outputs,
asserts the ``vectorized_v2`` default beats the per-block ``numpy_v1``
reference by at least 5x wall-clock, and records the table in
``benchmarks/out/KERNEL_BACKEND.txt``.  Set ``REPRO_BENCH_FULL=1`` for
the full-size instance (the default is a smaller CI size whose speedup
margin is still comfortably above the gate).
"""

import os
from pathlib import Path

from repro.em.kernels.bench import bench_kernels, render_bench

OUT_DIR = Path(__file__).parent / "out"
MIN_SPEEDUP = 5.0


def test_kernel_backend_speedup_and_identity(benchmark):
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    kwargs = (
        dict(n_blocks=8192, n_buckets=2000, reps=3)
        if full
        else dict(n_blocks=4096, n_buckets=2000, reps=2)
    )
    result = benchmark.pedantic(
        lambda: bench_kernels(**kwargs), rounds=1, iterations=1
    )

    OUT_DIR.mkdir(exist_ok=True)
    text = render_bench(result)
    (OUT_DIR / "KERNEL_BACKEND.txt").write_text(text + "\n")

    speedup = result.speedup("vectorized_v2")
    benchmark.extra_info["speedup_v2_over_v1"] = round(speedup, 2)
    benchmark.extra_info["identical"] = result.identical
    for name in result.timings:
        benchmark.extra_info[f"total_{name}_s"] = round(result.total(name), 3)

    assert result.identical, "backends disagree byte-for-byte"
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized_v2 only {speedup:.2f}x over numpy_v1 "
        f"(gate {MIN_SPEEDUP}x)\n{text}"
    )

"""Wall-clock benchmark of the parallel, cached experiment runner.

Measures the full ``--quick`` experiment sweep three ways — serial
(``jobs=1``, cache off), parallel (``jobs=4``, cold cache), and a second
fully cached invocation — verifies that all three produce byte-identical
EXPERIMENTS.md content, and records the measured speedups in
``benchmarks/out/HARNESS_PARALLEL.txt``.

The parallel speedup is only asserted when the host actually has >= 4
CPUs (a process pool cannot beat serial execution on a single core);
the cache speedup is hardware-independent and always asserted.

Run directly (not part of tier-1):

    PYTHONPATH=src python -m pytest -q benchmarks/test_harness_parallel.py
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments.report_all import DEFAULT_ORDER, generate_experiments_md
from repro.experiments.runner import run_experiments

OUT_DIR = Path(__file__).parent / "out"
JOBS = 4


def _timed(**kwargs):
    t0 = time.perf_counter()
    records = run_experiments(DEFAULT_ORDER, quick=True, **kwargs)
    return records, time.perf_counter() - t0


def test_parallel_and_cached_report_speedup(tmp_path):
    cache_dir = tmp_path / "cache"

    serial, t_serial = _timed(jobs=1, cache=False)
    parallel, t_parallel = _timed(jobs=JOBS, cache=True, cache_dir=cache_dir)
    cached, t_cached = _timed(jobs=JOBS, cache=True, cache_dir=cache_dir)

    assert all(r.passed for r in serial + parallel + cached)
    # The cached invocation must rerun zero experiments.
    assert all(r.cached for r in cached)
    assert all(not r.cached for r in serial + parallel)

    # The rendered document is a pure function of the results: serial,
    # parallel and cached runs all produce byte-identical markdown.
    docs = [
        generate_experiments_md(
            quick=True, results=[r.to_result() for r in records]
        )[0]
        for records in (serial, parallel, cached)
    ]
    assert docs[0] == docs[1] == docs[2]

    cores = os.cpu_count() or 1
    speedup_parallel = t_serial / t_parallel
    speedup_cached = t_serial / t_cached
    lines = [
        "Experiment harness: parallel + cached runner vs serial",
        f"(quick sweeps, {len(DEFAULT_ORDER)} experiments, "
        f"{cores} CPU(s) available)",
        "",
        f"serial   jobs=1            : {t_serial:8.2f} s",
        f"parallel jobs={JOBS} cold cache : {t_parallel:8.2f} s "
        f"({speedup_parallel:.2f}x vs serial)",
        f"cached   jobs={JOBS} warm cache : {t_cached:8.2f} s "
        f"({speedup_cached:.1f}x vs serial, 0/{len(DEFAULT_ORDER)} "
        "experiments rerun)",
        "",
        "EXPERIMENTS.md content byte-identical across all three runs.",
        f"Parallel speedup asserted >= 2x only when >= {JOBS} CPUs are "
        f"available (this host: {cores}).",
    ]
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "HARNESS_PARALLEL.txt").write_text("\n".join(lines) + "\n")
    print("\n".join(lines))

    assert speedup_cached >= 2.0, (
        f"cached report only {speedup_cached:.2f}x faster than serial"
    )
    if cores >= JOBS:
        assert speedup_parallel >= 2.0, (
            f"parallel report only {speedup_parallel:.2f}x faster than "
            f"serial on {cores} CPUs"
        )

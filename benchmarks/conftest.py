"""Shared machinery for the benchmark suite.

Every benchmark runs one registered experiment (quick sweep by default —
set ``REPRO_BENCH_FULL=1`` for the full sweeps recorded in
EXPERIMENTS.md), times it with pytest-benchmark, asserts the experiment's
shape checks, attaches the headline numbers to ``extra_info`` and writes
the rendered paper-style table to ``benchmarks/out/<id>.txt``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import get_experiment

OUT_DIR = Path(__file__).parent / "out"


def run_experiment_benchmark(benchmark, exp_id: str):
    """Benchmark one experiment end to end and persist its table."""
    quick = os.environ.get("REPRO_BENCH_FULL", "") != "1"
    exp = get_experiment(exp_id)
    result = benchmark.pedantic(lambda: exp(quick=quick), rounds=1, iterations=1)
    OUT_DIR.mkdir(exist_ok=True)
    rendered = result.render()
    safe_id = exp_id.replace(".", "_")
    (OUT_DIR / f"{safe_id}.txt").write_text(rendered + "\n")
    # Machine-readable companion (same schema as the runner's records),
    # so benchmark trajectories can diff numbers instead of prose.
    (OUT_DIR / f"{safe_id}.json").write_text(
        json.dumps(result.to_dict(), indent=2) + "\n"
    )
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["mode"] = "quick" if quick else "full"
    benchmark.extra_info["checks"] = {name: ok for name, ok in result.checks}
    failed = [name for name, ok in result.checks if not ok]
    assert result.passed, f"{exp_id} failed shape checks: {failed}"
    return result


@pytest.fixture
def run_experiment(benchmark):
    return lambda exp_id: run_experiment_benchmark(benchmark, exp_id)

"""Edge-case tests collected across modules."""

import numpy as np
import pytest

from repro.em import (
    BlockWriter,
    EMFile,
    Machine,
    MemoryBudgetError,
    merge_sorted_files,
)
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation


class TestLoadLimit:
    def test_adapts_to_held_leases(self):
        mach = Machine(memory=1024, block=16)
        base = mach.load_limit
        assert base == 1024 - 32
        with mach.memory.lease(500, "held"):
            assert mach.load_limit == 1024 - 500 - 32
        assert mach.load_limit == base

    def test_floors_at_one_block(self):
        mach = Machine(memory=1024, block=16)
        with mach.memory.lease(1020, "held"):
            assert mach.load_limit == mach.B


class TestMergeLimits:
    def test_merge_beyond_memory_rejected(self):
        mach = Machine(memory=128, block=16)  # 2kB lease: k <= 4 - eps
        files = []
        for i in range(8):
            recs = sort_records(random_permutation(100, seed=i))
            files.append(EMFile.from_records(mach, recs, counted=False))
        writer = BlockWriter(mach)
        with pytest.raises(MemoryBudgetError):
            merge_sorted_files(mach, files, writer)
        writer.abort()
        assert mach.memory.in_use == 0


class TestVerifyEdges:
    def test_check_splitters_k1(self):
        from repro.analysis.verify import check_splitters
        from repro.em.records import empty_records

        data = random_permutation(50, seed=1)
        sizes = check_splitters(data, empty_records(0), 0, 50, 1)
        assert list(sizes) == [50]

    def test_induced_sizes_no_splitters(self):
        from repro.analysis.verify import induced_partition_sizes
        from repro.em.records import empty_records

        data = random_permutation(10, seed=2)
        assert list(induced_partition_sizes(data, empty_records(0))) == [10]


class TestProbabilisticEdges:
    def test_k1_window(self):
        from repro.bounds.probabilistic import sample_size_for_window

        # K=1: a single bucket, any slack makes the requirement trivial
        # (still returns at least k samples).
        s = sample_size_for_window(1000, 1, 500, 2000, 0.05)
        assert s >= 1


class TestPartitionedEdges:
    def test_materialize_empty(self):
        from repro.alg.partitioned import PartitionedFile

        mach = Machine(memory=256, block=8)
        pf = PartitionedFile(mach, [], [], [0, 0])
        out, sizes = pf.materialize()
        assert len(out) == 0 and sizes == [0, 0]
        assert pf.to_numpy_partitions()[0].shape == (0,)


class TestSpecReprs:
    def test_problem_params_grounding_labels(self):
        from repro.core.spec import grounding, validate_params

        assert grounding(validate_params(100, 4, 0, 50)) == "left"
        assert grounding(validate_params(100, 4, 10, 100)) == "right"
        assert grounding(validate_params(100, 4, 10, 50)) == "two-sided"


class TestChunkyBoundaries:
    def test_multipartition_sizes_one_each(self):
        from repro.alg.multipartition import multi_partition
        from repro.analysis.verify import check_partitioned

        mach = Machine(memory=256, block=8)
        recs = random_permutation(40, seed=3)
        f = load_input(mach, recs)
        pf = multi_partition(mach, f, [1] * 40)
        check_partitioned(recs, pf, 1, 1, 40)

    def test_intermixed_subgroups_cross_chunks(self):
        # One group dominating a multi-chunk file forces subgroup carries
        # across chunk boundaries at every scan.
        from repro.core.intermixed import intermixed_select
        from repro.em import composite

        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(4)
        n = 3000
        grps = np.zeros(n, dtype=np.int64)
        grps[::97] = 1  # sparse second group
        recs = make_records(rng.permutation(n), grps=grps)
        d = load_input(mach, recs)
        sizes = np.bincount(grps, minlength=2)
        t = np.array([sizes[0] // 2, sizes[1]])
        ans = intermixed_select(mach, d, t)
        for i in range(2):
            g = np.sort(composite(recs)[grps == i])
            assert int(composite(ans[i : i + 1])[0]) == g[t[i] - 1]

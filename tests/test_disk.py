"""Unit tests for the simulated block device."""

import numpy as np
import pytest

from repro.em import BadBlockError, BlockSizeError, Disk, IOCounters
from repro.em.records import make_records


def blk(n, start=0):
    return make_records(np.arange(start, start + n))


class TestAllocation:
    def test_allocate_returns_distinct_ids(self):
        d = Disk(8)
        ids = d.allocate(5)
        assert len(set(ids)) == 5
        assert d.live_blocks == 5

    def test_allocation_is_free(self):
        d = Disk(8)
        d.allocate(10)
        assert d.counters.total == 0

    def test_free_then_read_fails(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.free([bid])
        with pytest.raises(BadBlockError):
            d.read(bid)

    def test_double_free_fails(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.free([bid])
        with pytest.raises(BadBlockError):
            d.free([bid])

    def test_free_is_atomic_on_bad_id(self):
        # Regression: a bad id mid-list used to leave earlier blocks
        # already deleted; now nothing is freed unless every id is valid.
        d = Disk(8)
        ids = d.allocate(3)
        with pytest.raises(BadBlockError):
            d.free([ids[0], 10_000, ids[1]])
        assert d.live_blocks == 3
        for bid in ids:
            d.peek(bid)  # still allocated

    def test_free_rejects_duplicate_ids_atomically(self):
        d = Disk(8)
        ids = d.allocate(2)
        with pytest.raises(BadBlockError):
            d.free([ids[0], ids[1], ids[0]])
        assert d.live_blocks == 2

    def test_peak_blocks(self):
        d = Disk(8)
        ids = d.allocate(4)
        d.free(ids[:2])
        d.allocate(1)
        assert d.peak_blocks == 4

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            Disk(8).allocate(-1)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            Disk(0)


class TestReadWrite:
    def test_roundtrip(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        data = blk(8)
        d.write(bid, data)
        out = d.read(bid)
        assert np.array_equal(out["key"], data["key"])

    def test_read_returns_copy(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.write(bid, blk(8))
        out = d.read(bid)
        out["key"][0] = 999
        assert d.read(bid)["key"][0] == 0

    def test_write_stores_copy(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        data = blk(8)
        d.write(bid, data)
        data["key"][0] = 999
        assert d.read(bid)["key"][0] == 0

    def test_oversize_write_rejected(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with pytest.raises(BlockSizeError):
            d.write(bid, blk(9))

    def test_partial_block_allowed(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.write(bid, blk(3))
        assert len(d.read(bid)) == 3

    def test_wrong_dtype_rejected(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with pytest.raises(BlockSizeError):
            d.write(bid, np.zeros(4))

    def test_unallocated_write_fails(self):
        with pytest.raises(BadBlockError):
            Disk(8).write(17, blk(1))


class TestCounting:
    def test_read_write_counted(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.write(bid, blk(4))
        d.read(bid)
        d.read(bid)
        assert d.counters.reads == 2
        assert d.counters.writes == 1
        assert d.counters.total == 3

    def test_uncounted_context(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with d.uncounted():
            d.write(bid, blk(4))
            d.read(bid)
        assert d.counters.total == 0

    def test_uncounted_nesting_restores(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with d.uncounted():
            with d.uncounted():
                pass
            d.write(bid, blk(1))
        assert d.counters.total == 0
        d.read(bid)
        assert d.counters.total == 1

    def test_peek_not_counted(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.write(bid, blk(4))
        before = d.counters.total
        d.peek(bid)
        assert d.counters.total == before

    def test_phase_attribution(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with d.phase("setup"):
            d.write(bid, blk(4))
        with d.phase("outer"):
            with d.phase("inner"):
                d.read(bid)
        assert d.counters.by_phase["setup"] == (0, 1)
        # Nested phases are charged to the joined stack path, so the
        # parent's share is recoverable by prefix aggregation.
        assert d.counters.by_phase["outer/inner"] == (1, 0)
        assert "inner" not in d.counters.by_phase
        assert "outer" not in d.counters.by_phase

    def test_phase_path_property_and_slash_rejected(self):
        import pytest

        d = Disk(8)
        assert d.phase_path == ""
        with d.phase("outer"):
            assert d.phase_path == "outer"
            with d.phase("inner"):
                assert d.phase_path == "outer/inner"
            assert d.phase_path == "outer"
        assert d.phase_path == ""
        with pytest.raises(ValueError):
            with d.phase("bad/label"):
                pass

    def test_reset_counters(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        d.write(bid, blk(1))
        d.read(bid)
        d.reset_counters()
        assert d.counters.total == 0
        assert d.read_block_ids == frozenset()

    def test_read_block_tracking(self):
        d = Disk(8)
        ids = d.allocate(3)
        for i in ids:
            d.write(i, blk(1))
        d.read(ids[0])
        with d.uncounted():
            d.read(ids[1])
        assert d.read_block_ids == {ids[0]}

    def test_reset_counters_fences_active_trace(self):
        # Regression: reset_counters used to leave pre-reset entries in
        # an active trace, mixing two measurement windows.
        d = Disk(8)
        ids = d.allocate(2)
        for bid in ids:
            with d.uncounted():
                d.write(bid, blk(1))
        d.start_trace()
        d.read(ids[0])
        d.reset_counters()
        d.read(ids[1])
        assert d.stop_trace() == [("r", ids[1])]

    def test_reset_counters_without_trace_stays_untraced(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with d.uncounted():
            d.write(bid, blk(1))
        d.reset_counters()
        d.read(bid)
        assert d.stop_trace() == []

    def test_snapshot_is_frozen(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        snap = d.snapshot()
        d.write(bid, blk(1))
        assert snap.total == 0


class TestIOCounters:
    def test_subtraction(self):
        a = IOCounters(reads=5, writes=3, by_phase={"x": (5, 3)})
        b = IOCounters(reads=2, writes=1, by_phase={"x": (2, 1)})
        diff = a - b
        assert (diff.reads, diff.writes) == (3, 2)
        assert diff.by_phase == {"x": (3, 2)}

    def test_subtraction_drops_zero_phases(self):
        a = IOCounters(reads=1, writes=0, by_phase={"x": (1, 0), "y": (0, 0)})
        b = IOCounters(by_phase={"y": (0, 0)})
        assert "y" not in (a - b).by_phase

    def test_copy_independent(self):
        a = IOCounters(reads=1, by_phase={"x": (1, 0)})
        c = a.copy()
        c.by_phase["x"] = (9, 9)
        assert a.by_phase["x"] == (1, 0)

"""Differential tests: the batched I/O fast path vs the single-block path.

The batched layer (``Disk.read_many`` / ``Disk.write_many`` and the
``EMFile.read_range`` / ``EMFile.append_blocks`` wrappers) exists purely
for Python-level speed — model fidelity is non-negotiable.  These tests
assert that every observable piece of accounting (counters, per-phase
breakdown, ``read_block_ids``, the access trace) and every stored byte
is *identical* to performing the same transfers one block at a time.
"""

import numpy as np
import pytest

from repro.em import (
    BadBlockError,
    BlockSizeError,
    Disk,
    EMFile,
    FileError,
    Machine,
    composite,
)
from repro.em import available_kernels
from repro.em.records import make_records


@pytest.fixture(autouse=True, params=available_kernels())
def each_kernel(request, monkeypatch):
    """Run every test in this module under every registered kernel
    backend (the Disk constructor resolves ``EM_KERNEL`` at build time),
    so the batched-vs-single identity is proven per backend."""
    monkeypatch.setenv("EM_KERNEL", request.param)
    return request.param


def blk(n, start=0):
    return make_records(np.arange(start, start + n))


def staged_disk(B=8, nblocks=6, partial_last=3):
    """A disk with ``nblocks`` written blocks (last one partial)."""
    d = Disk(B)
    ids = d.allocate(nblocks)
    with d.uncounted():
        for i, bid in enumerate(ids):
            n = partial_last if i == nblocks - 1 else B
            d.write(bid, blk(n, start=i * B))
    return d, ids


def observable_state(d: Disk):
    c = d.snapshot()
    return (c.reads, c.writes, dict(c.by_phase), set(d.read_block_ids))


class TestReadManyDifferential:
    def test_counters_phases_ids_and_trace_match_single_path(self):
        single, ids_s = staged_disk()
        batched, ids_b = staged_disk()
        single.start_trace()
        batched.start_trace()

        with single.phase("scan"):
            parts = [single.read(bid) for bid in ids_s]
        with batched.phase("scan"):
            out = batched.read_many(ids_b)

        assert observable_state(single) == observable_state(batched)
        assert single.stop_trace() == batched.stop_trace()
        assert np.array_equal(composite(np.concatenate(parts)), composite(out))

    def test_mixed_batch_and_single_interleaving(self):
        single, ids_s = staged_disk()
        batched, ids_b = staged_disk()
        with single.phase("a"):
            for bid in ids_s[:3]:
                single.read(bid)
        with single.phase("b"):
            for bid in ids_s[3:]:
                single.read(bid)
        with batched.phase("a"):
            batched.read_many(ids_b[:3])
        with batched.phase("b"):
            batched.read_many(ids_b[3:])
        assert observable_state(single) == observable_state(batched)

    def test_empty_batch_charges_nothing(self):
        d, _ = staged_disk()
        out = d.read_many([])
        assert len(out) == 0
        assert d.counters.total == 0
        assert d.read_block_ids == frozenset()

    def test_single_element_batch(self):
        d, ids = staged_disk()
        out = d.read_many(ids[:1])
        assert d.counters.reads == 1
        assert np.array_equal(out["key"], d.peek(ids[0])["key"])

    def test_returns_a_copy(self):
        d, ids = staged_disk()
        out = d.read_many(ids[:2])
        out["key"][0] = 999
        assert d.peek(ids[0])["key"][0] == 0

    def test_bad_id_raises_before_any_charge(self):
        d, ids = staged_disk()
        with pytest.raises(BadBlockError):
            d.read_many([ids[0], 10_000])
        assert d.counters.total == 0
        assert d.read_block_ids == frozenset()

    def test_uncounted_batch(self):
        d, ids = staged_disk()
        with d.uncounted():
            d.read_many(ids)
        assert d.counters.total == 0
        assert d.read_block_ids == frozenset()


class TestIdContainerTypes:
    """Regression: ``if not block_ids:`` raised ``ValueError: The truth
    value of an array with more than one element is ambiguous`` when a
    caller passed a numpy array of ids.  Every sequence type must behave
    identically, including when empty."""

    @pytest.mark.parametrize("wrap", [list, tuple, np.asarray])
    def test_read_many_accepts_any_sequence(self, wrap):
        d, ids = staged_disk()
        out = d.read_many(wrap(ids))
        assert d.counters.reads == len(ids)
        assert np.array_equal(out, d.read_many(list(ids)))

    @pytest.mark.parametrize(
        "empty", [[], (), np.empty(0, dtype=np.int64)]
    )
    def test_read_many_empty_of_any_type(self, empty):
        d, _ = staged_disk()
        out = d.read_many(empty)
        assert len(out) == 0 and d.counters.total == 0

    @pytest.mark.parametrize("wrap", [list, tuple, np.asarray])
    def test_write_many_accepts_any_sequence(self, wrap):
        B = 8
        d = Disk(B)
        ids = d.allocate(3)
        payload = blk(3 * B)
        d.write_many(wrap(ids), payload)
        assert d.counters.writes == 3
        assert np.array_equal(d.peek(ids[0]), payload[:B])

    @pytest.mark.parametrize(
        "empty", [[], (), np.empty(0, dtype=np.int64)]
    )
    def test_write_many_empty_of_any_type(self, empty):
        d = Disk(8)
        d.write_many(empty, blk(0))
        assert d.counters.total == 0

    def test_numpy_ids_count_and_trace_like_python_ints(self):
        d1, ids1 = staged_disk()
        d2, ids2 = staged_disk()
        d1.start_trace()
        d2.start_trace()
        d1.read_many(list(ids1))
        d2.read_many(np.asarray(ids2, dtype=np.int64))
        assert observable_state(d1) == observable_state(d2)
        t1, t2 = d1.stop_trace(), d2.stop_trace()
        assert t1 == t2
        # Trace ids must be plain ints regardless of the input container.
        assert all(type(bid) is int for _, bid in t2)


class TestWriteManyDifferential:
    def test_counters_trace_and_bytes_match_single_path(self):
        B = 8
        payload = blk(3 * B + 5)
        single = Disk(B)
        batched = Disk(B)
        ids_s = single.allocate(4)
        ids_b = batched.allocate(4)
        single.start_trace()
        batched.start_trace()

        with single.phase("emit"):
            for i, bid in enumerate(ids_s):
                single.write(bid, payload[i * B : (i + 1) * B])
        with batched.phase("emit"):
            batched.write_many(ids_b, payload)

        assert observable_state(single) == observable_state(batched)
        assert single.stop_trace() == batched.stop_trace()
        for bid_s, bid_b in zip(ids_s, ids_b):
            assert np.array_equal(
                single.peek(bid_s)["key"], batched.peek(bid_b)["key"]
            )

    def test_stores_a_copy(self):
        d = Disk(8)
        ids = d.allocate(1)
        data = blk(8)
        d.write_many(ids, data)
        data["key"][0] = 999
        assert d.peek(ids[0])["key"][0] == 0

    def test_empty_batch_is_noop(self):
        d = Disk(8)
        d.write_many([], blk(0))
        assert d.counters.total == 0

    def test_oversize_payload_rejected_without_charge(self):
        d = Disk(8)
        ids = d.allocate(2)
        with pytest.raises(BlockSizeError):
            d.write_many(ids, blk(17))
        assert d.counters.total == 0

    def test_trailing_empty_blocks_rejected(self):
        d = Disk(8)
        ids = d.allocate(3)
        with pytest.raises(BlockSizeError):
            d.write_many(ids, blk(16))  # third block would stay empty
        assert d.counters.total == 0

    def test_duplicate_id_rejected(self):
        d = Disk(8)
        (bid,) = d.allocate(1)
        with pytest.raises(BadBlockError):
            d.write_many([bid, bid], blk(10))
        assert d.counters.total == 0

    def test_unallocated_id_rejected_atomically(self):
        d = Disk(8)
        ids = d.allocate(1)
        with d.uncounted():
            d.write(ids[0], blk(8, start=100))
        with pytest.raises(BadBlockError):
            d.write_many([ids[0], 999], blk(10))
        # The valid block must be untouched.
        assert d.peek(ids[0])["key"][0] == 100

    def test_wrong_dtype_rejected(self):
        d = Disk(8)
        ids = d.allocate(1)
        with pytest.raises(BlockSizeError):
            d.write_many(ids, np.zeros(4))


class TestEMFileBatchedOps:
    def test_read_range_matches_per_block_reads(self):
        m1 = Machine(memory=256, block=8)
        m2 = Machine(memory=256, block=8)
        recs = blk(45)
        f1 = EMFile.from_records(m1, recs, counted=False)
        f2 = EMFile.from_records(m2, recs, counted=False)
        m1.disk.start_trace()
        m2.disk.start_trace()

        parts = [f1.read_block(i) for i in range(1, 4)]
        out = f2.read_range(1, 4)

        assert np.array_equal(composite(np.concatenate(parts)), composite(out))
        assert observable_state(m1.disk) == observable_state(m2.disk)
        assert m1.disk.stop_trace() == m2.disk.stop_trace()

    def test_read_range_whole_file_and_empty_range(self):
        mach = Machine(memory=256, block=8)
        f = EMFile.from_records(mach, blk(20), counted=False)
        mach.reset_counters()
        assert np.array_equal(f.read_range(0, f.num_blocks)["key"], np.arange(20))
        assert mach.io.reads == f.num_blocks
        assert len(f.read_range(2, 2)) == 0

    def test_read_range_bounds_checked(self):
        mach = Machine(memory=256, block=8)
        f = EMFile.from_records(mach, blk(20), counted=False)
        for start, stop in [(-1, 2), (0, 4), (2, 1)]:
            with pytest.raises(FileError):
                f.read_range(start, stop)

    def test_append_blocks_matches_append_block(self):
        m1 = Machine(memory=256, block=8)
        m2 = Machine(memory=256, block=8)
        data = blk(21)
        f1 = EMFile(m1)
        for start in range(0, len(data), 8):
            f1.append_block(data[start : start + 8])
        f2 = EMFile(m2)
        f2.append_blocks(data)
        assert observable_state(m1.disk) == observable_state(m2.disk)
        assert f1.num_blocks == f2.num_blocks == 3
        assert np.array_equal(f1.to_numpy()["key"], f2.to_numpy()["key"])

    def test_append_blocks_requires_full_last_block(self):
        mach = Machine(memory=256, block=8)
        f = EMFile(mach)
        f.append_blocks(blk(5))  # partial last block
        with pytest.raises(FileError):
            f.append_blocks(blk(8))

    def test_append_blocks_does_not_leak_on_failure(self):
        mach = Machine(memory=256, block=8)
        f = EMFile(mach)
        live = mach.disk.live_blocks
        with pytest.raises(FileError):
            f.append_blocks(np.zeros(4))  # wrong dtype
        assert mach.disk.live_blocks == live
        assert f.num_blocks == 0

    def test_from_records_counted_parity(self):
        mach = Machine(memory=256, block=8)
        f = EMFile.from_records(mach, blk(30), counted=True)
        assert mach.io.writes == f.num_blocks == 4
        assert mach.io.reads == 0
        assert np.array_equal(f.to_numpy()["key"], np.arange(30))


class TestScanEquivalence:
    def test_full_scan_counters_equal_per_block_scan(self):
        from repro.em import scan_chunks

        m1 = Machine(memory=512, block=8)
        m2 = Machine(memory=512, block=8)
        recs = blk(333)
        f1 = EMFile.from_records(m1, recs, counted=False)
        f2 = EMFile.from_records(m2, recs, counted=False)
        m1.disk.start_trace()
        m2.disk.start_trace()

        with m1.phase("scan"):
            got1 = [f1.read_block(i) for i in range(f1.num_blocks)]
        with m2.phase("scan"):
            with scan_chunks(f2, m2.load_limit, "scan") as chunks:
                got2 = list(chunks)

        assert observable_state(m1.disk) == observable_state(m2.disk)
        assert m1.disk.stop_trace() == m2.disk.stop_trace()
        assert np.array_equal(
            composite(np.concatenate(got1)), composite(np.concatenate(got2))
        )

"""Tests for the baseline algorithms."""

import numpy as np
import pytest

from repro.analysis.verify import check_multiselect, check_partitioned, check_splitters
from repro.baselines import (
    multiselect_via_multipartition,
    multiselect_via_repeated_selection,
    sort_based_multiselect,
    sort_based_partition,
    sort_based_splitters,
)
from repro.core.multiselect import multi_select
from repro.em import Machine, SpecError, composite
from repro.workloads import few_distinct, load_input, random_permutation


@pytest.fixture
def setup():
    mach = Machine(memory=256, block=8)
    recs = random_permutation(2000, seed=70)
    f = load_input(mach, recs)
    return mach, recs, f


class TestSortBased:
    def test_splitters_valid(self, setup):
        mach, recs, f = setup
        res = sort_based_splitters(mach, f, 8, 100, 500)
        check_splitters(recs, res.splitters, 100, 500, 8)
        assert res.variant == "baseline/sort"

    def test_splitters_k1(self, setup):
        mach, recs, f = setup
        res = sort_based_splitters(mach, f, 1, 0, 2000)
        assert len(res.splitters) == 0

    def test_partition_valid(self, setup):
        mach, recs, f = setup
        pf = sort_based_partition(mach, f, 8, 100, 500)
        check_partitioned(recs, pf, 100, 500, 8)
        assert pf.partition_sizes == [250] * 8

    def test_partition_uneven_n(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(103, seed=71)
        f = load_input(mach, recs)
        pf = sort_based_partition(mach, f, 4, 0, 103)
        assert sorted(pf.partition_sizes, reverse=True) == [26, 26, 26, 25]
        check_partitioned(recs, pf, 0, 103, 4)

    def test_partition_more_parts_than_blocks(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(10, seed=72)
        f = load_input(mach, recs)
        pf = sort_based_partition(mach, f, 10, 1, 1)
        assert pf.partition_sizes == [1] * 10
        check_partitioned(recs, pf, 1, 1, 10)

    def test_multiselect_matches_core(self, setup):
        mach, recs, f = setup
        ranks = np.array([1, 7, 500, 500, 1999, 3])
        got = sort_based_multiselect(mach, f, ranks)
        check_multiselect(recs, ranks, got)

    def test_multiselect_bad_ranks(self, setup):
        mach, recs, f = setup
        with pytest.raises(SpecError):
            sort_based_multiselect(mach, f, np.array([0]))

    def test_multiselect_k_larger_than_memory(self):
        # The batched rank reader must handle K > M.
        mach = Machine(memory=64, block=8)
        recs = random_permutation(500, seed=73)
        f = load_input(mach, recs)
        ranks = np.arange(1, 401)
        got = sort_based_multiselect(mach, f, ranks)
        check_multiselect(recs, ranks, got)


class TestMultipartitionRoute:
    def test_matches_ground_truth(self, setup):
        mach, recs, f = setup
        ranks = np.array([100, 1, 1500, 2000, 100])
        got = multiselect_via_multipartition(mach, f, ranks)
        check_multiselect(recs, ranks, got)

    def test_duplicate_keys(self):
        mach = Machine(memory=256, block=8)
        recs = few_distinct(1000, seed=74, n_distinct=3)
        f = load_input(mach, recs)
        ranks = np.array([1, 500, 1000])
        got = multiselect_via_multipartition(mach, f, ranks)
        check_multiselect(recs, ranks, got)

    def test_agrees_with_core_multiselect(self, setup):
        mach, recs, f = setup
        ranks = np.linspace(1, 2000, 9).astype(np.int64)
        a = multiselect_via_multipartition(mach, f, ranks)
        b = multi_select(mach, f, ranks)
        assert np.array_equal(composite(a), composite(b))


class TestRepeatedSelection:
    def test_matches_ground_truth(self, setup):
        mach, recs, f = setup
        ranks = np.array([5, 1000, 1995])
        got = multiselect_via_repeated_selection(mach, f, ranks)
        check_multiselect(recs, ranks, got)

    def test_cost_scales_with_k(self, setup):
        mach, recs, f = setup
        mach.reset_counters()
        multiselect_via_repeated_selection(mach, f, np.array([1000]))
        one = mach.io.total
        mach.reset_counters()
        multiselect_via_repeated_selection(
            mach, f, np.array([100, 500, 1000, 1500])
        )
        four = mach.io.total
        assert four >= 3 * one

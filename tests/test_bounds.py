"""Tests for bound formulas and counting lemmas."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import (
    chain_cover_log2_upper,
    count_linear_extensions_bruteforce,
    decision_tree_min_ios,
    lemma5_condition,
    lemma5_min_ios,
    lg,
    lg_ratio,
    log2_binomial,
    log2_factorial,
    log2_multinomial_equal,
    multipartition_io,
    multiselect_io,
    partition_left_bound,
    partition_right_upper,
    pi_hard_log2,
    precise_partition_outcomes_log2,
    sort_io,
    splitters_left_bound,
    splitters_right_bound,
    splitters_two_sided_bound,
    theorem1_min_ios,
    theorem2_min_ios,
)


class TestLg:
    def test_floor_at_one(self):
        assert lg(0.5) == 1.0
        assert lg(1) == 1.0
        assert lg(2) == 1.0
        assert lg(8) == 3.0

    def test_base(self):
        assert lg(64, base=4) == 3.0

    def test_lg_ratio_uses_m_over_b(self):
        assert lg_ratio(64, 32, 8) == 3.0  # base 4

    def test_lg_ratio_base_floor(self):
        # Degenerate M/B < 2 falls back to base 2.
        assert lg_ratio(8, 8, 8) == 3.0

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            lg(10, base=1.0)


class TestFormulaShapes:
    def test_sort_dominates_scan(self):
        assert sort_io(10**6, 4096, 64) >= 10**6 / 64

    def test_splitters_right_sublinear_regime(self):
        n, m, b = 10**6, 4096, 64
        assert splitters_right_bound(n, 64, 4, m, b) < n / b

    def test_splitters_right_monotone_in_a(self):
        vals = [splitters_right_bound(10**6, 256, a, 4096, 64) for a in (1, 16, 256)]
        assert vals == sorted(vals)

    def test_splitters_left_monotone_in_b(self):
        n = 10**6
        vals = [splitters_left_bound(n, 100, bb, 512, 16) for bb in (10, 100, 10_000)]
        assert vals == sorted(vals, reverse=True)

    def test_two_sided_is_sum(self):
        n, k, a, bb, m, b = 10**6, 128, 100, 20_000, 4096, 64
        assert splitters_two_sided_bound(n, k, a, bb, m, b) == pytest.approx(
            splitters_right_bound(n, k, a, m, b)
            + splitters_left_bound(n, k, bb, m, b)
        )

    def test_partition_right_upper_at_least_scan(self):
        assert partition_right_upper(10**6, 64, 100, 4096, 64) >= 10**6 / 64

    def test_partition_left_saturates_at_sort(self):
        n, m, b = 10**6, 512, 16
        tiny_b = partition_left_bound(n, n, 1, m, b)
        assert tiny_b == pytest.approx(sort_io(n, m, b))

    def test_multiselect_below_multipartition(self):
        n, m, b = 10**6, 512, 16
        for k in (64, 256, 4096):
            assert multiselect_io(n, k, m, b) <= multipartition_io(n, k, m, b)

    def test_lemma5_condition(self):
        assert lemma5_condition(10**6, 4096, 64)
        assert not lemma5_condition(2**100, 4, 2)


class TestCountingExact:
    def test_log2_factorial_small(self):
        assert log2_factorial(5) == pytest.approx(math.log2(120))
        assert log2_factorial(0) == pytest.approx(0.0)

    def test_log2_binomial(self):
        assert log2_binomial(10, 3) == pytest.approx(math.log2(120))
        assert log2_binomial(5, 9) == float("-inf")

    def test_multinomial_equal(self):
        # 6!/(2!)^3 = 90.
        assert log2_multinomial_equal(6, 3) == pytest.approx(math.log2(90))
        with pytest.raises(ValueError):
            log2_multinomial_equal(7, 3)

    def test_pi_hard(self):
        # N=6, B=2: ((6/2)!)^2 = 36.
        assert pi_hard_log2(6, 2) == pytest.approx(math.log2(36))

    def test_decision_tree_min_ios(self):
        # 2^20 outcomes with C(M,B)=2^10 per I/O -> at least 2 I/Os.
        assert decision_tree_min_ios(20.0, 1024, 1) == pytest.approx(2.0)

    def test_lemma5_lower_bound_positive_and_below_upper(self):
        n, k, m, b = 65_536, 64, 512, 16
        lb = lemma5_min_ios(n, k, m, b)
        assert 0 < lb <= 3 * multipartition_io(n, k, m, b)

    def test_theorem_bounds_positive(self):
        assert theorem1_min_ios(10**6, 1024, 16, 512, 16) > 0
        assert theorem2_min_ios(10**6, 100, 64, 512, 16) > 0


class TestChainCover:
    def test_total_order_has_one_extension(self):
        # Width 1: only one linear extension -> log2 <= O(log n) slack = 0.
        assert chain_cover_log2_upper(10, 1) == pytest.approx(0.0)

    def test_antichain_has_all_permutations(self):
        assert chain_cover_log2_upper(8, 8) == pytest.approx(log2_factorial(8))

    @given(n=st.integers(2, 9), width=st.integers(1, 9))
    @settings(max_examples=30, deadline=None)
    def test_upper_bounds_bruteforce_chain_partition(self, n, width):
        width = min(width, n)
        # Build the partial order that is exactly `width` disjoint chains
        # (balanced): the worst case for the given width, per Dilworth.
        chains = [list(range(i, n, width)) for i in range(width)]
        pairs = [
            (c[j], c[j + 1]) for c in chains for j in range(len(c) - 1)
        ]
        exact = count_linear_extensions_bruteforce(n, pairs)
        assert math.log2(exact) <= chain_cover_log2_upper(n, width) + 1e-9

    def test_bruteforce_cap(self):
        with pytest.raises(ValueError):
            count_linear_extensions_bruteforce(10, [])

    def test_bruteforce_known_values(self):
        # Two 2-chains: 4!/ (2!2!) = 6 extensions.
        assert count_linear_extensions_bruteforce(4, [(0, 1), (2, 3)]) == 6
        # Empty order: n! extensions.
        assert count_linear_extensions_bruteforce(3, []) == 6


class TestOrderTheoryFacts:
    """Cross-check the Fact 4 / Fact 5 counting identities (paper §2)
    against brute-force enumeration on tiny instances."""

    @given(sizes=st.lists(st.integers(0, 3), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_fact4_ordered_groups_exact(self, sizes):
        from repro.bounds import ordered_groups_log2

        n = sum(sizes)
        if n > 8:
            return
        # Build the cross-group order: every element of group i below
        # every element of group j for i < j.
        pairs, start = [], 0
        groups = []
        for g in sizes:
            groups.append(list(range(start, start + g)))
            start += g
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                pairs.extend((x, y) for x in groups[i] for y in groups[j])
        exact = count_linear_extensions_bruteforce(n, pairs)
        assert math.log2(exact) == pytest.approx(ordered_groups_log2(sizes))

    @given(
        n=st.integers(2, 7),
        k=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_fact5_upper_bounds_random_orders(self, n, k, seed):
        from repro.bounds import fact5_subset_log2_upper

        k = min(k, n - 1)
        rng = np.random.default_rng(seed)
        # Random DAG-ish partial order: i < j may be ordered.
        pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.4
        ]
        y = set(rng.choice(n, size=k, replace=False).tolist())
        cp_x = count_linear_extensions_bruteforce(n, pairs)

        def restricted(subset):
            nodes = sorted(subset)
            remap = {v: i for i, v in enumerate(nodes)}
            sub_pairs = [
                (remap[a], remap[b]) for a, b in pairs if a in subset and b in subset
            ]
            return count_linear_extensions_bruteforce(len(nodes), sub_pairs)

        cp_y = restricted(y)
        cp_rest = restricted(set(range(n)) - y)
        bound = fact5_subset_log2_upper(
            n, k, math.log2(cp_y), math.log2(cp_rest)
        )
        assert math.log2(cp_x) <= bound + 1e-9

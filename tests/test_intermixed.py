"""Tests for §4.1 L-intermixed selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intermixed import group_sizes, intermixed_select, max_groups
from repro.em import Machine, SpecError, composite
from repro.em.records import make_records
from repro.workloads import load_input


def build_instance(n, L, seed, key_range=10**6):
    """Random instance with every group non-empty; returns (records, t)."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, key_range, size=n)
    grps = rng.integers(0, L, size=n)
    grps[:L] = np.arange(L)
    recs = make_records(keys, grps=grps)
    sizes = np.bincount(grps, minlength=L)
    t = rng.integers(1, sizes + 1)
    return recs, t


def ground_truth(recs, t):
    comps = composite(recs)
    out = []
    for i in range(len(t)):
        g = np.sort(comps[recs["grp"] == i])
        out.append(int(g[t[i] - 1]))
    return out


class TestCorrectness:
    @given(
        n=st.integers(1, 2000),
        l_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 400),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, n, l_frac, seed):
        mach = Machine(memory=256, block=8)
        L = 1 + int(l_frac * (min(n, max_groups(mach)) - 1))
        recs, t = build_instance(n, L, seed)
        d = load_input(mach, recs)
        ans = intermixed_select(mach, d, t)
        got = [int(c) for c in composite(ans)]
        assert got == ground_truth(recs, t)

    def test_heavy_duplicate_keys(self):
        mach = Machine(memory=256, block=8)
        recs, t = build_instance(1200, 6, seed=30, key_range=3)
        d = load_input(mach, recs)
        ans = intermixed_select(mach, d, t)
        assert [int(c) for c in composite(ans)] == ground_truth(recs, t)

    def test_single_group_is_selection(self):
        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(31)
        recs = make_records(rng.permutation(3000), grps=0)
        d = load_input(mach, recs)
        ans = intermixed_select(mach, d, np.array([1234]))
        assert int(composite(ans)[0]) == np.sort(composite(recs))[1233]

    def test_all_singleton_groups(self):
        mach = Machine(memory=4096, block=64)
        L = max_groups(mach)
        recs = make_records(np.arange(L), grps=np.arange(L))
        d = load_input(mach, recs)
        ans = intermixed_select(mach, d, np.ones(L, dtype=np.int64))
        assert list(ans["grp"]) == list(range(L))
        assert list(ans["key"]) == list(range(L))

    def test_extreme_ranks_per_group(self):
        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(32)
        keys = rng.permutation(2000)
        grps = np.repeat(np.arange(4), 500)
        recs = make_records(keys, grps=grps)
        d = load_input(mach, recs)
        ans = intermixed_select(mach, d, np.array([1, 500, 1, 500]))
        comps = composite(recs)
        for i, t in enumerate([1, 500, 1, 500]):
            g = np.sort(comps[grps == i])
            assert int(composite(ans[i : i + 1])[0]) == g[t - 1]


class TestValidation:
    def test_l_above_cap_rejected(self):
        mach = Machine(memory=256, block=8)
        L = max_groups(mach) + 1
        recs, t = build_instance(4 * L, L, seed=33)
        d = load_input(mach, recs)
        with pytest.raises(SpecError):
            intermixed_select(mach, d, t)

    def test_empty_group_rejected(self):
        mach = Machine(memory=256, block=8)
        recs = make_records(np.arange(10), grps=0)  # group 1 empty
        d = load_input(mach, recs)
        with pytest.raises(SpecError):
            intermixed_select(mach, d, np.array([1, 1]))

    def test_rank_out_of_range_rejected(self):
        mach = Machine(memory=256, block=8)
        recs = make_records(np.arange(10), grps=0)
        d = load_input(mach, recs)
        with pytest.raises(SpecError):
            intermixed_select(mach, d, np.array([11]))
        with pytest.raises(SpecError):
            intermixed_select(mach, d, np.array([0]))

    def test_empty_rank_list(self):
        mach = Machine(memory=256, block=8)
        recs = make_records(np.arange(10), grps=0)
        d = load_input(mach, recs)
        assert len(intermixed_select(mach, d, np.array([], dtype=np.int64))) == 0


class TestCost:
    def test_linear_io(self):
        mach = Machine(memory=4096, block=64)
        n = 60_000
        recs, t = build_instance(n, 64, seed=34)
        d = load_input(mach, recs)
        mach.reset_counters()
        intermixed_select(mach, d, t)
        assert mach.io.total <= 15 * (n // 64)

    def test_cost_insensitive_to_l(self):
        costs = []
        for L in (4, 64):
            mach = Machine(memory=4096, block=64)
            recs, t = build_instance(40_000, L, seed=35)
            d = load_input(mach, recs)
            mach.reset_counters()
            intermixed_select(mach, d, t)
            costs.append(mach.io.total)
        assert max(costs) <= 1.5 * min(costs)

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        recs, t = build_instance(30_000, 32, seed=36)
        d = load_input(mach, recs)
        intermixed_select(mach, d, t)
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == d.num_blocks
        assert mach.memory.peak <= mach.M


class TestGroupSizes:
    def test_counts(self):
        mach = Machine(memory=256, block=8)
        recs = make_records(np.arange(10), grps=np.array([0, 0, 1, 2, 2, 2, 0, 1, 1, 1]))
        d = load_input(mach, recs)
        sizes = group_sizes(mach, d, 3)
        assert list(sizes) == [3, 4, 3]

"""Tests for Theorem 4 multi-selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_multiselect
from repro.bounds.formulas import multiselect_io
from repro.core.intermixed import max_groups
from repro.core.multiselect import multi_select
from repro.em import Machine, SpecError, composite
from repro.workloads import few_distinct, load_input, random_permutation


class TestCorrectness:
    @given(
        n=st.integers(1, 4000),
        k=st.integers(1, 60),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, n, k, seed):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        rng = np.random.default_rng(seed + 1)
        ranks = rng.integers(1, n + 1, size=min(k, max_groups(mach) * 3))
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_base_case_regime(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(50_000, seed=50)
        f = load_input(mach, recs)
        k = max_groups(mach)  # largest base-case K
        ranks = np.linspace(1, 50_000, k).astype(np.int64)
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_general_case_regime(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(50_000, seed=51)
        f = load_input(mach, recs)
        k = 4 * max_groups(mach)  # forces the multi-partition split
        ranks = np.sort(
            np.random.default_rng(52).choice(
                np.arange(1, 50_001), size=k, replace=False
            )
        )
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_unsorted_and_duplicate_ranks(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=53)
        f = load_input(mach, recs)
        ranks = np.array([500, 1, 500, 1000, 2, 2])
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_all_ranks_identical(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=54)
        f = load_input(mach, recs)
        ranks = np.full(20, 777)
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_heavy_duplicates_in_data(self):
        mach = Machine(memory=256, block=8)
        recs = few_distinct(2000, seed=55, n_distinct=5)
        f = load_input(mach, recs)
        ranks = np.array([1, 400, 401, 1000, 1999, 2000])
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)

    def test_quantile_pattern(self):
        # The usage pattern of every splitters algorithm.
        mach = Machine(memory=4096, block=64)
        n, k = 30_000, 16
        recs = random_permutation(n, seed=56)
        f = load_input(mach, recs)
        ranks = (np.arange(1, k) * n) // k
        ans = multi_select(mach, f, ranks)
        check_multiselect(recs, ranks, ans)


class TestValidation:
    def test_rank_bounds(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=57))
        with pytest.raises(SpecError):
            multi_select(mach, f, [0])
        with pytest.raises(SpecError):
            multi_select(mach, f, [101])
        with pytest.raises(SpecError):
            multi_select(mach, f, [])


class TestCost:
    def test_small_k_is_linear(self):
        mach = Machine(memory=4096, block=64)
        n = 80_000
        f = load_input(mach, random_permutation(n, seed=58))
        mach.reset_counters()
        multi_select(mach, f, [n // 3, 2 * n // 3])
        assert mach.io.total <= 8 * (n // 64)

    def test_io_within_constant_of_bound(self):
        mach = Machine(memory=4096, block=64)
        n, k = 60_000, 256
        f = load_input(mach, random_permutation(n, seed=59))
        ranks = np.linspace(1, n, k).astype(np.int64)
        mach.reset_counters()
        multi_select(mach, f, ranks)
        bound = multiselect_io(n, k, mach.M, mach.B)
        assert mach.io.total <= 20 * bound

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(40_000, seed=60))
        ranks = np.linspace(1, 40_000, 200).astype(np.int64)
        multi_select(mach, f, ranks)
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == f.num_blocks
        assert mach.memory.peak <= mach.M

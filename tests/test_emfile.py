"""Unit tests for EMFile block layout and lifecycle."""

import numpy as np
import pytest

from repro.em import EMFile, FileError, Machine
from repro.em.records import make_records


@pytest.fixture
def mach():
    return Machine(memory=64, block=8)


def recs(n, start=0):
    return make_records(np.arange(start, start + n))


class TestFromRecords:
    def test_layout_full_blocks(self, mach):
        f = EMFile.from_records(mach, recs(24))
        assert len(f) == 24
        assert f.num_blocks == 3

    def test_layout_partial_last_block(self, mach):
        f = EMFile.from_records(mach, recs(20))
        assert f.num_blocks == 3
        assert len(f.read_block(2)) == 4

    def test_counted_charges_writes(self, mach):
        EMFile.from_records(mach, recs(20))
        assert mach.io.writes == 3
        assert mach.io.reads == 0

    def test_uncounted_is_free(self, mach):
        EMFile.from_records(mach, recs(20), counted=False)
        assert mach.io.total == 0

    def test_empty_file(self, mach):
        f = EMFile.from_records(mach, recs(0))
        assert len(f) == 0
        assert f.num_blocks == 0

    def test_wrong_dtype_rejected(self, mach):
        with pytest.raises(FileError):
            EMFile.from_records(mach, np.zeros(4))


class TestBlockOps:
    def test_read_block_out_of_range(self, mach):
        f = EMFile.from_records(mach, recs(8))
        with pytest.raises(FileError):
            f.read_block(1)

    def test_write_block_roundtrip(self, mach):
        f = EMFile.from_records(mach, recs(16))
        f.write_block(0, recs(8, start=100))
        assert f.read_block(0)["key"][0] == 100

    def test_interior_block_must_be_full(self, mach):
        f = EMFile.from_records(mach, recs(16))
        with pytest.raises(FileError):
            f.write_block(0, recs(4))

    def test_last_block_resize_updates_length(self, mach):
        f = EMFile.from_records(mach, recs(20))
        f.write_block(2, recs(2))
        assert len(f) == 18

    def test_append_block(self, mach):
        f = EMFile.from_records(mach, recs(16))
        f.append_block(recs(5))
        assert len(f) == 21
        assert f.num_blocks == 3

    def test_append_to_partial_fails(self, mach):
        f = EMFile.from_records(mach, recs(20))
        with pytest.raises(FileError):
            f.append_block(recs(8))

    def test_append_empty_is_noop(self, mach):
        f = EMFile.from_records(mach, recs(16))
        f.append_block(recs(0))
        assert f.num_blocks == 2

    def test_iter_blocks_counts(self, mach):
        f = EMFile.from_records(mach, recs(24))
        mach.reset_counters()
        blocks = list(f.iter_blocks())
        assert len(blocks) == 3
        assert mach.io.reads == 3


class TestWholeFile:
    def test_to_numpy_uncounted_default(self, mach):
        data = recs(20)
        f = EMFile.from_records(mach, data)
        mach.reset_counters()
        out = f.to_numpy()
        assert np.array_equal(out["key"], data["key"])
        assert mach.io.total == 0

    def test_to_numpy_counted(self, mach):
        f = EMFile.from_records(mach, recs(20))
        mach.reset_counters()
        f.to_numpy(counted=True)
        assert mach.io.reads == 3


class TestLifecycle:
    def test_free_releases_blocks(self, mach):
        f = EMFile.from_records(mach, recs(24))
        live = mach.disk.live_blocks
        f.free()
        assert mach.disk.live_blocks == live - 3

    def test_free_idempotent(self, mach):
        f = EMFile.from_records(mach, recs(8))
        f.free()
        f.free()

    def test_use_after_free_fails(self, mach):
        f = EMFile.from_records(mach, recs(8))
        f.free()
        with pytest.raises(FileError):
            f.read_block(0)

"""Cross-module integration tests: all algorithms on one shared dataset,
consistency between independent routes to the same answer, and global
resource-hygiene invariants.
"""

import numpy as np
import pytest

from repro.alg import external_sort, multi_partition, select_rank, select_rank_fast
from repro.analysis.verify import (
    check_multiselect,
    check_partitioned,
    check_splitters,
)
from repro.baselines import (
    multiselect_via_multipartition,
    sort_based_multiselect,
    sort_based_splitters,
)
from repro.core import (
    approximate_partition,
    approximate_splitters,
    multi_select,
    precise_partition_via_approx,
)
from repro.em import Machine, composite
from repro.workloads import load_input, uniform_random

N = 30_000
K = 32


@pytest.fixture(scope="module")
def dataset():
    return uniform_random(N, seed=90)


def fresh(dataset):
    mach = Machine(memory=4096, block=64)
    return mach, load_input(mach, dataset)


class TestConsistency:
    def test_three_multiselect_routes_agree(self, dataset):
        ranks = np.linspace(1, N, 25).astype(np.int64)
        answers = []
        for solver in (
            multi_select,
            multiselect_via_multipartition,
            sort_based_multiselect,
        ):
            mach, f = fresh(dataset)
            answers.append(composite(solver(mach, f, ranks)))
        assert np.array_equal(answers[0], answers[1])
        assert np.array_equal(answers[0], answers[2])

    def test_both_selections_agree_with_multiselect(self, dataset):
        rank = N // 3
        mach, f = fresh(dataset)
        a = select_rank(mach, f, rank)
        b = select_rank_fast(mach, f, rank)
        c = multi_select(mach, f, [rank])[0]
        assert a == b == c

    def test_splitters_consistent_with_partitioning(self, dataset):
        # Partition sizes induced by the splitters and materialized by the
        # partitioning algorithm must both satisfy the same (a, b).
        a, b = 300, 4000
        mach, f = fresh(dataset)
        res = approximate_splitters(mach, f, K, a, b)
        sizes_s = check_splitters(dataset, res.splitters, a, b, K)
        mach, f = fresh(dataset)
        pf = approximate_partition(mach, f, K, a, b)
        sizes_p = check_partitioned(dataset, pf, a, b, K)
        assert sum(sizes_s) == sum(sizes_p) == N

    def test_sort_based_and_core_splitters_both_valid(self, dataset):
        a, b = 0, 2000
        for solver in (approximate_splitters, sort_based_splitters):
            mach, f = fresh(dataset)
            res = solver(mach, f, K, a, b)
            check_splitters(dataset, res.splitters, a, b, K)

    def test_reduction_equals_direct_multipartition(self, dataset):
        part = 1500
        mach, f = fresh(dataset)
        via = precise_partition_via_approx(mach, f, part)
        mach2, f2 = fresh(dataset)
        direct = multi_partition(mach2, f2, [part] * (N // part))
        got = [np.sort(composite(p)) for p in via.to_numpy_partitions()]
        want = [np.sort(composite(p)) for p in direct.to_numpy_partitions()]
        for g, w in zip(got, want):
            assert np.array_equal(g, w)


class TestHygiene:
    def test_full_pipeline_resource_invariants(self, dataset):
        mach, f = fresh(dataset)
        out = external_sort(mach, f)
        out.free()
        res = approximate_splitters(mach, f, K, 300, 4000)
        pf = approximate_partition(mach, f, K, 300, 4000)
        pf.free()
        ranks = np.linspace(1, N, 40).astype(np.int64)
        ans = multi_select(mach, f, ranks)
        check_multiselect(dataset, ranks, ans)
        check_splitters(dataset, res.splitters, 300, 4000, K)
        # After everything: no leases held, no temp blocks leaked, memory
        # never exceeded M.
        assert mach.memory.in_use == 0
        assert mach.memory.peak <= mach.M
        assert mach.disk.live_blocks == f.num_blocks

    def test_input_never_mutated(self, dataset):
        mach, f = fresh(dataset)
        approximate_partition(mach, f, K, 0, 2000).free()
        multi_select(mach, f, [1, N // 2, N])
        assert np.array_equal(f.to_numpy()["key"], dataset["key"])
        assert np.array_equal(f.to_numpy()["uid"], dataset["uid"])

    def test_tight_memory_machine_still_works(self, dataset):
        # M = 5B, the practical minimum (a 3-buffer partition pass plus a
        # 2-way merge workspace must fit); only trivial fanouts available,
        # but nothing may crash or overrun the budget.
        mach = Machine(memory=40, block=8)
        small = uniform_random(400, seed=91)
        f = load_input(mach, small)
        x = select_rank_fast(mach, f, 200)
        srt = np.sort(composite(small))
        assert int(composite(np.array([x]))[0]) == srt[199]
        assert mach.memory.peak <= mach.M

"""Validity matrix: every algorithm × every registered workload family.

Systematic coverage that no input shape (sorted, reversed, nearly-sorted,
organ-pipe, heavy duplicates, Zipf, interleaved runs, ...) breaks any of
the three problem solvers.
"""

import numpy as np
import pytest

from repro.analysis.verify import (
    check_multiselect,
    check_partitioned,
    check_splitters,
)
from repro.core import approximate_partition, approximate_splitters, multi_select
from repro.em import Machine
from repro.workloads import WORKLOADS, load_input

N = 4000
K = 16
A, B = N // (4 * K), 4 * (N // K)


def fresh(gen):
    mach = Machine(memory=1024, block=16)
    recs = gen(N, seed=123)
    return mach, recs, load_input(mach, recs)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_splitters_on_every_workload(name):
    mach, recs, f = fresh(WORKLOADS[name])
    res = approximate_splitters(mach, f, K, A, B)
    check_splitters(recs, res.splitters, A, B, K)
    assert mach.memory.in_use == 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_partitioning_on_every_workload(name):
    mach, recs, f = fresh(WORKLOADS[name])
    pf = approximate_partition(mach, f, K, A, B)
    check_partitioned(recs, pf, A, B, K)
    pf.free()
    assert mach.disk.live_blocks == f.num_blocks


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_multiselect_on_every_workload(name):
    mach, recs, f = fresh(WORKLOADS[name])
    ranks = np.linspace(1, N, 12).astype(np.int64)
    ans = multi_select(mach, f, ranks)
    check_multiselect(recs, ranks, ans)
    assert mach.memory.peak <= mach.M

"""Tests for randomized sampling and Las Vegas splitters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.randomized import block_sample, randomized_splitters, reservoir_sample
from repro.analysis.verify import check_splitters
from repro.bounds.probabilistic import rank_error_for_sample, sample_size_for_window
from repro.em import Machine, SpecError, composite
from repro.workloads import load_input, random_permutation, sorted_keys


class TestProbabilisticCalculus:
    def test_sample_size_monotonicity(self):
        n, k = 10**6, 64
        loose = sample_size_for_window(n, k, n // (2 * k), 2 * n // k, 0.05)
        tight = sample_size_for_window(
            n, k, int(0.9 * n / k), int(1.1 * n / k), 0.05
        )
        assert tight > loose
        stricter = sample_size_for_window(n, k, n // (2 * k), 2 * n // k, 0.001)
        assert stricter > loose

    def test_no_slack_rejected(self):
        with pytest.raises(ValueError):
            sample_size_for_window(1000, 10, 100, 100, 0.05)

    def test_rank_error_shrinks_with_sample(self):
        e1 = rank_error_for_sample(10**6, 1000, 0.05, 64)
        e2 = rank_error_for_sample(10**6, 100_000, 0.05, 64)
        assert e2 < e1

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_error_for_sample(100, 0, 0.05, 4)
        with pytest.raises(ValueError):
            rank_error_for_sample(100, 10, 1.5, 4)


class TestReservoir:
    def test_exact_size_and_membership(self):
        mach = Machine(memory=1024, block=16)
        recs = random_permutation(5000, seed=1)
        f = load_input(mach, recs)
        sample = reservoir_sample(mach, f, 200, seed=2)
        assert len(sample) == 200
        assert set(composite(sample).tolist()) <= set(composite(recs).tolist())
        assert len(np.unique(composite(sample))) == 200  # without replacement

    def test_one_scan_io(self):
        mach = Machine(memory=1024, block=16)
        n = 8000
        f = load_input(mach, random_permutation(n, seed=3))
        mach.reset_counters()
        reservoir_sample(mach, f, 100, seed=4)
        assert mach.io.total == f.num_blocks

    def test_uniformity_rough(self):
        # Mean of a 500-sample from keys 0..9999 should land near 5000.
        mach = Machine(memory=2048, block=16)
        recs = random_permutation(10_000, seed=5)
        f = load_input(mach, recs)
        means = []
        for seed in range(5):
            s = reservoir_sample(mach, f, 500, seed=seed)
            means.append(float(s["key"].mean()))
        assert abs(np.mean(means) - 4999.5) < 300

    def test_sample_whole_file(self):
        mach = Machine(memory=1024, block=16)
        recs = random_permutation(300, seed=6)
        f = load_input(mach, recs)
        s = reservoir_sample(mach, f, 300, seed=7)
        assert set(composite(s).tolist()) == set(composite(recs).tolist())

    def test_validation(self):
        mach = Machine(memory=1024, block=16)
        f = load_input(mach, random_permutation(100, seed=8))
        with pytest.raises(SpecError):
            reservoir_sample(mach, f, 0)
        with pytest.raises(SpecError):
            reservoir_sample(mach, f, 101)


class TestBlockSample:
    def test_cheap_io(self):
        mach = Machine(memory=1024, block=16)
        n = 8000
        f = load_input(mach, random_permutation(n, seed=9))
        mach.reset_counters()
        s = block_sample(mach, f, 64, seed=10)
        assert len(s) == 64
        assert mach.io.total == 4  # ceil(64/16) blocks

    def test_clustered_bias_on_sorted_input(self):
        # On sorted data a block sample covers only a few key ranges —
        # its key-range spread is far below a uniform sample's.
        mach = Machine(memory=2048, block=16)
        n = 16_000
        recs = sorted_keys(n)
        f = load_input(mach, recs)
        bs = block_sample(mach, f, 64, seed=11)
        distinct_blocks = len(np.unique(np.asarray(bs["key"]) // 16))
        assert distinct_blocks <= 4  # all samples from <= 4 key clusters


class TestRandomizedSplitters:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_output_always_valid(self, seed):
        mach = Machine(memory=2048, block=16)
        n, k = 6000, 8
        a, b = n // (2 * k), 2 * n // k
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        splitters, attempts = randomized_splitters(
            mach, f, k, a, b, delta=0.1, seed=seed
        )
        check_splitters(recs, splitters, a, b, k)
        assert attempts >= 1

    def test_usually_one_attempt(self):
        mach = Machine(memory=4096, block=64)
        n, k = 40_000, 8
        recs = random_permutation(n, seed=12)
        f = load_input(mach, recs)
        _, attempts = randomized_splitters(
            mach, f, k, n // (2 * k), 2 * n // k, delta=0.05, seed=13
        )
        assert attempts == 1

    def test_k1(self):
        mach = Machine(memory=1024, block=16)
        f = load_input(mach, random_permutation(100, seed=14))
        splitters, attempts = randomized_splitters(mach, f, 1, 0, 100)
        assert len(splitters) == 0

    def test_too_tight_window_raises(self):
        mach = Machine(memory=1024, block=16)
        n, k = 2000, 8
        f = load_input(mach, random_permutation(n, seed=15))
        with pytest.raises((SpecError, ValueError)):
            randomized_splitters(mach, f, k, n // k, n // k, delta=0.05)

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(20_000, seed=16))
        randomized_splitters(mach, f, 16, 300, 5000, delta=0.1, seed=17)
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == f.num_blocks

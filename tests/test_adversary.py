"""Tests for the operational Theorem 1 adversary."""

import numpy as np
import pytest

from repro.analysis.verify import VerificationError, check_splitters
from repro.bounds.adversary import fool_right_grounded
from repro.core.splitters import right_grounded_splitters
from repro.em import Machine, composite
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation


def record_level_seen(machine, file):
    """Indices of records in blocks the algorithm read."""
    seen = []
    read = machine.disk.read_block_ids
    B = machine.B
    for i, bid in enumerate(file.block_ids):
        if bid in read:
            seen.extend(range(i * B, min((i + 1) * B, len(file))))
    return seen


class TestOurAlgorithmIsImmune:
    @pytest.mark.parametrize("k,a", [(16, 4), (64, 16), (8, 100)])
    def test_right_grounded_cannot_be_fooled(self, k, a):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(20_000, seed=30)
        f = load_input(mach, recs)
        mach.reset_counters()
        res = right_grounded_splitters(mach, f, k, a)
        seen = record_level_seen(mach, f)
        # Even though the algorithm read only a fraction of the input...
        assert len(seen) < len(recs)
        # ...every partition holds >= a seen elements: fooling impossible.
        assert fool_right_grounded(recs, seen, res.splitters, a) is None


class TestLazyAlgorithmIsFooled:
    def test_strawman_gets_fooled(self):
        # Strawman: read only the first block and use its smallest K-1
        # records as "splitters" — sublinear, but it never guaranteed a
        # seen elements per partition.
        mach = Machine(memory=4096, block=64)
        n, k, a = 20_000, 8, 16
        recs = random_permutation(n, seed=31)
        f = load_input(mach, recs)
        mach.reset_counters()
        block = f.read_block(0)
        splitters = sort_records(block)[: k - 1]
        seen = record_level_seen(mach, f)

        fooled = fool_right_grounded(recs, seen, splitters, a)
        assert fooled is not None
        # The adversary's instance really breaks the output...
        with pytest.raises(VerificationError):
            check_splitters(fooled, _remap(fooled, splitters), a, n, k)
        # ...while preserving the relative order of everything the
        # strawman actually saw (its comparisons still hold).
        orig_seen = recs[np.asarray(seen)]
        new_seen = fooled[np.asarray(seen)]
        assert np.array_equal(
            np.argsort(composite(orig_seen)), np.argsort(composite(new_seen))
        )

    def test_fooling_threshold_matches_theorem(self):
        # An algorithm that sees everything is always immune.
        mach = Machine(memory=4096, block=64)
        n, k, a = 2_000, 4, 100
        recs = random_permutation(n, seed=32)
        srt = sort_records(recs)
        splitters = srt[[499, 999, 1499]]
        all_seen = range(n)
        assert fool_right_grounded(recs, all_seen, splitters, a) is None
        # The same splitters with too few other seen elements are foolable
        # (the splitters themselves must have been read — outputting an
        # unseen record is an invalid execution and is rejected).
        splitter_positions = [
            int(np.flatnonzero(recs["uid"] == u)[0]) for u in splitters["uid"]
        ]
        few_seen = list(range(100)) + splitter_positions
        assert fool_right_grounded(recs, few_seen, splitters, a) is not None
        with pytest.raises(ValueError, match="never read"):
            fool_right_grounded(recs, range(1), splitters, a)


def _remap(fooled, splitters):
    """The splitter records under the adversary's reassigned keys."""
    uid_to_pos = {int(u): i for i, u in enumerate(fooled["uid"])}
    return fooled[[uid_to_pos[int(u)] for u in splitters["uid"]]]

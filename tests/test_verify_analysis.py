"""Tests for the verification, fitting, and reporting helpers."""

import numpy as np
import pytest

from repro.alg.partitioned import PartitionedFile
from repro.analysis import (
    VerificationError,
    check_multiselect,
    check_partitioned,
    check_sorted,
    check_splitters,
    fit_constant,
    format_value,
    induced_partition_sizes,
    ratio_stats,
    render_kv,
    render_table,
    theta_match,
)
from repro.em import EMFile, Machine
from repro.em.records import make_records, sort_records
from repro.workloads import random_permutation


class TestCheckSplitters:
    def _data(self, n=100):
        return random_permutation(n, seed=80)

    def test_accepts_valid(self):
        data = self._data()
        srt = sort_records(data)
        splitters = srt[[24, 49, 74]]
        sizes = check_splitters(data, splitters, 20, 30, 4)
        assert list(sizes) == [25, 25, 25, 25]

    def test_rejects_wrong_count(self):
        data = self._data()
        with pytest.raises(VerificationError, match="K-1"):
            check_splitters(data, sort_records(data)[[50]], 0, 100, 3)

    def test_rejects_nonelement_splitter(self):
        data = self._data()
        fake = make_records(np.array([10**8]))
        with pytest.raises(VerificationError, match="not an element"):
            check_splitters(data, fake, 0, 100, 2)

    def test_rejects_size_violations(self):
        data = self._data()
        srt = sort_records(data)
        with pytest.raises(VerificationError, match="below a"):
            check_splitters(data, srt[[4]], 10, 100, 2)
        with pytest.raises(VerificationError, match="above b"):
            check_splitters(data, srt[[4]], 0, 90, 2)

    def test_induced_sizes_duplicates(self):
        data = make_records(np.array([5, 5, 5, 7]))
        splitter = data[1:2]  # the (5, uid=1) element
        sizes = induced_partition_sizes(data, splitter)
        assert list(sizes) == [2, 2]


class TestCheckPartitioned:
    def _pf(self, mach, parts):
        segs = [EMFile.from_records(mach, p, counted=False) for p in parts]
        return PartitionedFile(
            mach, segs, list(range(len(parts))), [len(p) for p in parts]
        )

    def test_accepts_valid(self):
        mach = Machine(memory=256, block=8)
        data = random_permutation(60, seed=81)
        srt = sort_records(data)
        pf = self._pf(mach, [srt[:20], srt[20:]])
        check_partitioned(data, pf, 20, 40, 2)

    def test_rejects_overlap(self):
        mach = Machine(memory=256, block=8)
        data = random_permutation(60, seed=82)
        srt = sort_records(data)
        pf = self._pf(mach, [srt[10:30], srt[:10]])
        with pytest.raises(VerificationError, match="overlaps"):
            check_partitioned(data, pf, 0, 60, 2)

    def test_rejects_wrong_multiset(self):
        mach = Machine(memory=256, block=8)
        data = random_permutation(60, seed=83)
        other = sort_records(random_permutation(60, seed=84))
        pf = self._pf(mach, [other[:30], other[30:]])
        with pytest.raises(VerificationError):
            check_partitioned(data, pf, 0, 60, 2)

    def test_rejects_size_out_of_range(self):
        mach = Machine(memory=256, block=8)
        data = random_permutation(60, seed=85)
        srt = sort_records(data)
        pf = self._pf(mach, [srt[:10], srt[10:]])
        with pytest.raises(VerificationError, match="outside"):
            check_partitioned(data, pf, 20, 60, 2)


class TestCheckMultiselectSorted:
    def test_multiselect_happy_and_sad(self):
        data = random_permutation(50, seed=86)
        srt = sort_records(data)
        check_multiselect(data, np.array([1, 25]), srt[[0, 24]])
        with pytest.raises(VerificationError, match="rank 25"):
            check_multiselect(data, np.array([1, 25]), srt[[0, 25]])
        with pytest.raises(VerificationError, match="count"):
            check_multiselect(data, np.array([1, 25]), srt[[0]])

    def test_sorted_happy_and_sad(self):
        data = random_permutation(50, seed=87)
        check_sorted(data, sort_records(data))
        with pytest.raises(VerificationError):
            check_sorted(data, data)  # unsorted permutation


class TestFit:
    def test_ratio_stats(self):
        s = ratio_stats([10, 20, 40], [1, 2, 4])
        assert s.mean_ratio == pytest.approx(10.0)
        assert s.spread == pytest.approx(1.0)

    def test_theta_match(self):
        assert theta_match([10, 21, 39], [1, 2, 4], max_spread=1.2)
        assert not theta_match([10, 100], [1, 2], max_spread=3.0)

    def test_fit_constant(self):
        assert fit_constant([2, 4, 6], [1, 2, 3]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ratio_stats([1], [1, 2])
        with pytest.raises(ValueError):
            ratio_stats([1], [0])
        with pytest.raises(ValueError):
            fit_constant([1], [0])


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["x", "value"], [(1, 2.5), (10, 1234.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[2] and "value" in lines[2]
        assert "1,234" in out

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.123456) == "0.123"
        assert format_value(12345) == "12,345"
        assert format_value(15.234) == "15.2"
        assert format_value("s") == "s"
        assert format_value(0.0) == "0"

    def test_render_kv(self):
        out = render_kv([("alpha", 1), ("b", 2)])
        assert "alpha : 1" in out
        assert render_kv([]) == ""


class TestTrace:
    def test_phase_breakdown_sorted_and_shares(self):
        from repro.analysis import phase_breakdown
        from repro.em.disk import IOCounters

        c = IOCounters(reads=7, writes=3,
                       by_phase={"big": (5, 2), "": (2, 1)})
        rows = phase_breakdown(c)
        assert rows[0][0] == "big"
        assert rows[0][3] == 7 and rows[1][0] == "(untagged)"
        assert abs(sum(r[4] for r in rows) - 1.0) < 1e-9

    def test_phase_breakdown_hierarchical(self):
        from repro.analysis import phase_breakdown, phase_total
        from repro.em.disk import IOCounters

        c = IOCounters(
            reads=10, writes=4,
            by_phase={
                "partition": (1, 0),
                "partition/distribute": (4, 3),
                "partition/distribute/flush": (0, 1),
                "scan": (5, 0),
            },
        )
        rows = phase_breakdown(c)
        assert [r[0] for r in rows] == [
            "partition", "partition/distribute",
            "partition/distribute/flush", "scan",
        ]
        # Parent totals are inclusive of nested phases.
        assert rows[0][1:4] == (5, 4, 9)
        assert rows[1][1:4] == (4, 4, 8)
        assert phase_total(c, "partition") == 9
        assert phase_total(c, "partition/distribute") == 8
        assert phase_total(c, "scan") == 5
        assert phase_total(c, "part") == 0  # prefix is path-wise, not string-wise

    def test_render_phase_breakdown_indents_nested(self):
        from repro.analysis import render_phase_breakdown
        from repro.em.disk import IOCounters

        c = IOCounters(reads=2, writes=0,
                       by_phase={"a": (1, 0), "a/b": (1, 0)})
        out = render_phase_breakdown(c)
        assert "  b" in out and "a/b" not in out

    def test_render_phase_breakdown_empty(self):
        from repro.analysis import render_phase_breakdown
        from repro.em.disk import IOCounters

        assert "no I/O" in render_phase_breakdown(IOCounters())

    def test_render_accepts_machine(self):
        from repro.analysis import render_phase_breakdown
        from repro.em import Machine
        from repro.em.records import make_records
        import numpy as np

        mach = Machine(memory=64, block=8)
        (bid,) = mach.disk.allocate(1)
        with mach.phase("setup"):
            mach.disk.write(bid, make_records(np.arange(3)))
        assert "setup" in render_phase_breakdown(mach)


class TestAccessStats:
    def test_pure_sequential(self):
        from repro.analysis import access_stats

        s = access_stats([("r", i) for i in range(10)])
        assert s.read_sequentiality == 1.0
        assert s.read_mean_run == 10.0
        assert s.writes == 0

    def test_pure_random(self):
        from repro.analysis import access_stats

        s = access_stats([("r", i) for i in (5, 1, 9, 3, 7)])
        assert s.read_sequentiality == 0.0
        assert s.read_mean_run == 1.0

    def test_mixed_directions_independent(self):
        from repro.analysis import access_stats

        trace = [("r", 0), ("w", 100), ("r", 1), ("w", 101), ("r", 2)]
        s = access_stats(trace)
        assert s.read_sequentiality == 1.0
        assert s.write_sequentiality == 1.0
        assert (s.reads, s.writes) == (3, 2)

    def test_empty_and_singleton(self):
        from repro.analysis import access_stats

        s = access_stats([])
        assert s.reads == 0 and s.read_sequentiality == 0.0
        assert s.read_mean_run == 0.0
        s = access_stats([("w", 7)])
        assert s.writes == 1 and s.write_mean_run == 1.0
        assert s.write_sequentiality == 0.0

    def test_disk_trace_capture(self):
        import numpy as np
        from repro.analysis import access_stats
        from repro.em import Machine
        from repro.em.records import make_records

        mach = Machine(memory=64, block=8)
        ids = mach.disk.allocate(3)
        for i in ids:
            mach.disk.write(i, make_records(np.arange(2)))
        mach.disk.start_trace()
        mach.disk.read(ids[0])
        mach.disk.read(ids[1])
        with mach.disk.uncounted():
            mach.disk.read(ids[2])  # uncounted: not traced
        trace = mach.disk.stop_trace()
        assert trace == [("r", ids[0]), ("r", ids[1])]
        assert mach.disk.stop_trace() == []  # tracing stopped

"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.experiments import report_all
from repro.experiments.base import ExperimentResult


def _fake_result(exp_id, passed=True):
    return ExperimentResult(
        exp_id=exp_id,
        title=f"fake {exp_id}",
        claim="a claim",
        headers=["x", "y"],
        rows=[(1, 2.0)],
        checks=[("always", passed)],
        notes=["a note"],
    )


def test_generates_document_with_commentary():
    results = [_fake_result("T1.R1"), _fake_result("ZZZ")]
    text, ok = report_all.generate_experiments_md(quick=True, results=results)
    assert ok
    assert "2/2 experiments PASS" in text
    # Known experiment gets its curated commentary; unknown a generic one.
    assert "Theorems 1 and 5" in text
    assert "**fake ZZZ.**" in text
    assert "Reading guide" in text


def test_failures_reported():
    results = [_fake_result("A", passed=False)]
    text, ok = report_all.generate_experiments_md(quick=True, results=results)
    assert not ok
    assert "0/1 experiments PASS" in text
    assert "verdict: FAIL" in text


def test_write_experiments_md(tmp_path):
    out, ok = report_all.write_experiments_md(
        tmp_path / "E.md", quick=True, results=[_fake_result("A")]
    )
    assert ok and out.exists()
    assert "paper vs. measured" in out.read_text()


def test_order_respected():
    results = [_fake_result("B"), _fake_result("A")]
    text, _ = report_all.generate_experiments_md(
        quick=True, order=["A", "B"], results=results
    )
    assert text.index("fake A") < text.index("fake B")


def test_results_not_named_by_order_are_appended():
    results = [_fake_result("C"), _fake_result("A"), _fake_result("B")]
    text, _ = report_all.generate_experiments_md(
        quick=True, order=["A", "B"], results=results
    )
    assert text.index("fake A") < text.index("fake B") < text.index("fake C")


def test_unknown_order_id_raises_instead_of_dropping():
    # A typo in the order list must fail loudly, not silently omit an
    # experiment from the document.
    with pytest.raises(KeyError, match="ZZTOP"):
        report_all.generate_experiments_md(
            quick=True, order=["A", "ZZTOP"], results=[_fake_result("A")]
        )


def test_unknown_order_id_raises_against_registry_too():
    # Validation happens before any experiment runs, so this is fast.
    with pytest.raises(KeyError, match="NOT-AN-ID"):
        report_all.generate_experiments_md(quick=True, order=["NOT-AN-ID"])


def test_default_order_exactly_covers_registry():
    from repro.experiments import all_experiments

    registered = {e.exp_id for e in all_experiments()}
    order = report_all.DEFAULT_ORDER
    assert len(order) == len(set(order)), "DEFAULT_ORDER has duplicates"
    missing = registered - set(order)
    assert not missing, f"experiments missing from DEFAULT_ORDER: {missing}"
    stale = set(order) - registered
    assert not stale, f"DEFAULT_ORDER names unregistered experiments: {stale}"


def test_commentary_covers_all_registered_ids():
    from repro.experiments import all_experiments

    registered = {e.exp_id for e in all_experiments()}
    assert registered <= set(report_all.COMMENTARY), (
        "every registered experiment needs paper-vs-measured commentary"
    )

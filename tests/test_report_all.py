"""Tests for the EXPERIMENTS.md generator."""

from repro.experiments import report_all
from repro.experiments.base import Experiment, ExperimentResult


def _fake_experiment(exp_id, passed=True):
    def run(quick=False):
        return ExperimentResult(
            exp_id=exp_id,
            title=f"fake {exp_id}",
            claim="a claim",
            headers=["x", "y"],
            rows=[(1, 2.0)],
            checks=[("always", passed)],
            notes=["a note"],
        )

    return Experiment(exp_id, f"fake {exp_id}", run)


def test_generates_document_with_commentary(monkeypatch):
    fakes = [_fake_experiment("T1.R1"), _fake_experiment("ZZZ")]
    monkeypatch.setattr(report_all, "all_experiments", lambda: fakes)
    text, ok = report_all.generate_experiments_md(quick=True)
    assert ok
    assert "2/2 experiments PASS" in text
    # Known experiment gets its curated commentary; unknown a generic one.
    assert "Theorems 1 and 5" in text
    assert "**fake ZZZ.**" in text
    assert "Reading guide" in text


def test_failures_reported(monkeypatch):
    fakes = [_fake_experiment("A", passed=False)]
    monkeypatch.setattr(report_all, "all_experiments", lambda: fakes)
    text, ok = report_all.generate_experiments_md(quick=True)
    assert not ok
    assert "0/1 experiments PASS" in text
    assert "verdict: FAIL" in text


def test_write_experiments_md(tmp_path, monkeypatch):
    fakes = [_fake_experiment("A")]
    monkeypatch.setattr(report_all, "all_experiments", lambda: fakes)
    out, ok = report_all.write_experiments_md(tmp_path / "E.md", quick=True)
    assert ok and out.exists()
    assert "paper vs. measured" in out.read_text()


def test_order_respected(monkeypatch):
    fakes = [_fake_experiment("B"), _fake_experiment("A")]
    monkeypatch.setattr(report_all, "all_experiments", lambda: fakes)
    text, _ = report_all.generate_experiments_md(quick=True, order=["A", "B"])
    assert text.index("fake A") < text.index("fake B")


def test_commentary_covers_all_registered_ids():
    from repro.experiments import all_experiments

    registered = {e.exp_id for e in all_experiments()}
    assert registered <= set(report_all.COMMENTARY), (
        "every registered experiment needs paper-vs-measured commentary"
    )
    assert set(report_all.DEFAULT_ORDER) == registered

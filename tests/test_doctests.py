"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.analysis.fit
import repro.analysis.report
import repro.bounds.formulas
import repro.em.machine
import repro.em.records

MODULES = [
    repro.em.machine,
    repro.em.records,
    repro.bounds.formulas,
    repro.analysis.fit,
    repro.analysis.report,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"

"""Tests for the memory-splitters building block (Hu et al. [6] substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import induced_partition_sizes
from repro.core.memory_splitters import (
    SIZE_LOWER_FACTOR,
    SIZE_UPPER_FACTOR,
    default_bucket_count,
    memory_splitters,
)
from repro.em import Machine, composite
from repro.workloads import (
    few_distinct,
    load_input,
    random_permutation,
    sorted_keys,
    zipf_like,
)


def size_factors(recs, splitters):
    sizes = induced_partition_sizes(recs, splitters)
    avg = len(recs) / (len(splitters) + 1)
    return sizes.min() / avg, sizes.max() / avg


class TestGuarantees:
    @pytest.mark.parametrize(
        "gen", [random_permutation, sorted_keys, zipf_like, few_distinct]
    )
    def test_size_factors_across_workloads(self, gen):
        mach = Machine(memory=4096, block=64)
        recs = gen(50_000, seed=40)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f)
        lo, hi = size_factors(recs, sp)
        assert lo >= SIZE_LOWER_FACTOR
        assert hi <= SIZE_UPPER_FACTOR

    @given(
        n=st.integers(100, 20_000),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=15, deadline=None)
    def test_size_factors_random_n(self, n, seed):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f)
        lo, hi = size_factors(recs, sp)
        assert lo >= SIZE_LOWER_FACTOR
        assert hi <= SIZE_UPPER_FACTOR

    def test_splitters_are_sorted_elements(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(30_000, seed=41)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f)
        comps = composite(sp)
        assert np.all(np.diff(comps) > 0)
        assert set(comps.tolist()) <= set(composite(recs).tolist())

    def test_explicit_bucket_count(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(30_000, seed=42)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f, n_buckets=32)
        assert 16 <= len(sp) + 1 <= 32
        lo, hi = size_factors(recs, sp)
        assert lo >= SIZE_LOWER_FACTOR and hi <= SIZE_UPPER_FACTOR


class TestCost:
    def test_linear_io(self):
        for n in (20_000, 80_000):
            mach = Machine(memory=4096, block=64)
            f = load_input(mach, random_permutation(n, seed=43))
            mach.reset_counters()
            memory_splitters(mach, f)
            assert mach.io.total <= 6 * (n // 64)

    def test_small_bucket_count_is_cheap(self):
        # The single-level fast path: few buckets ~ one scan and change.
        mach = Machine(memory=4096, block=64)
        n = 60_000
        f = load_input(mach, random_permutation(n, seed=44))
        mach.reset_counters()
        memory_splitters(mach, f, n_buckets=32)
        assert mach.io.total <= 2.5 * (n // 64)

    def test_memory_budget(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(60_000, seed=45))
        memory_splitters(mach, f)
        assert mach.memory.peak <= mach.M
        assert mach.memory.in_use == 0

    def test_no_disk_leaks(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(30_000, seed=46))
        memory_splitters(mach, f)
        assert mach.disk.live_blocks == f.num_blocks


class TestEdges:
    def test_tiny_file_exact(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(100, seed=47)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f, n_buckets=4)
        sizes = induced_partition_sizes(recs, sp)
        assert list(sizes) == [25, 25, 25, 25]

    def test_one_bucket_returns_nothing(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(100, seed=48))
        assert len(memory_splitters(mach, f, n_buckets=1)) == 0

    def test_buckets_capped_at_n(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(10, seed=49)
        f = load_input(mach, recs)
        sp = memory_splitters(mach, f, n_buckets=1000)
        assert len(sp) <= 10

    def test_default_bucket_count_shape(self):
        assert default_bucket_count(Machine(memory=4096, block=64)) == 512
        # Flat machine: capped by fanout^2.
        flat = Machine(memory=64, block=16)
        assert default_bucket_count(flat) == 4

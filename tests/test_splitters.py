"""Tests for §5.1 approximate K-splitters (all three variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_splitters
from repro.core.spec import validate_params
from repro.core.splitters import (
    approximate_splitters,
    left_grounded_splitters,
    right_grounded_splitters,
    two_sided_splitters,
)
from repro.em import Machine, SpecError
from repro.workloads import few_distinct, load_input, random_permutation, sorted_keys


class TestRightGrounded:
    @given(
        n=st.integers(2, 3000),
        k_frac=st.floats(0.0, 1.0),
        a_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, n, k_frac, a_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 1 + int(k_frac * (n - 1))
        a = int(a_frac * (n // k))
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        res = right_grounded_splitters(mach, f, k, a)
        check_splitters(recs, res.splitters, a, n, k)

    def test_k_equals_one(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=1))
        res = right_grounded_splitters(mach, f, 1, 50)
        assert len(res.splitters) == 0

    def test_a_zero_trivial_path(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(100, seed=2)
        f = load_input(mach, recs)
        res = right_grounded_splitters(mach, f, 10, 0)
        assert res.variant == "right-grounded/trivial"
        check_splitters(recs, res.splitters, 0, 100, 10)

    def test_sublinear_io_for_small_ak(self):
        mach = Machine(memory=4096, block=64)
        n = 100_000
        f = load_input(mach, random_permutation(n, seed=3))
        mach.reset_counters()
        right_grounded_splitters(mach, f, 32, 16)  # aK = 512 << N
        assert mach.io.total < n // 64  # strictly below one scan

    def test_perfect_balance_a_equals_n_over_k(self):
        mach = Machine(memory=256, block=8)
        n, k = 1000, 10
        recs = random_permutation(n, seed=4)
        f = load_input(mach, recs)
        res = right_grounded_splitters(mach, f, k, n // k)
        sizes = check_splitters(recs, res.splitters, n // k, n, k)
        assert all(s >= n // k for s in sizes[:-1])


class TestLeftGrounded:
    @given(
        n=st.integers(2, 3000),
        k_frac=st.floats(0.0, 1.0),
        b_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, n, k_frac, b_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 1 + int(k_frac * (n - 1))
        b_min = -(-n // k)
        b = b_min + int(b_frac * (n - b_min))
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        res = left_grounded_splitters(mach, f, k, b)
        check_splitters(recs, res.splitters, 0, b, k)

    def test_padding_when_k_exceeds_n_over_b(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=5)
        f = load_input(mach, recs)
        res = left_grounded_splitters(mach, f, 50, 900)  # K' = 2, pad 48
        check_splitters(recs, res.splitters, 0, 900, 50)

    def test_b_at_least_n_means_all_padding(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(100, seed=6)
        f = load_input(mach, recs)
        res = left_grounded_splitters(mach, f, 20, 100)
        check_splitters(recs, res.splitters, 0, 100, 20)

    def test_duplicates(self):
        mach = Machine(memory=256, block=8)
        recs = few_distinct(800, seed=7, n_distinct=3)
        f = load_input(mach, recs)
        res = left_grounded_splitters(mach, f, 8, 150)
        check_splitters(recs, res.splitters, 0, 150, 8)


class TestTwoSided:
    @given(
        n=st.integers(4, 2500),
        k_frac=st.floats(0.0, 1.0),
        a_frac=st.floats(0.0, 1.0),
        b_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, n, k_frac, a_frac, b_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 2 + int(k_frac * (n // 2 - 2))
        a = max(1, int(a_frac * (n // k)))
        b = max(-(-n // k), a)
        b = b + int(b_frac * (n - 1 - b))
        if b >= n:
            b = n - 1
        if a * k > n or b * k < n or b < 1:
            return
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        res = two_sided_splitters(mach, f, k, a, b)
        check_splitters(recs, res.splitters, a, b, k)

    def test_general_regime_variant(self):
        mach = Machine(memory=4096, block=64)
        n, k = 60_000, 64
        recs = random_permutation(n, seed=8)
        f = load_input(mach, recs)
        a, b = n // (4 * k), 4 * (n // k)
        res = two_sided_splitters(mach, f, k, a, b)
        assert res.variant == "two-sided"
        check_splitters(recs, res.splitters, a, b, k)

    def test_fallback_regime_variant(self):
        mach = Machine(memory=4096, block=64)
        n, k = 60_000, 64
        recs = random_permutation(n, seed=9)
        f = load_input(mach, recs)
        a, b = n // k, 4 * (n // k)  # a >= N/2K triggers fallback
        res = two_sided_splitters(mach, f, k, a, b)
        assert res.variant == "two-sided/quantile-fallback"
        check_splitters(recs, res.splitters, a, b, k)

    def test_tight_instance_a_equals_b(self):
        mach = Machine(memory=256, block=8)
        n, k = 1000, 10
        recs = random_permutation(n, seed=10)
        f = load_input(mach, recs)
        res = two_sided_splitters(mach, f, k, n // k, n // k)
        sizes = check_splitters(recs, res.splitters, n // k, n // k, k)
        assert all(s == n // k for s in sizes)

    def test_sorted_input(self):
        mach = Machine(memory=256, block=8)
        recs = sorted_keys(2000, seed=11)
        f = load_input(mach, recs)
        res = two_sided_splitters(mach, f, 8, 50, 1500)
        check_splitters(recs, res.splitters, 50, 1500, 8)


class TestDispatchAndSpec:
    def test_dispatch_variants(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=12)
        f = load_input(mach, recs)
        assert "right" in approximate_splitters(mach, f, 4, 100, 1000).variant
        assert "left" in approximate_splitters(mach, f, 4, 0, 600).variant
        assert "two-sided" in approximate_splitters(mach, f, 4, 100, 600).variant

    def test_invalid_params_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=13))
        with pytest.raises(SpecError):
            approximate_splitters(mach, f, 10, 11, 100)  # a > N/K
        with pytest.raises(SpecError):
            approximate_splitters(mach, f, 10, 5, 9)  # b < N/K
        with pytest.raises(SpecError):
            approximate_splitters(mach, f, 0, 0, 100)
        with pytest.raises(SpecError):
            approximate_splitters(mach, f, 101, 0, 100)

    def test_validate_params_grounding(self):
        p = validate_params(100, 10, 0, 100)
        assert p.is_left_grounded and p.is_right_grounded

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(30_000, seed=14)
        f = load_input(mach, recs)
        two_sided_splitters(mach, f, 16, 400, 8000)
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == f.num_blocks

"""Unit and property tests for multi-way distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.distribute import bucket_indices, distribute_by_pivots
from repro.em import Machine, MemoryBudgetError, composite
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation


class TestBucketIndices:
    def test_half_open_convention(self):
        # Pivots 10, 20: bucket0 = (-inf, 10], bucket1 = (10, 20], bucket2 = rest.
        pivots = make_records(np.array([10, 20]), uids=np.array([100, 200]))
        recs = make_records(
            np.array([5, 10, 11, 20, 21]), uids=np.array([1, 100, 2, 200, 3])
        )
        idx = bucket_indices(recs, composite(pivots))
        assert list(idx) == [0, 0, 1, 1, 2]

    def test_tie_breaking_by_uid(self):
        # Same key as pivot but different uid: uid below pivot's -> same
        # bucket as pivot; uid above -> next bucket.
        pivots = make_records(np.array([10]), uids=np.array([50]))
        recs = make_records(np.array([10, 10]), uids=np.array([49, 51]))
        idx = bucket_indices(recs, composite(pivots))
        assert list(idx) == [0, 1]


class TestDistribute:
    @given(
        n=st.integers(0, 600),
        n_pivots=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_distribution_is_ordered_partition(self, n, n_pivots, seed):
        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(seed)
        recs = make_records(rng.integers(0, 100, size=n))
        f = load_input(mach, recs)
        pool = sort_records(recs)
        if len(pool) == 0:
            pivot_recs = pool
        else:
            pos = np.unique(rng.integers(0, len(pool), size=min(n_pivots, len(pool))))
            pivot_recs = pool[pos]
        buckets = distribute_by_pivots(mach, f, pivot_recs)
        assert len(buckets) == len(pivot_recs) + 1
        # Content: union is a permutation of the input.
        parts = [b.to_numpy() for b in buckets]
        got = np.sort(composite(np.concatenate(parts))) if n else []
        assert np.array_equal(got, np.sort(composite(recs)))
        # Ordering: bucket i entirely below bucket j for i < j.
        prev_max = None
        for p in parts:
            if len(p) == 0:
                continue
            comps = composite(p)
            if prev_max is not None:
                assert comps.min() > prev_max
            prev_max = int(comps.max())
        # Pivot i is the maximum of its bucket (when the bucket is non-empty).
        for i, pr in enumerate(pivot_recs):
            if len(parts[i]):
                assert composite(parts[i]).max() <= int(
                    composite(pivot_recs[i : i + 1])[0]
                )

    def test_io_cost_one_pass(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(800, seed=7)
        f = load_input(mach, recs)
        pool = sort_records(recs)
        pivots = pool[[200, 400, 600]]
        mach.reset_counters()
        buckets = distribute_by_pivots(mach, f, pivots)
        out_blocks = sum(b.num_blocks for b in buckets)
        assert mach.io.reads == f.num_blocks
        assert mach.io.writes == out_blocks

    def test_unsorted_pivots_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=8))
        bad = make_records(np.array([5, 3]))
        with pytest.raises(ValueError):
            distribute_by_pivots(mach, f, bad)

    def test_too_many_buckets_hits_memory_budget(self):
        mach = Machine(memory=64, block=8)  # at most ~7 writers fit
        recs = random_permutation(200, seed=9)
        f = load_input(mach, recs)
        pivots = sort_records(recs)[::10]
        with pytest.raises(MemoryBudgetError):
            distribute_by_pivots(mach, f, pivots)
        assert mach.memory.in_use == 0  # everything released on failure

    def test_failure_frees_disk(self):
        mach = Machine(memory=64, block=8)
        recs = random_permutation(200, seed=10)
        f = load_input(mach, recs)
        live = mach.disk.live_blocks
        pivots = sort_records(recs)[::10]
        with pytest.raises(MemoryBudgetError):
            distribute_by_pivots(mach, f, pivots)
        assert mach.disk.live_blocks == live

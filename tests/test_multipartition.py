"""Tests for exact multi-partition and PartitionedFile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.multipartition import multi_partition, multi_partition_at_ranks
from repro.alg.partitioned import PartitionedFile
from repro.analysis.verify import check_partitioned
from repro.bounds.formulas import multipartition_io
from repro.em import EMFile, FileError, Machine, SpecError, composite
from repro.em.records import make_records
from repro.workloads import few_distinct, load_input, random_permutation


def validate(recs, pf, sizes):
    parts = pf.to_numpy_partitions()
    assert [len(p) for p in parts] == list(sizes)
    srt = np.sort(composite(recs))
    off = 0
    for p in parts:
        got = np.sort(composite(p))
        assert np.array_equal(got, srt[off : off + len(p)])
        off += len(p)


class TestMultiPartition:
    @given(
        n=st.integers(1, 800),
        cuts=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=8),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_sizes(self, n, cuts, seed):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        bounds = sorted({int(c * n) for c in cuts} | {0, n})
        sizes = list(np.diff(bounds))
        if not sizes:
            sizes = [n]
        pf = multi_partition(mach, f, sizes)
        validate(recs, pf, sizes)
        pf.free()

    def test_zero_sizes_allowed(self):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(100, seed=1)
        f = load_input(mach, recs)
        sizes = [0, 40, 0, 60, 0]
        pf = multi_partition(mach, f, sizes)
        validate(recs, pf, sizes)

    def test_single_partition_copies_input(self):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(50, seed=2)
        f = load_input(mach, recs)
        pf = multi_partition(mach, f, [50])
        validate(recs, pf, [50])
        pf.free()
        assert np.array_equal(f.to_numpy()["key"], recs["key"])

    def test_duplicate_keys(self):
        mach = Machine(memory=128, block=8)
        recs = few_distinct(600, seed=3, n_distinct=4)
        f = load_input(mach, recs)
        sizes = [150, 150, 150, 150]
        pf = multi_partition(mach, f, sizes)
        check_partitioned(recs, pf, 150, 150, 4)

    def test_size_validation(self):
        mach = Machine(memory=128, block=8)
        f = load_input(mach, random_permutation(100, seed=4))
        with pytest.raises(SpecError):
            multi_partition(mach, f, [50, 49])
        with pytest.raises(SpecError):
            multi_partition(mach, f, [120, -20])

    def test_io_within_constant_of_bound(self):
        mach = Machine(memory=256, block=8)
        n, k = 20_000, 16
        f = load_input(mach, random_permutation(n, seed=5))
        mach.reset_counters()
        pf = multi_partition(mach, f, [n // k] * k)
        bound = multipartition_io(n, k, mach.M, mach.B)
        assert mach.io.total <= 10 * bound
        pf.free()

    def test_few_ranks_cost_near_linear(self):
        # K=2 must cost O(N/B), not O((N/B) log(N/M)): only the
        # rank-containing bucket recurses.
        mach = Machine(memory=256, block=8)
        n = 30_000
        f = load_input(mach, random_permutation(n, seed=6))
        mach.reset_counters()
        pf = multi_partition(mach, f, [n // 2, n - n // 2])
        assert mach.io.total <= 8 * (n / mach.B)
        pf.free()

    def test_memory_and_disk_hygiene(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(5000, seed=7))
        pf = multi_partition(mach, f, [1000, 1500, 2500])
        assert mach.memory.in_use == 0
        assert mach.memory.peak <= mach.M
        pf.free()
        assert mach.disk.live_blocks == f.num_blocks


class TestAtRanks:
    def test_boundary_rank_form(self):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(200, seed=8)
        f = load_input(mach, recs)
        pf = multi_partition_at_ranks(mach, f, [50, 120])
        validate(recs, pf, [50, 70, 80])

    def test_duplicate_and_extreme_ranks(self):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(100, seed=9)
        f = load_input(mach, recs)
        pf = multi_partition_at_ranks(mach, f, [0, 30, 30, 100])
        validate(recs, pf, [0, 30, 0, 70, 0])

    def test_invalid_ranks(self):
        mach = Machine(memory=128, block=8)
        f = load_input(mach, random_permutation(100, seed=10))
        with pytest.raises(SpecError):
            multi_partition_at_ranks(mach, f, [60, 30])
        with pytest.raises(SpecError):
            multi_partition_at_ranks(mach, f, [101])


class TestPartitionedFile:
    def _make(self, mach, lengths):
        segs = [
            EMFile.from_records(mach, make_records(np.arange(ln)), counted=False)
            for ln in lengths
        ]
        return segs

    def test_invariant_checks(self):
        mach = Machine(memory=128, block=8)
        segs = self._make(mach, [10, 20])
        with pytest.raises(FileError):
            PartitionedFile(mach, segs, [0], [10, 20])  # parallel mismatch
        with pytest.raises(FileError):
            PartitionedFile(mach, segs, [1, 0], [20, 10])  # not monotone
        with pytest.raises(FileError):
            PartitionedFile(mach, segs, [0, 1], [10, 19])  # size mismatch
        with pytest.raises(FileError):
            PartitionedFile(mach, segs, [0, 5], [10, 20])  # bad partition id

    def test_segments_of_and_len(self):
        mach = Machine(memory=128, block=8)
        segs = self._make(mach, [10, 20, 5])
        pf = PartitionedFile(mach, segs, [0, 0, 2], [30, 0, 5])
        assert len(pf.segments_of(0)) == 2
        assert pf.segments_of(1) == []
        assert len(pf) == 35
        assert pf.num_partitions == 3

    def test_materialize_cost_and_content(self):
        mach = Machine(memory=128, block=8)
        segs = self._make(mach, [16, 8])
        pf = PartitionedFile(mach, segs, [0, 1], [16, 8])
        mach.reset_counters()
        out, sizes = pf.materialize()
        assert sizes == [16, 8]
        assert len(out) == 24
        assert mach.io.reads == 3 and mach.io.writes == 3

    def test_free(self):
        mach = Machine(memory=128, block=8)
        segs = self._make(mach, [16, 8])
        pf = PartitionedFile(mach, segs, [0, 1], [16, 8])
        pf.free()
        assert mach.disk.live_blocks == 0
